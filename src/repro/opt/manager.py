"""The optimization pass manager and its per-pass certificates.

The manager treats every pass as untrusted, mirroring how the repo
treats the relational compiler itself (README: untrusted search, per-run
witnesses, a small checker).  After each pass it:

1. records a :class:`PassCertificate` — pass name plus fingerprints of
   the AST before and after (``bedrock2.ast.fingerprint``);
2. re-runs the definite-assignment well-formedness check
   (:func:`repro.bedrock2.wellformed.check_function`);
3. hands the candidate to an optional *validator* callback — for
   compiled suite programs this is the spec-driven differential tester
   (see :func:`repro.validation.passcheck.pass_validator`).

A pass that fails any check is **rejected**: its certificate records the
reason and the pipeline continues from the pre-pass AST, so a buggy or
unsound pass degrades optimization, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.bedrock2 import ast
from repro.bedrock2.wellformed import IllFormed, check_function
from repro.obs.trace import NULL_SPAN, current_tracer
from repro.opt.passes import Pass, default_pipeline

# Returns None to accept the candidate, or a human-readable reason to
# reject it.
PassValidator = Callable[[ast.Function, str], Optional[str]]


@dataclass(frozen=True)
class PassCertificate:
    """The witness that one pass application was checked."""

    pass_name: str
    before_hash: str
    after_hash: str
    status: str  # "validated" | "no-change" | "rejected"
    detail: str = ""

    @property
    def accepted(self) -> bool:
        return self.status == "validated"

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "before": self.before_hash,
            "after": self.after_hash,
            "status": self.status,
            "detail": self.detail,
        }

    @staticmethod
    def from_dict(data: dict) -> "PassCertificate":
        return PassCertificate(
            pass_name=data["pass"],
            before_hash=data["before"],
            after_hash=data["after"],
            status=data["status"],
            detail=data.get("detail", ""),
        )


@dataclass
class OptimizationReport:
    """Everything one ``optimize`` call did to one function."""

    function: str
    level: int
    certificates: List[PassCertificate] = field(default_factory=list)
    stmts_before: int = 0
    stmts_after: int = 0

    @property
    def applied(self) -> List[str]:
        return [c.pass_name for c in self.certificates if c.accepted]

    @property
    def rejected(self) -> List[PassCertificate]:
        return [c for c in self.certificates if c.status == "rejected"]

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "level": self.level,
            "stmts_before": self.stmts_before,
            "stmts_after": self.stmts_after,
            "certificates": [c.to_dict() for c in self.certificates],
        }

    @staticmethod
    def from_dict(data: dict) -> "OptimizationReport":
        return OptimizationReport(
            function=data["function"],
            level=data["level"],
            stmts_before=data["stmts_before"],
            stmts_after=data["stmts_after"],
            certificates=[PassCertificate.from_dict(c) for c in data["certificates"]],
        )

    def render(self) -> str:
        lines = [
            f"optimize(level={self.level}) on {self.function}: "
            f"{self.stmts_before} -> {self.stmts_after} statements"
        ]
        for cert in self.certificates:
            line = (
                f"  [{cert.status:>9}] {cert.pass_name:<12} "
                f"{cert.before_hash} -> {cert.after_hash}"
            )
            if cert.detail:
                line += f"  ({cert.detail})"
            lines.append(line)
        return "\n".join(lines)


class PassManager:
    """Runs a pass pipeline with per-pass certification and fallback."""

    def __init__(
        self,
        passes: Sequence[Pass],
        width: int = 64,
        validator: Optional[PassValidator] = None,
        lint: bool = True,
    ):
        self.passes = list(passes)
        self.width = width
        self.validator = validator
        # When on, each candidate is also run through the dataflow lint
        # (repro.analysis.dataflow, which folds in the RB3xx range lints
        # from repro.analysis.absint) and rejected if it *introduces* any
        # error-severity diagnostic the pre-pass AST did not have (a
        # stale-stackalloc deref, an escaping pointer, a provably
        # out-of-bounds table index, ...).  Warnings
        # (dead stores, unreachable code) are deliberately not gated
        # per-pass: the pipeline relies on them transiently -- ptrloop
        # orphans induction variables for the final DCE to sweep -- and
        # the end-to-end `repro lint` gate still requires the *final*
        # output to be warning-clean.
        self.lint = lint

    def run(self, fn: ast.Function) -> "tuple[ast.Function, List[PassCertificate]]":
        tracer = current_tracer()
        trace = tracer.enabled
        certificates: List[PassCertificate] = []
        baseline = self._lint_counts(fn) if self.lint else None
        for pass_ in self.passes:
            span = tracer.span("opt_pass", name=pass_.name) if trace else NULL_SPAN
            with span:
                before_hash = ast.fingerprint(fn)
                try:
                    candidate = pass_.run(fn, self.width)
                except Exception as exc:  # noqa: BLE001 - a crashing pass is rejected
                    certificates.append(
                        PassCertificate(
                            pass_.name,
                            before_hash,
                            before_hash,
                            "rejected",
                            f"pass raised {exc!r}",
                        )
                    )
                    self._trace_cert(tracer, certificates[-1])
                    continue
                after_hash = ast.fingerprint(candidate)
                if candidate == fn:
                    certificates.append(
                        PassCertificate(pass_.name, before_hash, after_hash, "no-change")
                    )
                    self._trace_cert(tracer, certificates[-1])
                    continue
                error = self._check(candidate, pass_.name)
                if error is None and baseline is not None:
                    error, candidate_counts = self._lint_gate(candidate, baseline)
                if error is not None:
                    certificates.append(
                        PassCertificate(
                            pass_.name, before_hash, before_hash, "rejected", error
                        )
                    )
                    self._trace_cert(tracer, certificates[-1])
                    continue  # graceful degradation: keep the pre-pass AST
                certificates.append(
                    PassCertificate(pass_.name, before_hash, after_hash, "validated")
                )
                self._trace_cert(tracer, certificates[-1])
                fn = candidate
                if baseline is not None:
                    baseline = candidate_counts
        return fn, certificates

    @staticmethod
    def _lint_counts(fn: ast.Function) -> "dict[str, int]":
        from collections import Counter

        from repro.analysis.dataflow import lint_function
        from repro.analysis.diagnostics import errors

        return dict(Counter(d.code for d in errors(lint_function(fn))))

    def _lint_gate(
        self, candidate: ast.Function, baseline: "dict[str, int]"
    ) -> "tuple[Optional[str], dict[str, int]]":
        """Reject a candidate that introduces new dataflow diagnostics.

        The comparison is per code against the pre-pass AST, so a
        pipeline run on already-dirty input is not blocked -- only
        regressions are (the property the optimizer fuzz tests assert).
        """
        counts = self._lint_counts(candidate)
        introduced = sorted(
            code for code, n in counts.items() if n > baseline.get(code, 0)
        )
        if introduced:
            tracer = current_tracer()
            if tracer.enabled:
                tracer.inc("analysis.optgate.rejected")
            return (
                "lint: pass introduces dataflow diagnostics "
                + ", ".join(introduced),
                counts,
            )
        return None, counts

    @staticmethod
    def _trace_cert(tracer, cert: PassCertificate) -> None:
        if not tracer.enabled:
            return
        tracer.event(
            "opt_pass",
            **{"pass": cert.pass_name},
            status=cert.status,
            before=cert.before_hash,
            after=cert.after_hash,
            detail=cert.detail,
        )
        tracer.inc(f"opt.pass.{cert.status}")
        tracer.inc("opt.passes")

    def _check(self, candidate: ast.Function, pass_name: str) -> Optional[str]:
        try:
            check_function(candidate)
        except IllFormed as exc:
            return f"ill-formed output: {exc}"
        if self.validator is not None:
            return self.validator(candidate, pass_name)
        return None


def pipeline_for(level: int) -> List[Pass]:
    """The pass list for an ``-O<level>`` flag (0 = none)."""
    if level <= 0:
        return []
    return default_pipeline()


def pipeline_fingerprint(level: int) -> str:
    """A stable hash of the ``-O<level>`` pipeline's ordered pass identities.

    Each :class:`PassCertificate` already fingerprints individual pass
    *applications* (AST hash before/after); this digest fingerprints the
    pipeline itself -- pass names and defining classes, in run order --
    so the compilation cache (:mod:`repro.serve`) can distinguish ``-O0``
    from ``-O1`` output and invalidate entries whenever the pass roster
    changes.
    """
    import hashlib

    digest = hashlib.sha256()
    digest.update(str(level).encode("ascii"))
    for pass_ in pipeline_for(level):
        cls = type(pass_)
        digest.update(
            f"{pass_.name}\x1f{cls.__module__}.{cls.__qualname__}\x1e".encode("utf-8")
        )
    return digest.hexdigest()[:16]


def optimize_function(
    fn: ast.Function,
    level: int = 1,
    width: int = 64,
    validator: Optional[PassValidator] = None,
) -> "tuple[ast.Function, OptimizationReport]":
    """Optimize a bare Bedrock2 function.

    Without a validator this still checks well-formedness per pass; use
    :meth:`repro.core.spec.CompiledFunction.optimize` to get differential
    validation against the functional model as well.
    """
    report = OptimizationReport(
        function=fn.name, level=level, stmts_before=ast.statement_count(fn.body)
    )
    manager = PassManager(pipeline_for(level), width=width, validator=validator)
    fn, report.certificates = manager.run(fn)
    report.stmts_after = ast.statement_count(fn.body)
    return fn, report
