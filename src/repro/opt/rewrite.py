"""Shared AST-rewriting machinery for the optimizer passes.

Every pass in :mod:`repro.opt.passes` is a pure function from
:class:`~repro.bedrock2.ast.Function` to Function, built out of the
traversals here.  The conventions:

- statement lists: ``SSeq`` trees are *flattened* into Python lists at
  each nesting level (``flatten``), transformed, and re-nested with
  ``ast.seq_of`` (which drops ``SSkip``).  Compound statements keep
  their block structure; only the straight-line spine is a list.
- expressions are immutable, so rewriting builds fresh nodes bottom-up
  (``map_expr``), and structural equality/hashing of the frozen
  dataclasses is what lets CSE use expressions as dictionary keys.
- "pure" means *cannot fault*: Bedrock2 expressions have no side
  effects, but ``ELoad``/``EInlineTable`` can make execution undefined
  (bad address / out-of-range index), so passes that discard or
  duplicate an expression must check :func:`expr_is_pure` first.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Set

from repro.bedrock2 import ast


# -- Statement-list plumbing --------------------------------------------------


def flatten(stmt: ast.Stmt) -> List[ast.Stmt]:
    """The straight-line statement list of one nesting level."""
    if isinstance(stmt, ast.SSeq):
        return flatten(stmt.first) + flatten(stmt.second)
    if isinstance(stmt, ast.SSkip):
        return []
    return [stmt]


def reseq(stmts: Iterable[ast.Stmt]) -> ast.Stmt:
    """Right-nest a statement list back into an ``SSeq`` tree."""
    return ast.seq_of(*stmts)


def map_expr(expr: ast.Expr, transform: Callable[[ast.Expr], ast.Expr]) -> ast.Expr:
    """Rebuild ``expr`` bottom-up, applying ``transform`` at every node."""
    if isinstance(expr, ast.EOp):
        expr = ast.EOp(
            expr.op, map_expr(expr.lhs, transform), map_expr(expr.rhs, transform)
        )
    elif isinstance(expr, ast.ELoad):
        expr = ast.ELoad(expr.size, map_expr(expr.addr, transform))
    elif isinstance(expr, ast.EInlineTable):
        expr = ast.EInlineTable(expr.size, expr.data, map_expr(expr.index, transform))
    return transform(expr)


def map_stmt_exprs(
    stmt: ast.Stmt, transform: Callable[[ast.Expr], ast.Expr]
) -> ast.Stmt:
    """Apply an expression transform to every expression in ``stmt``."""
    if isinstance(stmt, ast.SSet):
        return ast.SSet(stmt.lhs, map_expr(stmt.rhs, transform))
    if isinstance(stmt, ast.SStore):
        return ast.SStore(
            stmt.size, map_expr(stmt.addr, transform), map_expr(stmt.value, transform)
        )
    if isinstance(stmt, ast.SSeq):
        return ast.SSeq(
            map_stmt_exprs(stmt.first, transform),
            map_stmt_exprs(stmt.second, transform),
        )
    if isinstance(stmt, ast.SCond):
        return ast.SCond(
            map_expr(stmt.cond, transform),
            map_stmt_exprs(stmt.then_, transform),
            map_stmt_exprs(stmt.else_, transform),
        )
    if isinstance(stmt, ast.SWhile):
        return ast.SWhile(
            map_expr(stmt.cond, transform), map_stmt_exprs(stmt.body, transform)
        )
    if isinstance(stmt, ast.SStackalloc):
        return ast.SStackalloc(
            stmt.lhs, stmt.nbytes, map_stmt_exprs(stmt.body, transform)
        )
    if isinstance(stmt, ast.SCall):
        return ast.SCall(
            stmt.lhss, stmt.func, tuple(map_expr(a, transform) for a in stmt.args)
        )
    if isinstance(stmt, ast.SInteract):
        return ast.SInteract(
            stmt.lhss, stmt.action, tuple(map_expr(a, transform) for a in stmt.args)
        )
    return stmt


# -- Queries ------------------------------------------------------------------


def iter_exprs(node):
    """Yield every expression node (including subexpressions) under a
    statement or expression."""
    if isinstance(node, ast.Expr):
        yield node
        if isinstance(node, ast.EOp):
            yield from iter_exprs(node.lhs)
            yield from iter_exprs(node.rhs)
        elif isinstance(node, ast.ELoad):
            yield from iter_exprs(node.addr)
        elif isinstance(node, ast.EInlineTable):
            yield from iter_exprs(node.index)
        return
    if isinstance(node, ast.SSet):
        yield from iter_exprs(node.rhs)
    elif isinstance(node, ast.SStore):
        yield from iter_exprs(node.addr)
        yield from iter_exprs(node.value)
    elif isinstance(node, ast.SSeq):
        yield from iter_exprs(node.first)
        yield from iter_exprs(node.second)
    elif isinstance(node, ast.SCond):
        yield from iter_exprs(node.cond)
        yield from iter_exprs(node.then_)
        yield from iter_exprs(node.else_)
    elif isinstance(node, ast.SWhile):
        yield from iter_exprs(node.cond)
        yield from iter_exprs(node.body)
    elif isinstance(node, ast.SStackalloc):
        yield from iter_exprs(node.body)
    elif isinstance(node, (ast.SCall, ast.SInteract)):
        for arg in node.args:
            yield from iter_exprs(arg)


def count_subexpr(node, target: ast.Expr) -> int:
    """Structural occurrences of ``target`` under a statement/expression."""
    return sum(1 for e in iter_exprs(node) if e == target)


def expr_is_pure(expr: ast.Expr) -> bool:
    """True if evaluating ``expr`` can never fault (no memory / table reads)."""
    if isinstance(expr, (ast.ELoad, ast.EInlineTable)):
        return False
    if isinstance(expr, ast.EOp):
        return expr_is_pure(expr.lhs) and expr_is_pure(expr.rhs)
    return True


def expr_reads_memory(expr: ast.Expr) -> bool:
    return not expr_is_pure(expr)


def count_var_reads(node, name: str) -> int:
    """Occurrences of ``EVar(name)`` in all expressions under ``node``."""
    if isinstance(node, ast.EVar):
        return 1 if node.name == name else 0
    if isinstance(node, ast.EOp):
        return count_var_reads(node.lhs, name) + count_var_reads(node.rhs, name)
    if isinstance(node, ast.ELoad):
        return count_var_reads(node.addr, name)
    if isinstance(node, ast.EInlineTable):
        return count_var_reads(node.index, name)
    if isinstance(node, ast.Expr):
        return 0
    if isinstance(node, ast.SSet):
        return count_var_reads(node.rhs, name)
    if isinstance(node, ast.SStore):
        return count_var_reads(node.addr, name) + count_var_reads(node.value, name)
    if isinstance(node, ast.SSeq):
        return count_var_reads(node.first, name) + count_var_reads(node.second, name)
    if isinstance(node, ast.SCond):
        return (
            count_var_reads(node.cond, name)
            + count_var_reads(node.then_, name)
            + count_var_reads(node.else_, name)
        )
    if isinstance(node, ast.SWhile):
        return count_var_reads(node.cond, name) + count_var_reads(node.body, name)
    if isinstance(node, ast.SStackalloc):
        return count_var_reads(node.body, name)
    if isinstance(node, (ast.SCall, ast.SInteract)):
        return sum(count_var_reads(a, name) for a in node.args)
    return 0


def used_vars(stmt: ast.Stmt) -> Set[str]:
    """All variable names read anywhere under ``stmt``."""
    if isinstance(stmt, ast.SSet):
        return ast.expr_vars(stmt.rhs)
    if isinstance(stmt, ast.SStore):
        return ast.expr_vars(stmt.addr) | ast.expr_vars(stmt.value)
    if isinstance(stmt, ast.SSeq):
        return used_vars(stmt.first) | used_vars(stmt.second)
    if isinstance(stmt, ast.SCond):
        return ast.expr_vars(stmt.cond) | used_vars(stmt.then_) | used_vars(stmt.else_)
    if isinstance(stmt, ast.SWhile):
        return ast.expr_vars(stmt.cond) | used_vars(stmt.body)
    if isinstance(stmt, ast.SStackalloc):
        return used_vars(stmt.body)
    if isinstance(stmt, (ast.SCall, ast.SInteract)):
        out: Set[str] = set()
        for arg in stmt.args:
            out |= ast.expr_vars(arg)
        return out
    return set()


def assigned_vars(stmt: ast.Stmt) -> Set[str]:
    """All variable names written (or unset) anywhere under ``stmt``."""
    if isinstance(stmt, ast.SSet):
        return {stmt.lhs}
    if isinstance(stmt, ast.SUnset):
        return {stmt.name}
    if isinstance(stmt, ast.SSeq):
        return assigned_vars(stmt.first) | assigned_vars(stmt.second)
    if isinstance(stmt, ast.SCond):
        return assigned_vars(stmt.then_) | assigned_vars(stmt.else_)
    if isinstance(stmt, ast.SWhile):
        return assigned_vars(stmt.body)
    if isinstance(stmt, ast.SStackalloc):
        return {stmt.lhs} | assigned_vars(stmt.body)
    if isinstance(stmt, (ast.SCall, ast.SInteract)):
        return set(stmt.lhss)
    return set()


def contains_memory_write(stmt: ast.Stmt) -> bool:
    """True if ``stmt`` may mutate memory or perform I/O."""
    if isinstance(stmt, (ast.SStore, ast.SCall, ast.SInteract, ast.SStackalloc)):
        return True
    if isinstance(stmt, ast.SSeq):
        return contains_memory_write(stmt.first) or contains_memory_write(stmt.second)
    if isinstance(stmt, ast.SCond):
        return contains_memory_write(stmt.then_) or contains_memory_write(stmt.else_)
    if isinstance(stmt, ast.SWhile):
        return contains_memory_write(stmt.body)
    return False


def expr_depth(expr: ast.Expr) -> int:
    """Maximum number of simultaneously live temporaries the RISC-V
    backend's register stack needs for ``expr`` (``T_REGS`` budget)."""
    if isinstance(expr, ast.EOp):
        return max(expr_depth(expr.lhs), expr_depth(expr.rhs) + 1)
    if isinstance(expr, ast.ELoad):
        return expr_depth(expr.addr)
    if isinstance(expr, ast.EInlineTable):
        return expr_depth(expr.index) + 1
    return 1


# The riscv backend has seven temporaries and raises once an expression
# needs the last one; staying one below that keeps optimized code
# compilable wherever the input was.
MAX_EXPR_DEPTH = 6


def subst_vars(expr: ast.Expr, env: Dict[str, str]) -> ast.Expr:
    """Rename variable reads through ``env`` (used by copy propagation)."""
    if not env:
        return expr

    def rename(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.EVar) and node.name in env:
            return ast.EVar(env[node.name])
        return node

    return map_expr(expr, rename)


def subst_expr(expr: ast.Expr, name: str, replacement: ast.Expr) -> ast.Expr:
    """Replace every read of ``name`` with ``replacement``."""

    def widen(node: ast.Expr) -> ast.Expr:
        if isinstance(node, ast.EVar) and node.name == name:
            return replacement
        return node

    return map_expr(expr, widen)


def fn_names(fn: ast.Function) -> Set[str]:
    return set(fn.args) | set(fn.rets) | assigned_vars(fn.body) | used_vars(fn.body)


class FreshNames:
    """Generates local names guaranteed not to collide with ``fn``'s."""

    def __init__(self, fn: ast.Function, prefix: str = "_o"):
        self.taken = fn_names(fn)
        self.prefix = prefix
        self.counter = 0

    def fresh(self, hint: str = "") -> str:
        while True:
            name = f"{self.prefix}{hint}{self.counter}"
            self.counter += 1
            if name not in self.taken:
                self.taken.add(name)
                return name
