"""The long-lived compilation service: ``python -m repro serve``.

A tiny JSON-lines front end over the content-addressed cache, for
driving the compiler from editors, build systems, or test harnesses
without paying Python startup per derivation.  One request per line in,
one response object per line out, over stdio (default) or a Unix domain
socket (``--socket PATH``).

Requests and responses::

    {"op": "ping"}
        -> {"ok": true, "op": "ping"}
    {"op": "list"}
        -> {"ok": true, "op": "list", "programs": ["crc32", ...]}
    {"op": "compile", "program": "crc32", "opt_level": 1}
        -> {"ok": true, "op": "compile", "program": "crc32",
            "cache": "hit"|"miss"|"invalidated"|"off",
            "c": "<C source>", "statements": N, "elapsed_ms": ...}
    {"op": "cert", "program": "crc32"}
        -> {"ok": true, "op": "cert", "certificate": {...}}
    {"op": "stats"}
        -> {"ok": true, "op": "stats", "requests": N, "cache": {...}}
    {"op": "shutdown"}
        -> {"ok": true, "op": "shutdown"}  (and the service exits)

Errors never kill the service: a stall, an unknown program, or a
malformed request produces ``{"ok": false, "error": ...}`` (stalls keep
their taxonomy slug in ``"stall"``) and the loop continues.  Every
request runs under a ``serve_request`` span and emits a
``serve_request`` event, so ``--trace`` captures the full session.
"""

from __future__ import annotations

import contextlib
import json
import sys
from typing import Optional

from repro.core.goals import CompileError
from repro.serve.cache import CompilationCache


class CompileService:
    """Request dispatch for the JSON-lines protocol (transport-agnostic)."""

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache = CompilationCache(cache_dir) if cache_dir is not None else None
        self.requests = 0
        self.running = True

    # -- Request handling ------------------------------------------------------

    def handle_line(self, line: str) -> dict:
        line = line.strip()
        if not line:
            return {"ok": False, "error": "empty request"}
        try:
            request = json.loads(line)
        except ValueError as exc:
            return {"ok": False, "error": f"bad JSON: {exc}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        return self.handle(request)

    def handle(self, request: dict) -> dict:
        from repro.obs.trace import NULL_SPAN, current_tracer

        self.requests += 1
        op = request.get("op")
        tracer = current_tracer()
        span = (
            tracer.span("serve_request", name=str(op)) if tracer.enabled else NULL_SPAN
        )
        with span:
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                response = {"ok": False, "error": f"unknown op {op!r}"}
            else:
                try:
                    response = handler(request)
                except CompileError as exc:
                    response = {
                        "ok": False,
                        "error": str(exc).splitlines()[0],
                        "stall": exc.report.reason,
                    }
                except Exception as exc:  # noqa: BLE001 - never kill the loop
                    response = {"ok": False, "error": repr(exc)}
            response.setdefault("op", op)
        if tracer.enabled:
            tracer.event(
                "serve_request",
                op=str(op),
                ok=bool(response.get("ok")),
                program=str(request.get("program", "")),
                detail=str(response.get("error", "")),
            )
            tracer.inc("serve.requests")
            tracer.inc(f"serve.{'ok' if response.get('ok') else 'error'}")
        return response

    # -- Ops -------------------------------------------------------------------

    def _op_ping(self, _request: dict) -> dict:
        return {"ok": True}

    def _op_list(self, _request: dict) -> dict:
        from repro.programs.registry import all_programs

        return {"ok": True, "programs": [p.name for p in all_programs()]}

    def _compile(self, request: dict):
        from repro.programs.registry import get_program
        from repro.serve.cache import compile_program_cached

        name = request.get("program")
        try:
            program = get_program(name)
        except KeyError:
            raise ValueError(f"unknown program {name!r}") from None
        opt_level = int(request.get("opt_level", 0))
        if self.cache is not None:
            return compile_program_cached(self.cache, program, opt_level=opt_level)
        return program.compile(opt_level=opt_level), "off"

    def _op_compile(self, request: dict) -> dict:
        import time

        start = time.perf_counter()
        compiled, outcome = self._compile(request)
        return {
            "ok": True,
            "program": compiled.name,
            "cache": outcome,
            "c": compiled.c_source(),
            "statements": compiled.statement_count(),
            "elapsed_ms": (time.perf_counter() - start) * 1000.0,
        }

    def _op_cert(self, request: dict) -> dict:
        compiled, outcome = self._compile(request)
        return {
            "ok": True,
            "program": compiled.name,
            "cache": outcome,
            "certificate": compiled.certificate.to_dict(),
        }

    def _op_stats(self, _request: dict) -> dict:
        return {
            "ok": True,
            "requests": self.requests,
            "cache": self.cache.stats.to_dict() if self.cache is not None else None,
        }

    def _op_shutdown(self, _request: dict) -> dict:
        self.running = False
        return {"ok": True}

    # -- Transports ------------------------------------------------------------

    def serve_stream(self, reader, writer) -> None:
        """Pump one line-oriented connection until EOF or shutdown."""
        for line in reader:
            response = self.handle_line(line)
            writer.write(json.dumps(response, sort_keys=True) + "\n")
            writer.flush()
            if not self.running:
                break

    def serve_stdio(self) -> None:
        self.serve_stream(sys.stdin, sys.stdout)

    def serve_socket(self, path: str) -> None:
        """Listen on a Unix domain socket, one connection at a time.

        Sequential accept keeps the service trivially race-free; batch
        throughput is ``repro batch``'s job, not the socket's.
        """
        import os
        import socket

        with contextlib.suppress(OSError):
            os.unlink(path)
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            server.bind(path)
            server.listen(1)
            while self.running:
                conn, _ = server.accept()
                with conn:
                    reader = conn.makefile("r", encoding="utf-8")
                    writer = conn.makefile("w", encoding="utf-8")
                    self.serve_stream(reader, writer)
        finally:
            server.close()
            with contextlib.suppress(OSError):
                os.unlink(path)
