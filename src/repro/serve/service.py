"""The long-lived compilation service: ``python -m repro serve``.

A tiny JSON-lines front end over the content-addressed cache, for
driving the compiler from editors, build systems, or test harnesses
without paying Python startup per derivation.  One request per line in,
one response object per line out, over stdio (default) or a Unix domain
socket (``--socket PATH``).

Requests and responses::

    {"op": "ping"}
        -> {"ok": true, "op": "ping"}
    {"op": "list"}
        -> {"ok": true, "op": "list", "programs": ["crc32", ...]}
    {"op": "compile", "program": "crc32", "opt_level": 1}
        -> {"ok": true, "op": "compile", "program": "crc32",
            "cache": "hit"|"miss"|"invalidated"|"off",
            "c": "<C source>", "statements": N, "elapsed_ms": ...}
    {"op": "cert", "program": "crc32"}
        -> {"ok": true, "op": "cert", "certificate": {...}}
    {"op": "stats"}
        -> {"ok": true, "op": "stats", "requests": N, "cache": {...}}
    {"op": "shutdown"}
        -> {"ok": true, "op": "shutdown"}  (and the service exits)

``compile`` and ``cert`` accept optional ``"fuel"`` and
``"deadline_ms"`` fields: the derivation then runs under a
:class:`repro.resilience.budget.Budget` and exhaustion comes back as
``{"ok": false, "error": ..., "exhausted": "fuel"|"deadline"}``.

Errors never kill the service: a stall, an unknown program, or a
malformed request produces ``{"ok": false, "error": ...}`` (stalls keep
their taxonomy slug in ``"stall"``) and the loop continues.  Every
request runs under a ``serve_request`` span and emits a
``serve_request`` event, so ``--trace`` captures the full session.

SIGTERM/SIGINT trigger a **graceful drain** once
:meth:`CompileService.install_signal_handlers` has run: an in-flight
request is finished and answered, stats are flushed, and the process
exits 0 instead of dumping a traceback from the read loop.
"""

from __future__ import annotations

import contextlib
import json
import signal
import sys
import threading
from typing import Optional

from repro.core.goals import CompileError, ResourceExhausted
from repro.serve.cache import CompilationCache


class _DrainRequested(Exception):
    """Raised out of a blocking read/accept by the signal handler."""


class CompileService:
    """Request dispatch for the JSON-lines protocol (transport-agnostic).

    ``allow_test_ops=True`` (used by the supervised worker pool's fault
    campaign, never the default CLI) enables the ``test_*`` ops that
    simulate worker misbehaviour: ``test_sleep`` (a stuck derivation),
    ``test_exit`` (a hard crash, optionally once per marker file), and
    ``test_fail`` (a canned deterministic failure).
    """

    def __init__(self, cache_dir: Optional[str] = None, allow_test_ops: bool = False):
        self.cache = CompilationCache(cache_dir) if cache_dir is not None else None
        self.requests = 0
        self.running = True
        self.allow_test_ops = allow_test_ops
        self.draining = False
        self._in_flight = False

    # -- Graceful drain --------------------------------------------------------

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only).

        If the service is idle (blocked reading the next request or
        accepting a connection), the handler raises straight out of the
        blocking call; if a request is in flight, it only sets the drain
        flag and the loop exits after the response has been written.
        """

        def handler(signum, frame):
            self.draining = True
            self.running = False
            if not self._in_flight:
                raise _DrainRequested()

        try:
            signal.signal(signal.SIGTERM, handler)
            signal.signal(signal.SIGINT, handler)
        except ValueError:  # not the main thread (embedded use): no-op
            pass

    def drain_summary(self) -> str:
        parts = [f"drained: {self.requests} requests served"]
        if self.cache is not None:
            stats = self.cache.stats
            parts.append(
                f"cache: {stats.hits} hits, {stats.misses} misses, "
                f"{stats.invalidated} invalidated, {stats.stores} stores"
            )
        return "; ".join(parts)

    # -- Request handling ------------------------------------------------------

    def handle_line(self, line: str) -> dict:
        line = line.strip()
        if not line:
            return {"ok": False, "error": "empty request"}
        try:
            request = json.loads(line)
        except ValueError as exc:
            return {"ok": False, "error": f"bad JSON: {exc}"}
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        return self.handle(request)

    def handle(self, request: dict) -> dict:
        from repro.obs.trace import NULL_SPAN, current_tracer

        self.requests += 1
        op = request.get("op")
        tracer = current_tracer()
        span = (
            tracer.span("serve_request", name=str(op)) if tracer.enabled else NULL_SPAN
        )
        self._in_flight = True
        try:
            with span:
                handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
                if handler is None or (
                    op.startswith("test_") and not self.allow_test_ops
                ):
                    response = {"ok": False, "error": f"unknown op {op!r}"}
                else:
                    try:
                        response = handler(request)
                    except ResourceExhausted as exc:
                        response = {
                            "ok": False,
                            "error": str(exc).splitlines()[0],
                            "exhausted": exc.resource,
                        }
                    except CompileError as exc:
                        response = {
                            "ok": False,
                            "error": str(exc).splitlines()[0],
                            "stall": exc.report.reason,
                        }
                    except Exception as exc:  # noqa: BLE001 - never kill the loop
                        response = {"ok": False, "error": repr(exc)}
                response.setdefault("op", op)
        finally:
            self._in_flight = False
        if tracer.enabled:
            tracer.event(
                "serve_request",
                op=str(op),
                ok=bool(response.get("ok")),
                program=str(request.get("program", "")),
                detail=str(response.get("error", "")),
            )
            tracer.inc("serve.requests")
            tracer.inc(f"serve.{'ok' if response.get('ok') else 'error'}")
        return response

    # -- Ops -------------------------------------------------------------------

    def _op_ping(self, _request: dict) -> dict:
        return {"ok": True}

    def _op_list(self, _request: dict) -> dict:
        from repro.programs.registry import all_programs

        return {"ok": True, "programs": [p.name for p in all_programs()]}

    @staticmethod
    def _request_budget(request: dict):
        """An engine budget when the request carries fuel/deadline bounds."""
        fuel = request.get("fuel")
        deadline_ms = request.get("deadline_ms")
        if fuel is None and deadline_ms is None:
            return None
        from repro.resilience.budget import Budget

        return Budget(
            fuel=int(fuel) if fuel is not None else None,
            deadline=float(deadline_ms) / 1000.0 if deadline_ms is not None else None,
        )

    def _compile(self, request: dict):
        from repro.programs.registry import get_program
        from repro.serve.cache import compile_program_cached

        name = request.get("program")
        try:
            program = get_program(name)
        except KeyError:
            raise ValueError(f"unknown program {name!r}") from None
        opt_level = int(request.get("opt_level", 0))
        budget = self._request_budget(request)
        if budget is not None:
            from repro.stdlib import default_engine

            engine = default_engine()
            engine.budget = budget
            if self.cache is not None:
                return self.cache.compile(
                    program.build_model(),
                    program.build_spec(),
                    engine=engine,
                    opt_level=opt_level,
                    input_gen=program.validation_input_gen(),
                )
            compiled = engine.compile_function(
                program.build_model(), program.build_spec()
            )
            if opt_level > 0:
                compiled = compiled.optimize(
                    opt_level, input_gen=program.validation_input_gen()
                )
            return compiled, "off"
        if self.cache is not None:
            return compile_program_cached(self.cache, program, opt_level=opt_level)
        return program.compile(opt_level=opt_level), "off"

    def _op_compile(self, request: dict) -> dict:
        import time

        start = time.perf_counter()
        compiled, outcome = self._compile(request)
        return {
            "ok": True,
            "program": compiled.name,
            "cache": outcome,
            "c": compiled.c_source(),
            "statements": compiled.statement_count(),
            "elapsed_ms": (time.perf_counter() - start) * 1000.0,
        }

    def _op_cert(self, request: dict) -> dict:
        compiled, outcome = self._compile(request)
        return {
            "ok": True,
            "program": compiled.name,
            "cache": outcome,
            "certificate": compiled.certificate.to_dict(),
        }

    def _op_stats(self, _request: dict) -> dict:
        return {
            "ok": True,
            "requests": self.requests,
            "cache": self.cache.stats.to_dict() if self.cache is not None else None,
        }

    def _op_shutdown(self, _request: dict) -> dict:
        self.running = False
        return {"ok": True}

    # -- Test ops (fault-campaign hooks; require allow_test_ops) ---------------

    def _op_test_sleep(self, request: dict) -> dict:
        """Simulate a wedged derivation: block for ``seconds``."""
        import time

        time.sleep(float(request.get("seconds", 1.0)))
        return {"ok": True, "slept": float(request.get("seconds", 1.0))}

    def _op_test_exit(self, request: dict) -> dict:
        """Simulate a hard worker crash (``os._exit``: no cleanup, no reply).

        With ``"marker": PATH`` the crash happens only while the marker
        file does not exist (it is created first), modelling a
        *transient* mid-compile death: the retried request, served by a
        restarted worker, finds the marker and succeeds.
        """
        import os

        marker = request.get("marker")
        if marker is not None:
            if os.path.exists(marker):
                return {"ok": True, "skipped": True}
            with open(marker, "w") as fh:
                fh.write("crashed once\n")
        os._exit(int(request.get("code", 9)))

    def _op_test_fail(self, request: dict) -> dict:
        """Simulate a deterministic compile failure with a taxonomy slug."""
        return {
            "ok": False,
            "error": "injected deterministic failure",
            "stall": str(request.get("stall", "no-binding-lemma")),
            "program": str(request.get("program", "")),
        }

    # -- Transports ------------------------------------------------------------

    def serve_stream(self, reader, writer) -> None:
        """Pump one line-oriented connection until EOF, drain, or shutdown."""
        try:
            for line in reader:
                response = self.handle_line(line)
                writer.write(json.dumps(response, sort_keys=True) + "\n")
                writer.flush()
                if not self.running:
                    break
        except _DrainRequested:
            pass

    def serve_stdio(self) -> None:
        self.serve_stream(sys.stdin, sys.stdout)

    def serve_socket(self, path: str, concurrency: int = 1) -> None:
        """Listen on a Unix domain socket.

        ``concurrency=1`` (the default) accepts one connection at a
        time, which keeps the plain cache-backed service trivially
        race-free.  ``concurrency > 1`` serves each connection on its
        own thread -- meant for the supervised front end
        (:class:`repro.serve.supervisor.SupervisedService`), whose
        dispatch is thread-safe and whose admission queue is the actual
        concurrency limiter.
        """
        import os
        import socket

        with contextlib.suppress(OSError):
            os.unlink(path)
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        threads = []
        try:
            server.bind(path)
            server.listen(max(1, concurrency))
            if concurrency > 1:
                # Shutdown arrives on a *connection* thread while this
                # loop blocks in accept(); wake periodically to notice.
                server.settimeout(0.2)
            while self.running:
                try:
                    conn, _ = server.accept()
                except socket.timeout:
                    continue
                except _DrainRequested:
                    break
                except OSError:
                    break
                conn.settimeout(None)
                if concurrency <= 1:
                    with conn:
                        reader = conn.makefile("r", encoding="utf-8")
                        writer = conn.makefile("w", encoding="utf-8")
                        self.serve_stream(reader, writer)
                else:
                    thread = threading.Thread(
                        target=self._serve_connection, args=(conn,), daemon=True
                    )
                    thread.start()
                    threads.append(thread)
                    threads = [t for t in threads if t.is_alive()]
        except _DrainRequested:
            pass
        finally:
            server.close()
            for thread in threads:
                thread.join(timeout=5.0)
            with contextlib.suppress(OSError):
                os.unlink(path)

    def _serve_connection(self, conn) -> None:
        with conn:
            reader = conn.makefile("r", encoding="utf-8")
            writer = conn.makefile("w", encoding="utf-8")
            with contextlib.suppress(BrokenPipeError, OSError):
                self.serve_stream(reader, writer)
