"""Supervised worker pool for the compilation service.

The plain JSON-lines service (:mod:`repro.serve.service`) compiles in
process: one wedged derivation blocks the loop forever and one crash
kills the server.  This module is the robustness substrate the ROADMAP's
multi-tenant server needs: a long-lived parent that owns a pool of
:mod:`repro.serve.worker` subprocesses (warm lemma DBs, persistent
between requests) and gives every failure path a budget, a retry
policy, and a trace.

Policies, all explicit in :class:`SupervisorConfig`:

- **wall-clock timeouts** -- each request gets a hard deadline (its own
  ``deadline_ms`` capped by ``request_timeout``); the supervisor
  enforces it with ``select`` on the worker pipe and SIGKILLs the
  worker when it expires.  A timeout is *deterministic* (the same
  request would wedge again), so it fails fast with a structured
  ``{"ok": false, "error": "timeout"}`` and never blocks the next
  request -- the slot respawns lazily.
- **retry with backoff** -- a worker death mid-request is *transient*
  (the retried request runs on a fresh worker), so it is retried up to
  ``max_retries`` times.  Respawns back off exponentially with jitter,
  and a slot that restarts more than ``max_restarts_in_window`` times
  inside ``restart_window`` seconds enters cooldown instead of crash
  looping; requests then get ``{"ok": false, "error": "unavailable",
  "retry_after_ms": ...}``.
- **admission control** -- at most ``queue_depth`` requests may wait
  for an idle worker; beyond that the service answers immediately with
  ``{"ok": false, "error": "overloaded", "retry_after_ms": ...}``
  instead of queueing unboundedly.
- **graceful degradation** -- after ``degrade_after`` consecutive
  compile failures for one program, the supervisor stops dispatching it
  and falls back to :func:`repro.resilience.degrade.compile_or_degrade`
  in the parent: the response carries ``"degraded": true`` and
  ``"verified": false``, never a certificate it does not have.

Everything is observable through :mod:`repro.obs` (``serve.retry.*``,
``serve.timeout.*``, ``serve.worker.restart``, ``serve.degraded``,
``serve.overloaded`` counters; ``worker_restart`` / ``serve_retry`` /
``serve_degraded`` events; a ``supervised_request`` span per dispatch)
and mirrored into :meth:`Supervisor.stats` for transports without a
tracer.
"""

from __future__ import annotations

import json
import os
import queue
import random
import select
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.serve.service import CompileService


class WorkerTimeout(Exception):
    """The worker failed to answer inside the request's wall-clock budget."""


class WorkerDied(Exception):
    """The worker process exited (or its pipe broke) mid-request."""


class WorkerUnavailable(Exception):
    """The slot is in crash-loop cooldown; carries the suggested wait."""

    def __init__(self, retry_after_ms: int):
        super().__init__(f"worker in cooldown for {retry_after_ms}ms")
        self.retry_after_ms = retry_after_ms


@dataclass(frozen=True)
class SupervisorConfig:
    """Every robustness policy of the pool, in one picklable record."""

    workers: int = 2
    request_timeout: float = 30.0   # hard wall-clock seconds per request
    max_retries: int = 1            # extra attempts for transient failures
    queue_depth: int = 8            # max requests waiting for an idle worker
    degrade_after: int = 3          # consecutive failures before degradation
    backoff_base: float = 0.05      # first respawn delay (seconds)
    backoff_cap: float = 2.0        # respawn delay ceiling
    backoff_jitter: float = 0.25    # +- fraction of the delay
    restart_window: float = 60.0    # seconds over which restarts are counted
    max_restarts_in_window: int = 5  # beyond this: cooldown, not crash loop
    spawn_timeout: float = 60.0     # ready-handshake deadline
    seed: int = 0                   # jitter RNG seed (reproducible runs)

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "request_timeout": self.request_timeout,
            "max_retries": self.max_retries,
            "queue_depth": self.queue_depth,
            "degrade_after": self.degrade_after,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "restart_window": self.restart_window,
            "max_restarts_in_window": self.max_restarts_in_window,
        }


def default_worker_command(
    cache_dir: Optional[str] = None, allow_test_ops: bool = False
) -> List[str]:
    cmd = [sys.executable, "-m", "repro.serve.worker"]
    if cache_dir is not None:
        cmd += ["--cache", cache_dir]
    if allow_test_ops:
        cmd.append("--allow-test-ops")
    return cmd


def _worker_env() -> Dict[str, str]:
    """The child environment, with this repro importable regardless of how
    the parent found it (tests run from a source tree, not an install)."""
    import repro

    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    return env


class WorkerHandle:
    """One worker subprocess plus the line-buffered pipe protocol."""

    def __init__(self, index: int, command: List[str]):
        self.index = index
        self.command = command
        self.proc: Optional[subprocess.Popen] = None
        self.pid: Optional[int] = None
        self._buf = b""

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def spawn(self, ready_timeout: float) -> None:
        """Start the process and wait for the ready handshake."""
        self._buf = b""
        try:
            self.proc = subprocess.Popen(
                self.command,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                env=_worker_env(),
                bufsize=0,
            )
        except OSError as exc:
            raise WorkerDied(f"spawn failed: {exc}") from None
        try:
            ready = self._read_line(ready_timeout)
        except (WorkerTimeout, WorkerDied) as exc:
            self.kill()
            raise WorkerDied(f"no ready handshake: {exc}") from None
        if not isinstance(ready, dict) or not ready.get("ready"):
            self.kill()
            raise WorkerDied(f"bad handshake: {ready!r}")
        self.pid = ready.get("pid")

    def request(self, payload: dict, timeout: float) -> dict:
        """One request-response exchange under a wall-clock deadline."""
        if not self.alive:
            raise WorkerDied("worker is not running")
        line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        try:
            self.proc.stdin.write(line)
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError) as exc:
            raise WorkerDied(f"write failed: {exc}") from None
        return self._read_line(timeout)

    def _read_line(self, timeout: float) -> dict:
        deadline = time.monotonic() + timeout
        fd = self.proc.stdout.fileno()
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                raw, self._buf = self._buf[:newline], self._buf[newline + 1:]
                try:
                    return json.loads(raw.decode("utf-8"))
                except ValueError as exc:
                    raise WorkerDied(f"garbled response: {exc}") from None
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerTimeout()
            readable, _, _ = select.select([fd], [], [], remaining)
            if not readable:
                raise WorkerTimeout()
            chunk = os.read(fd, 65536)
            if not chunk:
                raise WorkerDied("worker closed its pipe")
            self._buf += chunk

    def kill(self) -> None:
        if self.proc is None:
            return
        try:
            self.proc.kill()
        except OSError:
            pass
        try:
            self.proc.wait(timeout=5.0)
        except (subprocess.TimeoutExpired, OSError):
            pass
        for stream in (self.proc.stdin, self.proc.stdout):
            if stream is not None:
                try:
                    stream.close()
                except OSError:
                    pass
        self.proc = None
        self._buf = b""

    def close(self) -> None:
        """Polite shutdown: EOF on stdin, then kill if it lingers."""
        if self.proc is None:
            return
        try:
            self.proc.stdin.close()
            self.proc.wait(timeout=2.0)
            self.proc.stdout.close()
            self.proc = None
        except (OSError, subprocess.TimeoutExpired):
            self.kill()


class _Slot:
    """One pool position: a worker handle plus its restart bookkeeping."""

    def __init__(self, index: int):
        self.index = index
        self.handle: Optional[WorkerHandle] = None
        self.restarts: deque = deque()      # monotonic timestamps, windowed
        self.consecutive_failures = 0       # spawn failures since last success
        self.cooldown_until = 0.0
        self.ever_spawned = False


class Supervisor:
    """Dispatches requests to a pool of supervised worker subprocesses.

    ``submit`` is thread-safe: concurrent transports check workers out
    of an idle queue, and the admission counter bounds how many callers
    may wait.  Use as a context manager (spawns eagerly on ``start``)::

        with Supervisor(SupervisorConfig(workers=2), cache_dir=d) as sup:
            response = sup.submit({"op": "compile", "program": "crc32"})
    """

    def __init__(
        self,
        config: Optional[SupervisorConfig] = None,
        cache_dir: Optional[str] = None,
        allow_test_ops: bool = False,
        worker_command: Optional[List[str]] = None,
        program_resolver: Optional[Callable[[str], object]] = None,
    ):
        self.config = config or SupervisorConfig()
        self.cache_dir = cache_dir
        self.worker_command = worker_command or default_worker_command(
            cache_dir, allow_test_ops
        )
        self._resolver = program_resolver
        self._slots = [_Slot(i) for i in range(self.config.workers)]
        self._idle: "queue.Queue[int]" = queue.Queue()
        self._adm_lock = threading.Lock()
        self._pending = 0
        self._fail_streak: Dict[str, int] = {}
        self._streak_lock = threading.Lock()
        self._rng = random.Random(self.config.seed)
        self._sleep = time.sleep  # injectable for tests
        self.counters: Dict[str, int] = {}
        self._counter_lock = threading.Lock()
        # The tracer's span stack is single-threaded by design (lock-free
        # hot path, strict LIFO nesting).  Concurrent clients would
        # interleave span_open/span_close events in an order no nesting
        # can represent, so at most one in-flight request owns a span at
        # a time; overlapping requests keep their counters and events
        # but skip the span.
        self._span_gate = threading.Lock()
        self._started = False

    # -- Lifecycle -------------------------------------------------------------

    def start(self) -> "Supervisor":
        """Spawn the pool eagerly; a slot that fails to spawn stays lazy."""
        if self._started:
            return self
        self._started = True
        for slot in self._slots:
            try:
                self._spawn_slot(slot)
            except (WorkerDied, WorkerUnavailable):
                pass  # lazily retried (with backoff) at first checkout
            self._idle.put(slot.index)
        return self

    def stop(self) -> None:
        for slot in self._slots:
            if slot.handle is not None:
                slot.handle.close()
                slot.handle = None
        self._started = False

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- Observability ---------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._counter_lock:
            self.counters[name] = self.counters.get(name, 0) + n
        from repro.obs.trace import current_tracer

        tracer = current_tracer()
        if tracer.enabled:
            tracer.inc(name, n)

    def _event(self, name: str, **payload) -> None:
        from repro.obs.trace import current_tracer

        tracer = current_tracer()
        if tracer.enabled:
            tracer.event(name, **payload)

    def stats(self) -> dict:
        with self._counter_lock:
            counters = dict(self.counters)
        return {
            "config": self.config.to_dict(),
            "counters": counters,
            "workers": [
                {
                    "index": slot.index,
                    "alive": slot.handle is not None and slot.handle.alive,
                    "pid": slot.handle.pid if slot.handle is not None else None,
                    "restarts": len(slot.restarts),
                    "cooling_down": slot.cooldown_until > time.monotonic(),
                }
                for slot in self._slots
            ],
        }

    # -- Spawn / restart policy ------------------------------------------------

    def _backoff_delay(self, consecutive: int) -> float:
        delay = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2 ** max(0, consecutive - 1)),
        )
        jitter = 1.0 + self.config.backoff_jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.0, delay * jitter)

    def _spawn_slot(self, slot: _Slot) -> WorkerHandle:
        """Spawn (or respawn) a slot's worker, enforcing the restart caps."""
        now = time.monotonic()
        if slot.cooldown_until > now:
            raise WorkerUnavailable(int((slot.cooldown_until - now) * 1000) + 1)
        window = self.config.restart_window
        while slot.restarts and now - slot.restarts[0] > window:
            slot.restarts.popleft()
        if len(slot.restarts) >= self.config.max_restarts_in_window:
            slot.cooldown_until = slot.restarts[0] + window
            self._count("serve.worker.cooldown")
            self._event(
                "worker_restart",
                worker=slot.index,
                reason="cooldown",
                restarts=len(slot.restarts),
            )
            raise WorkerUnavailable(
                int((slot.cooldown_until - now) * 1000) + 1
            )
        is_restart = slot.ever_spawned
        if is_restart:
            slot.restarts.append(now)
            delay = self._backoff_delay(slot.consecutive_failures + 1)
            if delay > 0:
                self._sleep(delay)
        else:
            delay = 0.0
        handle = WorkerHandle(slot.index, self.worker_command)
        try:
            handle.spawn(self.config.spawn_timeout)
        except WorkerDied:
            slot.ever_spawned = True
            slot.consecutive_failures += 1
            slot.handle = None
            raise
        slot.ever_spawned = True
        slot.consecutive_failures = 0
        slot.handle = handle
        if is_restart:
            self._count("serve.worker.restart")
            self._event(
                "worker_restart",
                worker=slot.index,
                reason="respawn",
                backoff_ms=int(delay * 1000),
                restarts=len(slot.restarts),
            )
        return handle

    def _ensure_worker(self, slot: _Slot) -> WorkerHandle:
        if slot.handle is not None and slot.handle.alive:
            return slot.handle
        if slot.handle is not None:
            slot.handle.kill()
            slot.handle = None
        return self._spawn_slot(slot)

    def _retire(self, slot: _Slot, reason: str) -> None:
        """Kill a slot's worker (timeout or death); respawn is lazy."""
        if slot.handle is not None:
            slot.handle.kill()
            slot.handle = None
        self._event("worker_restart", worker=slot.index, reason=reason)

    # -- Failure streaks and degradation ---------------------------------------

    def _note_failure(self, program: str) -> int:
        if not program:
            return 0
        with self._streak_lock:
            self._fail_streak[program] = self._fail_streak.get(program, 0) + 1
            return self._fail_streak[program]

    def _note_success(self, program: str) -> None:
        if not program:
            return
        with self._streak_lock:
            self._fail_streak.pop(program, None)

    def failure_streak(self, program: str) -> int:
        with self._streak_lock:
            return self._fail_streak.get(program, 0)

    def _degraded_response(self, request: dict) -> Optional[dict]:
        """The parent-side interpreter fallback; ``None`` if impossible."""
        program_name = str(request.get("program", ""))
        resolver = self._resolver
        if resolver is None:
            from repro.programs.registry import get_program

            resolver = get_program
        try:
            program = resolver(program_name)
        except KeyError:
            return None
        from repro.resilience.budget import Budget
        from repro.resilience.degrade import DegradedFunction, compile_or_degrade

        budget = Budget(
            fuel=200_000, deadline=min(10.0, self.config.request_timeout)
        )
        try:
            result = compile_or_degrade(
                program.build_model(), program.build_spec(), budget=budget
            )
        except Exception as exc:  # noqa: BLE001 - degrade must not throw
            return {
                "ok": False,
                "error": f"degraded fallback failed: {exc!r}",
                "program": program_name,
            }
        if not isinstance(result, DegradedFunction):
            # The parent compile succeeded after all: the streak was
            # environmental (e.g. a crashing worker), not the program.
            self._note_success(program_name)
            return {
                "ok": True,
                "program": program_name,
                "cache": "off",
                "c": result.c_source(),
                "statements": result.statement_count(),
                "degraded": False,
            }
        self._count("serve.degraded")
        self._event(
            "serve_degraded", program=program_name, reason=result.report.reason
        )
        return {
            "ok": True,
            "program": program_name,
            "degraded": True,
            "verified": False,
            "stall": result.report.reason,
            "banner": result.banner(),
        }

    # -- Dispatch --------------------------------------------------------------

    def _retry_after_ms(self) -> int:
        """A polite client backoff hint: one request timeout's worth."""
        return int(self.config.request_timeout * 1000)

    def _request_deadline(self, request: dict) -> float:
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is None:
            return self.config.request_timeout
        # Grace so the worker's own engine deadline can fire first with a
        # structured ``exhausted`` response; the kill is the hard backstop.
        return min(
            self.config.request_timeout, float(deadline_ms) / 1000.0 + 0.25
        )

    def submit(self, request: dict) -> dict:
        """Serve one request under every policy; never raises."""
        from repro.obs.trace import NULL_SPAN, current_tracer

        op = str(request.get("op", ""))
        tracer = current_tracer()
        gated = tracer.enabled and self._span_gate.acquire(blocking=False)
        span = tracer.span("supervised_request", name=op) if gated else NULL_SPAN
        try:
            with span:
                response = self._submit_inner(request, op)
        finally:
            if gated:
                self._span_gate.release()
        response.setdefault("op", op)
        return response

    def _submit_inner(self, request: dict, op: str) -> dict:
        program = str(request.get("program", ""))
        if op == "shutdown":
            # Lifecycle belongs to the front end; a worker must never be
            # told to exit by a tenant request.
            return {"ok": False, "error": "shutdown is a front-end op"}
        if (
            op in ("compile", "cert")
            and self.failure_streak(program) >= self.config.degrade_after
        ):
            degraded = self._degraded_response(request)
            if degraded is not None:
                return degraded
        # Admission control: bounded waiting room, explicit backpressure.
        with self._adm_lock:
            if self._pending >= self.config.queue_depth:
                self._count("serve.overloaded")
                return {
                    "ok": False,
                    "error": "overloaded",
                    "retry_after_ms": self._retry_after_ms(),
                }
            self._pending += 1
        try:
            try:
                index = self._idle.get(timeout=self.config.request_timeout)
            except queue.Empty:
                self._count("serve.overloaded")
                return {
                    "ok": False,
                    "error": "overloaded",
                    "retry_after_ms": self._retry_after_ms(),
                }
        finally:
            with self._adm_lock:
                self._pending -= 1
        slot = self._slots[index]
        try:
            return self._dispatch(slot, request, op, program)
        finally:
            self._idle.put(index)

    def _dispatch(self, slot: _Slot, request: dict, op: str, program: str) -> dict:
        deadline = self._request_deadline(request)
        attempts = 0
        while True:
            attempts += 1
            try:
                worker = self._ensure_worker(slot)
            except WorkerUnavailable as exc:
                self._count("serve.unavailable")
                return {
                    "ok": False,
                    "error": "unavailable",
                    "retry_after_ms": exc.retry_after_ms,
                }
            except WorkerDied as exc:
                if attempts <= self.config.max_retries:
                    self._count("serve.retry.spawn")
                    continue
                self._count("serve.unavailable")
                return {
                    "ok": False,
                    "error": "unavailable",
                    "detail": str(exc),
                    "retry_after_ms": self._retry_after_ms(),
                }
            try:
                response = worker.request(request, deadline)
            except WorkerTimeout:
                # Deterministic: the same request would wedge again.
                # Kill the worker so the *next* request gets a fresh one;
                # fail this one fast instead of retrying the wedge.
                self._count("serve.timeout.requests")
                self._count("serve.timeout.killed")
                self._retire(slot, reason="timeout")
                self._note_failure(program)
                return {
                    "ok": False,
                    "error": "timeout",
                    "timeout_s": deadline,
                    "attempts": attempts,
                }
            except WorkerDied as exc:
                self._count("serve.retry.worker_death")
                self._retire(slot, reason="worker-death")
                if attempts <= self.config.max_retries:
                    self._count("serve.retry.attempts")
                    self._event(
                        "serve_retry",
                        op=op,
                        attempt=attempts,
                        program=program,
                        reason="worker-death",
                    )
                    continue
                self._note_failure(program)
                return {
                    "ok": False,
                    "error": "worker-lost",
                    "detail": str(exc),
                    "attempts": attempts,
                }
            if not isinstance(response, dict):
                response = {"ok": False, "error": f"bad response: {response!r}"}
            if response.get("ok"):
                self._note_success(program)
            elif "stall" in response or "exhausted" in response:
                # Deterministic compile failure: count toward degradation.
                self._note_failure(program)
            if attempts > 1:
                response.setdefault("attempts", attempts)
            return response


class SupervisedService(CompileService):
    """The JSON-lines front end backed by a :class:`Supervisor`.

    Reuses the plain service's transports (stdio, Unix socket, graceful
    drain) but dispatches every tenant op through the pool.  ``stats``
    and ``shutdown`` are front-end ops: stats reports the supervisor's
    counters and worker states, shutdown stops the accept loop (the
    pool itself is stopped by whoever owns the supervisor).
    """

    def __init__(self, supervisor: Supervisor):
        super().__init__(cache_dir=None)
        self.supervisor = supervisor

    def handle(self, request: dict) -> dict:
        from repro.obs.trace import current_tracer

        self.requests += 1
        op = request.get("op")
        if op == "shutdown":
            self.running = False
            return {"ok": True, "op": "shutdown"}
        if op == "stats":
            return {
                "ok": True,
                "op": "stats",
                "requests": self.requests,
                "supervisor": self.supervisor.stats(),
            }
        response = self.supervisor.submit(request)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.event(
                "serve_request",
                op=str(op),
                ok=bool(response.get("ok")),
                program=str(request.get("program", "")),
                detail=str(response.get("error", "")),
            )
            tracer.inc("serve.requests")
            tracer.inc(f"serve.{'ok' if response.get('ok') else 'error'}")
        return response

    def drain_summary(self) -> str:
        counters = self.supervisor.stats()["counters"]
        summary = ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
        return (
            f"drained: {self.requests} requests served"
            + (f"; {summary}" if summary else "")
        )
