"""The supervised pool's worker process: ``python -m repro.serve.worker``.

One worker is one long-lived subprocess speaking the same JSON-lines
protocol as :mod:`repro.serve.service` over its stdin/stdout, plus a
one-line ``{"ready": true, "pid": ...}`` handshake emitted after the
warm-up so the supervisor can tell a slow import from a dead spawn.

Warm state is the whole point of the pool: the worker pre-builds the
standard lemma databases and touches the program registry at startup,
so every request after the handshake pays proof search only, not
import-and-construct.  The worker itself stays deliberately dumb --
timeouts, retries, backpressure, and degradation all live in the parent
:class:`~repro.serve.supervisor.Supervisor`, which owns the process and
is free to SIGKILL it at any moment.  Nothing the worker does between
requests needs cleanup: cache publishes are atomic and lock files go
stale-and-stolen, so a kill can cost a cold compile, never corruption.

``--allow-test-ops`` enables the ``test_*`` fault hooks (simulated
hangs, hard exits, canned failures); the supervisor only passes it for
fault campaigns and tests, never in the default CLI path.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def warm_up() -> None:
    """Build the warm per-process state one request should not pay for."""
    from repro.programs.registry import all_programs
    from repro.stdlib import default_databases

    default_databases()
    all_programs()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.serve.worker")
    parser.add_argument("--cache", metavar="DIR", default=None)
    parser.add_argument("--allow-test-ops", action="store_true")
    args = parser.parse_args(argv)

    from repro.serve.service import CompileService

    service = CompileService(
        cache_dir=args.cache, allow_test_ops=args.allow_test_ops
    )
    warm_up()
    sys.stdout.write(json.dumps({"ready": True, "pid": os.getpid()}) + "\n")
    sys.stdout.flush()
    for line in sys.stdin:
        if not line.strip():
            continue
        response = service.handle_line(line)
        sys.stdout.write(json.dumps(response, sort_keys=True) + "\n")
        sys.stdout.flush()
        if not service.running:
            break
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
