"""``repro.serve``: content-addressed caching and batch compilation.

The paper's proof search is deterministic and non-backtracking (§3.2): a
derivation is a *pure function* of the annotated model, the ABI spec,
the ordered lemma databases, the solver bank, the word width, and the
optimization level.  That purity is exactly the precondition for two
serving-scale features:

- :mod:`repro.serve.cache` -- a content-addressed compilation cache
  whose keys fingerprint every derivation input
  (:mod:`repro.serve.fingerprint`), storing the serialized Bedrock2 AST
  and :class:`~repro.core.certificate.Certificate` on disk.  The cache
  is **untrusted**: entries are re-validated by the existing checkers on
  every load, keeping the TCB where it already was.
- :mod:`repro.serve.batch` -- an embarrassingly parallel batch compiler
  (``ProcessPoolExecutor`` worker pool, per-job
  :class:`~repro.resilience.budget.Budget` guards) over manifests of
  registry programs and fuzz corpora.
- :mod:`repro.serve.service` -- a long-lived JSON-lines front end
  (``python -m repro serve``) speaking over stdio or a Unix socket.

Cache traffic is observable through :mod:`repro.obs` (``cache_lookup`` /
``cache_store`` events, ``cache.*`` counters); see ``docs/serving.md``.
"""

from repro.serve.batch import (
    BatchJob,
    BatchReport,
    expand_manifest,
    fuzz_manifest,
    load_manifest,
    registry_manifest,
    run_batch,
)
from repro.serve.cache import CompilationCache, compile_program_cached
from repro.serve.fingerprint import compile_key, source_fingerprint, spec_fingerprint
from repro.serve.service import CompileService

__all__ = [
    "BatchJob",
    "BatchReport",
    "CompilationCache",
    "CompileService",
    "compile_key",
    "compile_program_cached",
    "expand_manifest",
    "fuzz_manifest",
    "load_manifest",
    "registry_manifest",
    "run_batch",
    "source_fingerprint",
    "spec_fingerprint",
]
