"""The parallel batch compiler.

A batch is a manifest of :class:`BatchJob` descriptions -- registry
programs and/or seeded fuzz-corpus cases -- each compiled (and, for
``opt_level > 0``, run through the translation-validated optimizer)
under its own fuel/deadline :class:`~repro.resilience.budget.Budget`.
With ``jobs_n > 1`` the batch fans out over a
``concurrent.futures.ProcessPoolExecutor``; every worker gets only
picklable inputs (a frozen :class:`BatchJob` plus a
:class:`~repro.resilience.budget.BudgetSpec`) and rebuilds models,
specs, and input generators deterministically on its side of the
process boundary -- fuzz cases are regenerated from ``(seed, index)``
exactly as ``repro fuzz`` would draw them.

All workers may share one :class:`~repro.serve.cache.CompilationCache`
directory: stores are atomic (``os.replace``), so concurrent writers
never publish a torn entry, and a batch re-run over a warm cache is
pure re-validation.  Stalls keep their structured taxonomy slugs from
:class:`~repro.core.goals.StallReport`, so the aggregate report shows
*why* the rejected fraction of a corpus was rejected.
"""

from __future__ import annotations

import json
import random
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.goals import CompileError, ResourceExhausted
from repro.resilience.budget import BudgetSpec
from repro.serve.cache import CacheStats, CompilationCache

DEFAULT_FUEL = 200_000
DEFAULT_DEADLINE = 20.0  # seconds per job, measured from job start


@dataclass(frozen=True)
class BatchJob:
    """One unit of batch work; frozen and picklable by construction.

    ``kind`` is ``"program"`` (``name`` is a registry entry) or
    ``"fuzz"`` (the worker regenerates the case from ``seed`` and
    ``index``, which also picks the generator family rotation).
    """

    kind: str
    name: str
    opt_level: int = 0
    seed: int = 0
    index: int = 0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "opt_level": self.opt_level,
            "seed": self.seed,
            "index": self.index,
        }

    @staticmethod
    def from_dict(data: dict) -> "BatchJob":
        return BatchJob(
            kind=data["kind"],
            name=data["name"],
            opt_level=int(data.get("opt_level", 0)),
            seed=int(data.get("seed", 0)),
            index=int(data.get("index", 0)),
        )


@dataclass
class BatchReport:
    """The aggregate outcome of one batch run."""

    jobs_n: int
    wall_s: float = 0.0
    results: List[dict] = field(default_factory=list)
    cache_stats: Optional[dict] = None
    cache_dir: Optional[str] = None

    @property
    def ok_count(self) -> int:
        return sum(1 for r in self.results if r["outcome"] == "ok")

    @property
    def stalls(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for r in self.results:
            if r["outcome"].startswith(("stall:", "exhausted:")):
                slug = r["outcome"].split(":", 1)[1]
                tally[slug] = tally.get(slug, 0) + 1
        return tally

    @property
    def crashes(self) -> List[dict]:
        return [r for r in self.results if r["outcome"] in ("crash", "worker-lost")]

    @property
    def throughput(self) -> float:
        """Completed jobs per second of wall time."""
        return len(self.results) / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "jobs_n": self.jobs_n,
            "wall_s": self.wall_s,
            "throughput": self.throughput,
            "total": len(self.results),
            "ok": self.ok_count,
            "stalls": self.stalls,
            "crashes": len(self.crashes),
            "cache_dir": self.cache_dir,
            "cache": self.cache_stats,
            "results": list(self.results),
        }

    def render(self) -> str:
        lines = [
            f"batch: {len(self.results)} jobs, {self.ok_count} ok, "
            f"{sum(self.stalls.values())} stalled, {len(self.crashes)} crashed "
            f"({self.wall_s:.2f}s wall, {self.throughput:.1f} jobs/s, "
            f"workers={self.jobs_n})"
        ]
        if self.stalls:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(self.stalls.items()))
            lines.append(f"  stalls: {parts}")
        if self.cache_stats is not None:
            cs = self.cache_stats
            lines.append(
                f"  cache [{self.cache_dir}]: {cs['hits']} hits, "
                f"{cs['misses']} misses, {cs['invalidated']} invalidated, "
                f"{cs['stores']} stores"
            )
        for r in self.results:
            if r["outcome"] != "ok":
                detail = f": {r['detail']}" if r.get("detail") else ""
                lines.append(f"  {r['job']} -> {r['outcome']}{detail}")
        return "\n".join(lines)


# -- Manifests ---------------------------------------------------------------------


def registry_manifest(opt_level: int = 0) -> List[BatchJob]:
    """One job per registry program (the 7 rows of Table 2)."""
    from repro.programs.registry import all_programs

    return [
        BatchJob(kind="program", name=p.name, opt_level=opt_level)
        for p in all_programs()
    ]


def fuzz_manifest(seed: int, count: int, opt_level: int = 0) -> List[BatchJob]:
    """A corpus of ``count`` fuzz cases, seeded exactly like ``repro fuzz``.

    The per-case seeds are pre-drawn from the master stream here so the
    corpus is identical whether it is later compiled with one worker or
    many -- workers never touch the shared stream.
    """
    master = random.Random(seed)
    jobs = []
    for index in range(count):
        case_seed = master.getrandbits(64)
        jobs.append(
            BatchJob(
                kind="fuzz",
                name=f"fuzz[{seed}:{index}]",
                opt_level=opt_level,
                seed=case_seed,
                index=index,
            )
        )
    return jobs


def expand_manifest(data) -> List[BatchJob]:
    """Decode a manifest document into jobs.

    Accepted shapes:

    - ``"registry"`` -- all registry programs at ``-O0``;
    - ``["crc32", "fnv1a", ...]`` -- named registry programs;
    - ``{"programs": [...], "opt_level": N}`` -- ditto with a level;
    - ``{"fuzz": {"seed": S, "count": N}, "opt_level": N}`` -- a corpus;
    - ``{"jobs": [{"kind": ..., "name": ...}, ...]}`` -- explicit jobs.

    ``programs`` and ``fuzz`` compose in one document.
    """
    if data == "registry":
        return registry_manifest()
    if isinstance(data, list):
        data = {"programs": data}
    if not isinstance(data, dict):
        raise ValueError(f"manifest must be a list or object, got {type(data).__name__}")
    level = int(data.get("opt_level", 0))
    jobs: List[BatchJob] = []
    programs = data.get("programs")
    if programs == "registry" or programs == "all":
        jobs.extend(registry_manifest(opt_level=level))
    elif programs:
        jobs.extend(
            BatchJob(kind="program", name=name, opt_level=level) for name in programs
        )
    fuzz = data.get("fuzz")
    if fuzz:
        jobs.extend(
            fuzz_manifest(
                seed=int(fuzz.get("seed", 0)),
                count=int(fuzz.get("count", 0)),
                opt_level=level,
            )
        )
    for raw in data.get("jobs", ()):
        jobs.append(BatchJob.from_dict(raw))
    if not jobs:
        raise ValueError("manifest describes no jobs")
    return jobs


def load_manifest(path: str) -> List[BatchJob]:
    """Read a JSON manifest file (see :func:`expand_manifest` for shapes)."""
    with open(path) as fh:
        return expand_manifest(json.load(fh))


# -- One job, anywhere -------------------------------------------------------------


def _job_inputs(job: BatchJob):
    """Rebuild (model, spec, input_gen) for ``job`` -- worker-side safe."""
    if job.kind == "program":
        from repro.programs.registry import get_program

        program = get_program(job.name)
        return (
            program.build_model(),
            program.build_spec(),
            program.validation_input_gen(),
        )
    if job.kind == "fuzz":
        from repro.resilience.generator import generate_case

        case = generate_case(random.Random(job.seed), job.index)
        return case.model, case.spec, case.input_gen
    raise ValueError(f"unknown job kind {job.kind!r}")


def _execute_job(
    job: BatchJob,
    cache_dir: Optional[str],
    budget: BudgetSpec,
    cache: Optional[CompilationCache] = None,
) -> dict:
    """Run one job to a plain-dict result (crosses the process boundary).

    Outcome slugs: ``ok``, ``stall:<taxonomy-reason>``,
    ``exhausted:<fuel|deadline>``, ``crash`` (the job raised), or --
    filled in by the *parent*, since the worker is not around to say so
    -- ``worker-lost`` (the worker process died mid-job).  ``cache`` is
    ``"hit"`` / ``"miss"`` / ``"invalidated"`` / ``"off"``.
    """
    from repro.core.engine import Engine
    from repro.stdlib import default_databases

    result = {
        "job": job.name,
        "kind": job.kind,
        "opt_level": job.opt_level,
        "outcome": "ok",
        "detail": "",
        "cache": "off",
        "elapsed_ms": 0.0,
        "statements": 0,
        "cache_stats": None,
    }
    if job.kind == "worker-exit":
        # Fault-campaign hook (env-gated so no manifest can reach it by
        # accident): hard-kill this worker once, succeed on the retry.
        # ``job.name`` is a marker-file path recording the first death;
        # the literal name ``"-"`` dies every time (the deterministic
        # killer the worker-lost reporting path is tested against).
        import os

        if not os.environ.get("REPRO_BATCH_TEST_OPS"):
            result["outcome"] = "crash"
            result["detail"] = "worker-exit job without REPRO_BATCH_TEST_OPS"
            return result
        if job.name == "-":
            os._exit(3)
        if not os.path.exists(job.name):
            with open(job.name, "w") as fh:
                fh.write("died once\n")
            os._exit(3)
        result["detail"] = "survived retry"
        return result
    start = time.perf_counter()
    own_cache = None
    try:
        model, spec, input_gen = _job_inputs(job)
        binding_db, expr_db = default_databases()
        engine = Engine(binding_db, expr_db, width=64, budget=budget.make())
        if cache is None and cache_dir is not None:
            cache = own_cache = CompilationCache(cache_dir)
        if cache is not None:
            compiled, cache_outcome = cache.compile(
                model, spec, engine=engine,
                opt_level=job.opt_level, input_gen=input_gen,
            )
            result["cache"] = cache_outcome
        else:
            compiled = engine.compile_function(model, spec)
            if job.opt_level > 0:
                compiled = compiled.optimize(job.opt_level, input_gen=input_gen)
        result["statements"] = compiled.statement_count()
    except ResourceExhausted as exc:
        result["outcome"] = f"exhausted:{exc.resource}"
        result["detail"] = str(exc).splitlines()[0]
    except CompileError as exc:
        result["outcome"] = f"stall:{exc.report.reason}"
        result["detail"] = exc.report.goal.splitlines()[0] if exc.report.goal else ""
    except Exception as exc:  # noqa: BLE001 - a crash is a finding, not an abort
        result["outcome"] = "crash"
        result["detail"] = repr(exc)
    result["elapsed_ms"] = (time.perf_counter() - start) * 1000.0
    if own_cache is not None:
        # Worker-local handle: ship its counters home for the merge.
        result["cache_stats"] = own_cache.stats.to_dict()
    return result


# -- The batch driver --------------------------------------------------------------


def _trace_job(tracer, result: dict) -> None:
    if not tracer.enabled:
        return
    tracer.event(
        "batch_job",
        job=result["job"],
        outcome=result["outcome"],
        kind=result["kind"],
        cache=result["cache"],
        level=result["opt_level"],
        detail=result["detail"],
    )
    tracer.inc("batch.jobs")
    tracer.inc(f"batch.outcome.{result['outcome'].split(':', 1)[0]}")


def run_batch(
    jobs: List[BatchJob],
    jobs_n: int = 1,
    cache_dir: Optional[str] = None,
    fuel: Optional[int] = DEFAULT_FUEL,
    deadline: Optional[float] = DEFAULT_DEADLINE,
    progress=None,
) -> BatchReport:
    """Compile every job; returns the aggregate :class:`BatchReport`.

    ``jobs_n <= 1`` runs in-process (deterministic result *order*, one
    shared cache handle, jobs nested under the ambient tracer's
    ``batch_job`` spans).  ``jobs_n > 1`` fans out over a process pool;
    the parent re-emits one ``batch_job`` event per result (in manifest
    order) and merges worker cache counters.

    A worker that *dies* (SIGKILL, ``os._exit``, OOM) breaks the whole
    ``ProcessPoolExecutor``: its own job and every job still queued
    behind it raise ``BrokenProcessPool`` instead of returning.  Those
    jobs are retried exactly once in a fresh pool -- a one-off death
    (the transient case) costs one pool respawn; a job that kills its
    worker *deterministically* fails the retry too and is reported as a
    structured ``worker-lost`` row, never silently dropped.
    """
    from repro.obs.trace import NULL_SPAN, current_tracer

    tracer = current_tracer()
    budget = BudgetSpec(fuel=fuel, deadline=deadline)
    report = BatchReport(jobs_n=max(1, jobs_n), cache_dir=cache_dir)
    start = time.perf_counter()

    if jobs_n <= 1:
        cache = CompilationCache(cache_dir) if cache_dir is not None else None
        for i, job in enumerate(jobs):
            span = (
                tracer.span("batch_job", name=job.name)
                if tracer.enabled
                else NULL_SPAN
            )
            with span:
                result = _execute_job(job, cache_dir, budget, cache=cache)
            _trace_job(tracer, result)
            report.results.append(result)
            if progress is not None:
                progress(f"[{i + 1}/{len(jobs)}] {job.name}: {result['outcome']}")
        if cache is not None:
            report.cache_stats = cache.stats.to_dict()
    else:
        merged = CacheStats()
        rows = {}
        done = 0

        def record(i: int, result: dict, retried: bool) -> None:
            nonlocal done
            worker_stats = result.pop("cache_stats", None)
            if worker_stats:
                merged.merge(worker_stats)
            result["cache_stats"] = None
            if retried:
                result["retried"] = 1
            rows[i] = result
            done += 1
            if progress is not None:
                progress(f"[{done}/{len(jobs)}] {result['job']}: {result['outcome']}")

        lost = []
        with ProcessPoolExecutor(max_workers=jobs_n) as pool:
            submitted = [
                (i, job, pool.submit(_execute_job, job, cache_dir, budget))
                for i, job in enumerate(jobs)
            ]
            for i, job, future in submitted:
                try:
                    result = future.result()
                except Exception as exc:  # noqa: BLE001 - BrokenProcessPool
                    # The worker died; this job (and every job queued
                    # behind the breakage) got no result.
                    lost.append((i, job, repr(exc)))
                    continue
                record(i, result, retried=False)
        if lost and progress is not None:
            progress(f"retrying {len(lost)} job(s) lost to a dead worker")
        for i, job, detail in lost:
            # Retry each lost job once in its *own* single-worker pool:
            # a job that deterministically kills its worker then cannot
            # take the other retried (innocent-bystander) jobs with it.
            try:
                with ProcessPoolExecutor(max_workers=1) as pool:
                    result = pool.submit(
                        _execute_job, job, cache_dir, budget
                    ).result()
            except Exception as exc:  # noqa: BLE001
                # The retry died too: deterministic.  A structured row,
                # not silence -- the report shows exactly what was lost.
                record(
                    i,
                    {
                        "job": job.name,
                        "kind": job.kind,
                        "opt_level": job.opt_level,
                        "outcome": "worker-lost",
                        "detail": repr(exc),
                        "cache": "off",
                        "elapsed_ms": 0.0,
                        "statements": 0,
                        "cache_stats": None,
                    },
                    retried=True,
                )
                continue
            record(i, result, retried=True)
        report.results = [rows[i] for i in sorted(rows)]
        for result in report.results:
            _trace_job(tracer, result)
        if cache_dir is not None:
            report.cache_stats = merged.to_dict()

    report.wall_s = time.perf_counter() - start
    return report
