"""The content-addressed compilation cache.

Each entry maps a :func:`~repro.serve.fingerprint.compile_key` -- a
digest of every input the derivation is a pure function of -- to the
serialized Bedrock2 AST, the derivation
:class:`~repro.core.certificate.Certificate`, and (for optimized
entries) the per-pass :class:`~repro.opt.manager.OptimizationReport`.

**Trust model.**  The cache is *untrusted*, exactly like the proof
search that fills it (the paper's §5 translation-validation stance):

- a stored payload digest catches corruption and truncation;
- every loaded entry is re-checked by the existing trusted checkers --
  definite-assignment well-formedness on the decoded AST and the
  structural certificate checker -- before it is served;
- any failure (decode error, digest mismatch, schema drift, checker
  rejection) demotes the entry to a cold compile.  A poisoned cache can
  cost time, never correctness.

**Invalidation** is purely content-addressed: editing a lemma database,
flipping ``-O0``/``-O1``, changing the solver bank or word width, or
bumping a serialization schema all move the key, so stale entries are
simply never addressed again.  Entries that *are* addressed but fail
re-validation are counted as ``invalidated`` and overwritten by the
fallback compile's fresh result.

All cache traffic is observable: ``cache_lookup`` / ``cache_store``
events and ``cache.{hits,misses,invalidated,stores}`` counters flow to
the active :mod:`repro.obs` tracer, and warm loads run under a
``cache_load`` span so traces show exactly which derivations were
served from disk.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.bedrock2.serial import (
    ASTDecodeError,
    decode_function,
    encode_function,
)
from repro.core.certificate import Certificate, CertificateDecodeError
from repro.core.spec import CompiledFunction, FnSpec, Model
from repro.serve.fingerprint import compile_key

ENTRY_SCHEMA_VERSION = 1

HIT = "hit"
MISS = "miss"
INVALIDATED = "invalidated"

QUARANTINE_DIR = "quarantine"

#: A publish lock untouched for this long belongs to a dead writer and
#: may be stolen.  Publishes are a single serialize + rename, so any
#: live holder is done in milliseconds, not tens of seconds.
LOCK_STALE_SECONDS = 30.0


@dataclass
class CacheStats:
    """Counters for one cache handle's lifetime (also mirrored to obs)."""

    hits: int = 0
    misses: int = 0
    invalidated: int = 0
    stores: int = 0
    quarantined: int = 0
    invalidation_reasons: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidated": self.invalidated,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "invalidation_reasons": dict(self.invalidation_reasons),
        }

    def merge(self, other: dict) -> None:
        """Fold another handle's ``to_dict()`` into this one (batch workers)."""
        self.hits += other.get("hits", 0)
        self.misses += other.get("misses", 0)
        self.invalidated += other.get("invalidated", 0)
        self.stores += other.get("stores", 0)
        self.quarantined += other.get("quarantined", 0)
        for reason, count in other.get("invalidation_reasons", {}).items():
            self.invalidation_reasons[reason] = (
                self.invalidation_reasons.get(reason, 0) + count
            )


def _payload_digest(entry: dict) -> str:
    """Digest of the canonical entry body (everything but the digest field)."""
    body = {k: v for k, v in entry.items() if k != "payload_sha"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CacheRejected(Exception):
    """An addressed entry failed re-validation (internal control flow)."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class PublishLock:
    """A per-key advisory lock file around cache publishes.

    ``O_CREAT | O_EXCL`` makes creation the atomic acquire on every
    POSIX filesystem; the file body records the holder's pid for
    ``repro cache gc`` forensics.  A lock whose mtime is older than
    ``stale_after`` is presumed orphaned (its writer was SIGKILLed
    between create and unlink) and is stolen -- publishes themselves
    are idempotent and atomic, so the worst cost of a steal is two
    processes racing one ``os.replace``, which is exactly the benign
    race the lock exists to *bound*, not to make impossible.
    """

    def __init__(
        self,
        path: str,
        timeout: float = 10.0,
        stale_after: float = LOCK_STALE_SECONDS,
        poll: float = 0.01,
    ):
        self.path = path
        self.timeout = timeout
        self.stale_after = stale_after
        self.poll = poll
        self._held = False

    def acquire(self) -> bool:
        """Take the lock; ``False`` if the wait timed out (caller may
        still publish -- the publish is atomic -- but the race window
        is then unbounded by us)."""
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._steal_if_stale()
                if time.monotonic() >= deadline:
                    return False
                time.sleep(self.poll)
                continue
            except OSError:
                return False
            with os.fdopen(fd, "w") as fh:
                fh.write(f"{os.getpid()}\n")
            self._held = True
            return True

    def _steal_if_stale(self) -> None:
        try:
            age = time.time() - os.stat(self.path).st_mtime
        except OSError:
            return  # released under us: retry the open
        if age > self.stale_after:
            with contextlib.suppress(OSError):
                os.unlink(self.path)

    def release(self) -> None:
        if self._held:
            self._held = False
            with contextlib.suppress(OSError):
                os.unlink(self.path)

    def __enter__(self) -> "PublishLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class CompilationCache:
    """A directory of re-validated, content-addressed derivations."""

    def __init__(self, root: str, revalidate: bool = True):
        self.root = root
        self.revalidate = revalidate
        self.stats = CacheStats()
        os.makedirs(root, exist_ok=True)

    # -- Addressing ------------------------------------------------------------

    def key_for(
        self, model: Model, spec: FnSpec, engine=None, opt_level: int = 0
    ) -> str:
        if engine is None:
            from repro.stdlib import default_engine

            engine = default_engine()
        return compile_key(model, spec, engine, opt_level)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def _lock_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.lock")

    def contains(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    # -- Quarantine ------------------------------------------------------------

    @property
    def quarantine_root(self) -> str:
        return os.path.join(self.root, QUARANTINE_DIR)

    def quarantine(self, key: str, reason: str) -> bool:
        """Move a rejected entry aside instead of leaving it to be
        rejected again on every load.  The entry bytes are preserved
        under ``quarantine/<key>.json`` with a ``.reason`` sidecar for
        forensics (``repro cache verify`` / ``repair`` sweep them);
        the address itself goes back to a clean MISS, so the fallback
        compile's fresh store repairs it in place.  Returns ``False``
        if a concurrent reader already moved it."""
        src = self._path(key)
        os.makedirs(self.quarantine_root, exist_ok=True)
        dst = os.path.join(self.quarantine_root, f"{key}.json")
        try:
            os.replace(src, dst)
        except OSError:
            return False
        with contextlib.suppress(OSError), open(dst + ".reason", "w") as fh:
            fh.write(reason + "\n")
        self.stats.quarantined += 1
        from repro.obs.trace import current_tracer

        tracer = current_tracer()
        if tracer.enabled:
            tracer.event(
                "cache_quarantine", key=key, reason=reason.split(":", 1)[0]
            )
            tracer.inc("cache.quarantined")
        return True

    def quarantined_keys(self) -> list:
        root = self.quarantine_root
        try:
            names = os.listdir(root)
        except OSError:
            return []
        return sorted(
            name[: -len(".json")]
            for name in names
            if name.endswith(".json")
        )

    # -- Load path -------------------------------------------------------------

    def _decode_entry(self, key: str, raw: str) -> Tuple[object, Certificate, object]:
        try:
            entry = json.loads(raw)
        except ValueError as exc:
            raise CacheRejected(f"not JSON: {exc}") from None
        if not isinstance(entry, dict):
            raise CacheRejected("entry is not a JSON object")
        if entry.get("entry_schema") != ENTRY_SCHEMA_VERSION:
            raise CacheRejected(
                f"entry schema {entry.get('entry_schema')!r} != {ENTRY_SCHEMA_VERSION}"
            )
        if entry.get("key") != key:
            raise CacheRejected("stored key does not match the address")
        if entry.get("payload_sha") != _payload_digest(entry):
            raise CacheRejected("payload digest mismatch (corrupted entry)")
        try:
            fn = decode_function(entry["function"])
            certificate = Certificate.from_dict(entry["certificate"])
        except (ASTDecodeError, CertificateDecodeError, KeyError) as exc:
            raise CacheRejected(f"decode failed: {exc}") from None
        opt_report = None
        if entry.get("opt_report") is not None:
            from repro.opt.manager import OptimizationReport

            try:
                opt_report = OptimizationReport.from_dict(entry["opt_report"])
            except (KeyError, TypeError) as exc:
                raise CacheRejected(f"bad optimization report: {exc!r}") from None
        return fn, certificate, opt_report

    def _revalidate(self, fn, certificate: Certificate, spec: FnSpec) -> None:
        """The trusted half: run the existing checkers over the decoded entry.

        The checkers *are* the TCB -- the cache adds no trust of its
        own.  (Semantic differential validation remains available to
        callers via ``repro.validation.checker.validate``, exactly as
        for freshly compiled bundles.)
        """
        from repro.bedrock2 import ast
        from repro.bedrock2.wellformed import IllFormed, check_function
        from repro.validation.checker import CertificateError, check_certificate

        if fn.name != spec.fname:
            raise CacheRejected(
                f"entry is for function {fn.name!r}, request is {spec.fname!r}"
            )
        try:
            check_function(fn)
        except IllFormed as exc:
            raise CacheRejected(f"wellformed: {exc}") from None
        try:
            check_certificate(
                certificate, statement_count=ast.statement_count(fn.body)
            )
        except CertificateError as exc:
            raise CacheRejected(f"certificate: {exc}") from None
        # Dataflow lint (repro.analysis): a tampered or stale entry whose
        # code is well-formed can still deref dead stack memory or write
        # outside the spec's footprint; error-severity findings reject.
        from repro.analysis.dataflow import lint_function
        from repro.analysis.diagnostics import errors

        found = errors(lint_function(fn, spec=spec))
        if found:
            raise CacheRejected("lint: " + "; ".join(d.render() for d in found))

    def lookup(
        self, key: str, model: Model, spec: FnSpec
    ) -> Tuple[Optional[CompiledFunction], str]:
        """Serve ``key`` if present and re-validated; returns (bundle, outcome).

        Outcomes: :data:`HIT` (validated entry), :data:`MISS` (no entry),
        :data:`INVALIDATED` (an entry existed but was rejected).
        """
        from repro.obs.trace import NULL_SPAN, current_tracer

        tracer = current_tracer()
        trace = tracer.enabled
        path = self._path(key)
        span = (
            tracer.span("cache_load", name=spec.fname) if trace else NULL_SPAN
        )
        with span as handle:
            try:
                with open(path) as fh:
                    raw = fh.read()
            except OSError:
                self.stats.misses += 1
                self._trace_lookup(tracer, key, MISS, spec.fname)
                return None, MISS
            try:
                fn, certificate, opt_report = self._decode_entry(key, raw)
                if self.revalidate:
                    self._revalidate(fn, certificate, spec)
            except CacheRejected as rejection:
                self.stats.invalidated += 1
                reason = rejection.reason.split(":", 1)[0]
                self.stats.invalidation_reasons[reason] = (
                    self.stats.invalidation_reasons.get(reason, 0) + 1
                )
                # Never serve it, never re-reject it on every load: the
                # bad bytes move to the quarantine directory and the
                # address reverts to a MISS the fallback store repairs.
                self.quarantine(key, rejection.reason)
                if trace:
                    handle.note(reason="rejected")
                self._trace_lookup(tracer, key, INVALIDATED, spec.fname)
                return None, INVALIDATED
            self.stats.hits += 1
            self._trace_lookup(tracer, key, HIT, spec.fname)
            return (
                CompiledFunction(
                    bedrock_fn=fn,
                    certificate=certificate,
                    spec=spec,
                    model=model,
                    opt_report=opt_report,
                ),
                HIT,
            )

    _OUTCOME_COUNTERS = {HIT: "cache.hits", MISS: "cache.misses", INVALIDATED: "cache.invalidated"}

    @classmethod
    def _trace_lookup(cls, tracer, key: str, outcome: str, program: str) -> None:
        if not tracer.enabled:
            return
        tracer.event("cache_lookup", key=key, outcome=outcome, program=program)
        tracer.inc(cls._OUTCOME_COUNTERS[outcome])

    # -- Store path ------------------------------------------------------------

    def store(self, key: str, compiled: CompiledFunction, opt_level: int = 0) -> None:
        from repro.obs.trace import current_tracer

        entry = {
            "entry_schema": ENTRY_SCHEMA_VERSION,
            "key": key,
            "program": compiled.name,
            "opt_level": opt_level,
            "function": encode_function(compiled.bedrock_fn),
            "certificate": compiled.certificate.to_dict(),
            "opt_report": (
                compiled.opt_report.to_dict()
                if compiled.opt_report is not None
                else None
            ),
        }
        entry["payload_sha"] = _payload_digest(entry)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # Atomic publish under a per-key advisory lock: the os.replace
        # alone already guarantees a reader never observes a half-written
        # entry, and the lock serializes concurrent *writers* of the same
        # key so the parallel batch compiler and the supervised pool do
        # only one redundant serialize apiece instead of N.
        with PublishLock(self._lock_path(key)):
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    fh.write(json.dumps(entry, sort_keys=True, separators=(",", ":")))
                os.replace(tmp, path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise
        self.stats.stores += 1
        tracer = current_tracer()
        if tracer.enabled:
            tracer.event("cache_store", key=key, program=compiled.name)
            tracer.inc("cache.stores")

    # -- The memoized compile --------------------------------------------------

    def compile(
        self,
        model: Model,
        spec: FnSpec,
        engine=None,
        opt_level: int = 0,
        input_gen=None,
    ) -> Tuple[CompiledFunction, str]:
        """Compile through the cache; returns (bundle, outcome).

        A warm entry is decoded, digest-checked, and re-validated by the
        trusted checkers; anything else falls back to a cold derivation
        (and, for ``opt_level > 0``, the translation-validated
        optimizer), whose result is stored for next time.
        """
        if engine is None:
            from repro.stdlib import default_engine

            engine = default_engine()
        key = compile_key(model, spec, engine, opt_level)
        bundle, outcome = self.lookup(key, model, spec)
        if bundle is not None:
            return bundle, outcome
        compiled = engine.compile_function(model, spec)
        if opt_level > 0:
            compiled = compiled.optimize(opt_level, input_gen=input_gen)
        self.store(key, compiled, opt_level=opt_level)
        return compiled, outcome


def compile_program_cached(
    cache: CompilationCache, program, opt_level: int = 0
) -> Tuple[CompiledFunction, str]:
    """Compile a registry :class:`~repro.programs.registry.BenchProgram`
    through ``cache`` with the default engine; returns (bundle, outcome)."""
    from repro.stdlib import default_engine

    return cache.compile(
        program.build_model(),
        program.build_spec(),
        engine=default_engine(),
        opt_level=opt_level,
        input_gen=program.validation_input_gen(),
    )
