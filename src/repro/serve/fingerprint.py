"""Content-addressed cache keys for derivations.

Soundness of memoization rests on the paper's §3.2 determinism argument:
proof search never backtracks and scans ordered hint databases, so the
(code, certificate) pair is a pure function of

1. the reified source term, parameter list, and result type (the model);
2. the ABI spec -- argument bindings, outputs, incidental facts;
3. the ordered lemma-database contents and solver bank
   (:meth:`repro.core.engine.Engine.fingerprint`);
4. the optimization level and its ordered pass roster
   (:func:`repro.opt.manager.pipeline_fingerprint`);
5. the serialization schema versions (a format bump must never let an
   old entry decode as current data).

:func:`compile_key` digests all five.  Any change to any input moves the
key, which *is* the invalidation mechanism: stale entries are simply
never addressed again.

Terms, types, and spec components are frozen dataclasses whose ``repr``
recurses deterministically over the whole tree (the same property
``bedrock2.ast.fingerprint`` relies on), so hashing reprs fingerprints
the exact syntax without a second serializer.
"""

from __future__ import annotations

import hashlib

from repro.bedrock2.serial import AST_SCHEMA_VERSION
from repro.core.certificate import CERT_SCHEMA_VERSION
from repro.core.spec import FnSpec, Model

# Version of the key derivation itself; bump to orphan every existing
# cache entry at once (e.g. when a fingerprint input is added).
KEY_SCHEMA_VERSION = 1

_SEP = b"\x1e"


def _digest(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(_SEP)
    return digest.hexdigest()


# Per-node memo for term reprs.  With hash-consing on, a model's term is
# a canonical node whose repr never changes, so the serve hot path (every
# cache lookup re-fingerprints its model) can skip the recursive repr
# walk.  Keyed by *identity* -- structural keying would conflate
# ``Lit(True)``/``Lit(1)``, which are ``==`` but repr differently -- and
# only for interned nodes, whose table entry keeps them (and hence the
# id) alive.
_TERM_REPR_MEMO: dict = {}


def _term_repr(term) -> str:
    from repro.source import terms as t

    if not t.interning_enabled():
        return repr(term)
    key = id(term)
    cached = _TERM_REPR_MEMO.get(key)
    if cached is not None and cached[0] is term:
        return cached[1]
    rendered = repr(term)
    _TERM_REPR_MEMO[key] = (term, rendered)
    return rendered


def source_fingerprint(model: Model) -> str:
    """A stable hash of the reified functional model."""
    return _digest(
        model.name,
        repr(model.params),
        _term_repr(model.term),
        repr(model.result_ty),
    )[:16]


def spec_fingerprint(spec: FnSpec) -> str:
    """A stable hash of the ABI: args, outputs, facts, state threading."""
    return _digest(
        spec.fname,
        repr(spec.args),
        repr(spec.outputs),
        repr(spec.facts),
        repr(spec.state_param),
    )[:16]


def compile_key(model: Model, spec: FnSpec, engine, opt_level: int = 0) -> str:
    """The content address of one derivation request.

    ``engine`` is a :class:`repro.core.engine.Engine`; its
    ``fingerprint()`` covers the ordered lemma databases, the solver
    bank, and the word width.
    """
    from repro.opt.manager import pipeline_fingerprint

    return _digest(
        f"key-schema:{KEY_SCHEMA_VERSION}",
        f"cert-schema:{CERT_SCHEMA_VERSION}",
        f"ast-schema:{AST_SCHEMA_VERSION}",
        source_fingerprint(model),
        spec_fingerprint(spec),
        engine.fingerprint(),
        pipeline_fingerprint(opt_level),
    )[:32]


def lift_key(fn, spec: FnSpec, width: int = 64) -> str:
    """The content address of one *lift* request (``repro.lift``).

    The backward search is deterministic for the same reason the forward
    search is, so a lift result is a pure function of

    1. the exact Bedrock2 syntax (``bedrock2.ast.fingerprint``);
    2. the ABI spec directing the backward walk;
    3. the registered inverse-pattern roster
       (:func:`repro.lift.patterns.roster_fingerprint`);
    4. the word width.

    Any change to any of them moves the key -- the same
    invalidation-by-key-movement discipline as :func:`compile_key`.
    """
    from repro.bedrock2 import ast
    from repro.lift.patterns import roster_fingerprint
    from repro.stdlib import load_extensions

    load_extensions()  # the roster must be registered before fingerprinting

    return _digest(
        f"lift-key-schema:{KEY_SCHEMA_VERSION}",
        f"ast-schema:{AST_SCHEMA_VERSION}",
        ast.fingerprint(fn),
        spec_fingerprint(spec),
        roster_fingerprint(),
        str(width),
    )[:32]
