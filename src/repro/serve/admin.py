"""Offline cache maintenance: the ``repro cache verify|gc|repair`` sweeps.

The serving layer already defends itself online -- every load is
digest-checked and re-validated, and rejected entries are moved to the
quarantine directory -- but a long-lived cache also wants offline
hygiene: find the corrupt entries *before* a tenant pays the
invalidated-load latency (``verify``), sweep the debris a SIGKILLed
writer can leave behind (``gc``: orphaned ``*.tmp`` spools, stale
``*.lock`` files, old quarantine bodies), and recompile what was lost
(``repair``).

``verify`` runs the spec-independent half of the load-path checks --
JSON shape, schema version, address/key agreement, payload digest,
AST + certificate decode, definite-assignment well-formedness, and the
structural certificate check.  The spec-*dependent* checks (name match,
footprint lint) still run on every load, so a ``verify``-clean cache is
necessary but not sufficient -- exactly the untrusted-cache trust
model, swept earlier.
"""

from __future__ import annotations

import contextlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.serve.cache import (
    LOCK_STALE_SECONDS,
    QUARANTINE_DIR,
    CacheRejected,
    CompilationCache,
)


@dataclass
class SweepReport:
    """What one ``verify`` / ``gc`` / ``repair`` pass saw and did."""

    action: str
    root: str
    scanned: int = 0
    ok: int = 0
    corrupt: List[dict] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    repaired: List[dict] = field(default_factory=list)
    unrepairable: List[dict] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        if self.action == "repair":
            # Corruption that was found *and fixed* is a clean outcome.
            return not self.unrepairable
        return not self.corrupt and not self.unrepairable

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "root": self.root,
            "scanned": self.scanned,
            "ok": self.ok,
            "corrupt": list(self.corrupt),
            "quarantined": list(self.quarantined),
            "removed": list(self.removed),
            "repaired": list(self.repaired),
            "unrepairable": list(self.unrepairable),
            "clean": self.clean,
        }

    def render(self) -> str:
        lines = [
            f"cache {self.action}: {self.root}",
            f"  scanned     {self.scanned}",
            f"  ok          {self.ok}",
        ]
        for finding in self.corrupt:
            lines.append(f"  corrupt     {finding['key'][:16]}…  {finding['reason']}")
        for key in self.quarantined:
            lines.append(f"  quarantined {key[:16]}…")
        for path in self.removed:
            lines.append(f"  removed     {os.path.relpath(path, self.root)}")
        for entry in self.repaired:
            lines.append(
                f"  repaired    {entry['key'][:16]}…  ({entry['program']}"
                f" -O{entry['opt_level']})"
            )
        for entry in self.unrepairable:
            lines.append(
                f"  unrepairable {entry['key'][:16]}…  {entry['reason']}"
            )
        lines.append("  clean" if self.clean else "  NOT CLEAN")
        return "\n".join(lines)


def _iter_entries(root: str):
    """Yield ``(key, path)`` for every sharded entry file under ``root``."""
    try:
        shards = sorted(os.listdir(root))
    except OSError:
        return
    for shard in shards:
        shard_dir = os.path.join(root, shard)
        if shard == QUARANTINE_DIR or len(shard) != 2 or not os.path.isdir(shard_dir):
            continue
        for name in sorted(os.listdir(shard_dir)):
            if name.endswith(".json"):
                yield name[: -len(".json")], os.path.join(shard_dir, name)


def _check_entry(cache: CompilationCache, key: str, path: str) -> Optional[str]:
    """The spec-independent load checks; the rejection reason or ``None``."""
    try:
        with open(path) as fh:
            raw = fh.read()
    except OSError as exc:
        return f"unreadable: {exc}"
    try:
        fn, certificate, _opt_report = cache._decode_entry(key, raw)
    except CacheRejected as rejection:
        return rejection.reason
    from repro.bedrock2 import ast
    from repro.bedrock2.wellformed import IllFormed, check_function
    from repro.validation.checker import CertificateError, check_certificate

    try:
        check_function(fn)
    except IllFormed as exc:
        return f"wellformed: {exc}"
    try:
        check_certificate(certificate, statement_count=ast.statement_count(fn.body))
    except CertificateError as exc:
        return f"certificate: {exc}"
    return None


def verify_cache(root: str, quarantine: bool = False) -> SweepReport:
    """Re-check every entry offline; optionally quarantine the corrupt ones."""
    cache = CompilationCache(root, revalidate=True)
    report = SweepReport(action="verify", root=root)
    for key, path in _iter_entries(root):
        report.scanned += 1
        reason = _check_entry(cache, key, path)
        if reason is None:
            report.ok += 1
            continue
        report.corrupt.append({"key": key, "reason": reason})
        if quarantine and cache.quarantine(key, reason):
            report.quarantined.append(key)
    return report


def gc_cache(root: str, lock_stale: float = LOCK_STALE_SECONDS) -> SweepReport:
    """Sweep writer debris: orphaned spools, stale locks, quarantine bodies."""
    report = SweepReport(action="gc", root=root)
    now = time.time()
    for dirpath, dirnames, filenames in os.walk(root):
        in_quarantine = os.path.basename(dirpath) == QUARANTINE_DIR
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            stale_lock = False
            if name.endswith(".lock"):
                with contextlib.suppress(OSError):
                    stale_lock = now - os.stat(path).st_mtime > lock_stale
            if name.endswith(".tmp") or stale_lock or in_quarantine:
                with contextlib.suppress(OSError):
                    os.remove(path)
                    report.removed.append(path)
        if in_quarantine:
            dirnames[:] = []
    quarantine_dir = os.path.join(root, QUARANTINE_DIR)
    if os.path.isdir(quarantine_dir) and not os.listdir(quarantine_dir):
        with contextlib.suppress(OSError):
            os.rmdir(quarantine_dir)
    return report


def repair_cache(root: str) -> SweepReport:
    """Quarantine every corrupt entry, then recompile from the registry.

    The quarantined bytes carry their own ``program`` / ``opt_level``
    claim; when that program still exists in the registry, a fresh
    derivation republishes the address (the new entry's key is computed
    from the request, so a lying ``program`` field simply leaves the
    old address empty -- a MISS, never a wrong serve).
    """
    report = verify_cache(root, quarantine=True)
    report.action = "repair"
    cache = CompilationCache(root, revalidate=True)

    from repro.programs.registry import get_program
    from repro.serve.cache import compile_program_cached

    quarantine_dir = os.path.join(root, QUARANTINE_DIR)
    for finding in report.corrupt:
        key = finding["key"]
        claim = {}
        with contextlib.suppress(OSError, ValueError):
            with open(os.path.join(quarantine_dir, f"{key}.json")) as fh:
                raw = fh.read()
            try:
                body = json.loads(raw)
            except ValueError:
                # Trailing garbage or truncation: salvage the JSON prefix
                # so the program/opt_level claim survives the corruption.
                body, _ = json.JSONDecoder().raw_decode(raw)
            if isinstance(body, dict):
                claim = body
        program_name = claim.get("program")
        opt_level = claim.get("opt_level", 0)
        try:
            program = get_program(program_name)
        except KeyError:
            report.unrepairable.append(
                {"key": key, "reason": f"unknown program {program_name!r}"}
            )
            continue
        try:
            compiled, _outcome = compile_program_cached(
                cache, program, opt_level=int(opt_level)
            )
        except Exception as exc:  # noqa: BLE001 - keep sweeping
            report.unrepairable.append({"key": key, "reason": repr(exc)})
            continue
        report.repaired.append(
            {"key": key, "program": compiled.name, "opt_level": int(opt_level)}
        )
    return report
