"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list``                      -- the benchmark suite (Table 2);
- ``compile <program>``         -- derive a suite program; print its C;
- ``cert <program>``            -- print the derivation certificate;
- ``validate <program>``        -- certificate + differential validation;
- ``riscv <program>``           -- compile through the RISC-V backend and
  print instruction stats;
- ``bench``                     -- print the reproduced Figure 2.
"""

from __future__ import annotations

import argparse
import random
import sys


def cmd_list(_args) -> int:
    from repro.programs import all_programs

    for program in all_programs():
        features = ", ".join(program.features)
        print(f"{program.name:<8} {program.description}  [{features}]")
    return 0


def _program(name: str):
    from repro.programs import get_program

    try:
        return get_program(name)
    except KeyError:
        print(f"unknown program {name!r}; try `python -m repro list`", file=sys.stderr)
        raise SystemExit(2)


def cmd_compile(args) -> int:
    program = _program(args.program)
    compiled = program.compile()
    print(compiled.c_source())
    return 0


def cmd_cert(args) -> int:
    program = _program(args.program)
    compiled = program.compile()
    print(compiled.certificate.render())
    return 0


def cmd_validate(args) -> int:
    from repro.validation.checker import validate

    program = _program(args.program)
    compiled = program.compile()
    kwargs = {}
    if program.calling_style == "window":

        def gen(rng):
            data = program.gen_input(rng, 24)
            return {"s": list(data), "off": rng.randrange(0, len(data) - 3)}

        kwargs["input_gen"] = gen
    elif program.calling_style != "scalar":
        kwargs["input_gen"] = lambda rng: {
            "s": list(program.gen_input(rng, rng.randrange(48)))
        }
    report = validate(
        compiled, trials=args.trials, rng=random.Random(args.seed), **kwargs
    )
    print(
        f"{compiled.name}: certificate ok; {report.trials} differential "
        "trials, 0 failures"
    )
    return 0


def cmd_riscv(args) -> int:
    from repro.riscv import compile_function

    program = _program(args.program)
    compiled = program.compile()
    rv_program = compile_function(compiled.bedrock_fn)
    print(
        f"{compiled.name}: {len(rv_program.instrs)} instructions "
        f"({rv_program.size_bytes} bytes of code, "
        f"{len(rv_program.data)} bytes of table data)"
    )
    if args.disasm:
        from repro.riscv.isa import encode

        for instr in rv_program.instrs:
            print(f"  {encode(instr):08x}  {instr}")
    return 0


def cmd_bench(args) -> int:
    from benchmarks.figure2 import figure2_rows, render_figure2  # type: ignore

    print(render_figure2(figure2_rows(size=args.size)))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Rupicola reproduction: relational compilation toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the benchmark suite")
    for name in ("compile", "cert", "riscv"):
        p = sub.add_parser(name)
        p.add_argument("program")
        if name == "riscv":
            p.add_argument("--disasm", action="store_true")
    p = sub.add_parser("validate")
    p.add_argument("program")
    p.add_argument("--trials", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p = sub.add_parser("bench")
    p.add_argument("--size", type=int, default=1024)

    args = parser.parse_args(argv)
    handlers = {
        "list": cmd_list,
        "compile": cmd_compile,
        "cert": cmd_cert,
        "validate": cmd_validate,
        "riscv": cmd_riscv,
        "bench": cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
