"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list``                      -- the benchmark suite (Table 2);
- ``compile <program>``         -- derive a suite program; print its C;
- ``cert <program>``            -- print the derivation certificate;
- ``validate <program>``        -- certificate + differential validation;
- ``riscv <program>``           -- compile through the RISC-V backend and
  print instruction stats;
- ``bench``                     -- print the reproduced Figure 2;
- ``fuzz``                      -- seeded pipeline fuzzing campaign
  (random models through compile/certify/validate/optimize/RISC-V);
- ``faults``                    -- cross-layer fault-injection campaign
  (corrupt untrusted components; assert the trusted checkers notice);
  ``--serve`` runs the serve-layer availability campaign instead
  (worker crashes, timeouts, cache corruption, queue saturation);
- ``profile <program>``         -- compile under the flight recorder and
  print the per-phase / per-lemma time breakdown;
- ``batch <manifest>``          -- compile a manifest of programs and/or
  a fuzz corpus through the worker pool (``--jobs``) and the
  content-addressed cache (``--cache``);
- ``serve``                     -- long-lived JSON-lines compilation
  service over stdio or a Unix socket; ``--workers N`` dispatches
  through the supervised worker pool (timeouts, retry/backoff,
  backpressure, degraded mode -- see ``docs/serving.md``);
- ``cache <verify|gc|repair>``  -- offline cache maintenance sweeps
  (re-check entries, sweep writer debris, recompile quarantined keys);
- ``query <action>``            -- the relational-algebra frontend
  (``repro.query``): list/explain/compile/validate/run the registered
  query programs (see ``docs/query.md``);
- ``lift <action> <program>``   -- the round-trip lifter (``repro.lift``):
  ``lift`` synthesizes and prints the functional model recovered from a
  compiled program's Bedrock2 code (``--file`` lifts a serialized legacy
  bundle instead); ``explain`` prints the backward-search step trace;
  ``validate`` certifies the lift (recompile or extensional -- see
  ``docs/lifting.md``);
- ``lint``                      -- static analysis (``repro.analysis``):
  audit the standard hint databases for determinism/coverage defects and
  run the Bedrock2 dataflow lint over compiled suite programs; exits
  nonzero on any error- or warning-severity diagnostic (see
  ``docs/analysis.md``).

``compile``, ``validate``, ``riscv``, and ``bench`` accept ``-O0`` (the
default) or ``-O1`` to run the translation-validated optimizer
(``repro.opt``) on the derived code first.  ``compile``, ``validate``,
``bench``, ``fuzz``, and ``faults`` accept ``--trace FILE`` to record
the run's flight-recorder events as JSON Lines (see
``docs/observability.md``).  ``compile``, ``bench``, ``batch``, and
``serve`` accept ``--cache DIR`` to reuse (re-validated) derivations
across runs; ``fuzz``, ``faults``, and ``batch`` accept ``--jobs N``
for a worker pool.  All commands accept ``--seed`` and seed Python's
``random`` module themselves, so runs are reproducible rather than
depending on ambient RNG state.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from contextlib import contextmanager


@contextmanager
def _maybe_trace(args, name: str, force: bool = False, detail: str = "standard"):
    """Install a flight recorder when ``--trace`` (or ``force``) asks for one.

    Yields the :class:`~repro.obs.trace.Tracer` (or ``None`` when tracing
    is off -- the instrumented code then sees the zero-cost null tracer).
    Single-compile commands pass ``detail="debug"`` for per-miss events
    and per-goal spans; campaigns stay at "standard" so tracing is cheap
    at scale.  The JSONL file is written when the block exits, so a trace
    survives even if the command itself fails partway.
    """
    path = getattr(args, "trace", None)
    if not path and not force:
        yield None
        return
    from repro.obs.trace import Tracer, use_tracer

    tracer = Tracer(name=name, detail=detail)
    try:
        with use_tracer(tracer):
            yield tracer
    finally:
        if path:
            tracer.write_jsonl(path)
            print(
                f"// trace: {len(tracer.events)} events -> {path}",
                file=sys.stderr,
            )


def cmd_list(_args) -> int:
    from repro.programs import all_programs

    for program in all_programs():
        features = ", ".join(program.features)
        print(f"{program.name:<8} {program.description}  [{features}]")
    return 0


def _program(name: str):
    from repro.programs import get_program

    try:
        return get_program(name)
    except KeyError:
        print(f"unknown program {name!r}; try `python -m repro list`", file=sys.stderr)
        raise SystemExit(2) from None


def _compiled(args):
    """Compile the named program at the requested optimization level.

    With ``--cache DIR`` the derivation is served from (and stored to)
    the content-addressed cache; warm entries are re-validated by the
    trusted checkers before use and the outcome is reported on stderr.
    """
    program = _program(args.program)
    opt_level = getattr(args, "opt_level", 0)
    cache_dir = getattr(args, "cache", None)
    if cache_dir:
        from repro.serve.cache import CompilationCache, compile_program_cached

        cache = CompilationCache(cache_dir)
        compiled, outcome = compile_program_cached(cache, program, opt_level=opt_level)
        print(f"// cache: {outcome} ({cache_dir})", file=sys.stderr)
        return program, compiled
    return program, program.compile(opt_level=opt_level)


def _print_opt_summary(compiled) -> None:
    report = compiled.opt_report
    if report is not None:
        applied = ", ".join(report.applied) or "none"
        print(f"// optimizer: {report.stmts_before} -> {report.stmts_after} "
              f"statements; passes applied: {applied}", file=sys.stderr)
        for cert in report.rejected:
            print(f"// optimizer: rejected {cert.pass_name}: {cert.detail}",
                  file=sys.stderr)


def cmd_compile(args) -> int:
    with _maybe_trace(args, f"compile:{args.program}", detail="debug"):
        _, compiled = _compiled(args)
    print(compiled.c_source())
    _print_opt_summary(compiled)
    return 0


def cmd_cert(args) -> int:
    program = _program(args.program)
    compiled = program.compile()
    print(compiled.certificate.render())
    return 0


def cmd_validate(args) -> int:
    from repro.validation.checker import validate

    if getattr(args, "degrade", False):
        from repro.resilience.degrade import DegradedFunction, compile_or_degrade

        program = _program(args.program)
        result = compile_or_degrade(program.build_model(), program.build_spec())
        if isinstance(result, DegradedFunction):
            print(result.banner(), file=sys.stderr)
            rng = random.Random(args.seed)
            from repro.validation.runners import make_inputs

            for _ in range(min(3, args.trials)):
                result.run(make_inputs(result.model, rng))
            print(
                f"{result.name}: DEGRADED (unverified model interpretation); "
                f"stall reason: {result.report.reason}"
            )
            return 0

    with _maybe_trace(args, f"validate:{args.program}", detail="debug"):
        if getattr(args, "lift_validate", False):
            # Re-optimize explicitly so the lift cross-check runs on the
            # pipeline output (the cached registry bundle would skip it).
            program = _program(args.program)
            compiled = program.compile(fresh=True).optimize(
                level=max(args.opt_level, 1),
                input_gen=program.validation_input_gen(),
                lift_validate=True,
            )
        else:
            program, compiled = _compiled(args)
        kwargs = {}
        input_gen = program.validation_input_gen()
        if input_gen is not None:
            kwargs["input_gen"] = input_gen
        report = validate(
            compiled, trials=args.trials, rng=random.Random(args.seed), **kwargs
        )
    suffix = ""
    if compiled.opt_report is not None:
        applied = ", ".join(compiled.opt_report.applied) or "none"
        suffix = f"; optimizer passes validated: {applied}"
        for cert in compiled.opt_report.certificates:
            if cert.pass_name == "lift-validate":
                suffix += f"; lift-validate: {cert.status}"
    print(
        f"{compiled.name}: certificate ok; {report.trials} differential "
        f"trials, 0 failures{suffix}"
    )
    return 0


def cmd_riscv(args) -> int:
    from repro.riscv import compile_function

    _, compiled = _compiled(args)
    rv_program = compile_function(compiled.bedrock_fn)
    print(
        f"{compiled.name}: {len(rv_program.instrs)} instructions "
        f"({rv_program.size_bytes} bytes of code, "
        f"{len(rv_program.data)} bytes of table data)"
    )
    _print_opt_summary(compiled)
    if args.disasm:
        from repro.riscv.isa import encode

        for instr in rv_program.instrs:
            print(f"  {encode(instr):08x}  {instr}")
    return 0


def cmd_fuzz(args) -> int:
    from repro.resilience.fuzzer import run_fuzz

    def progress(message: str) -> None:
        print(f"// {message}", file=sys.stderr)

    with _maybe_trace(args, f"fuzz:{args.seed}"):
        report = run_fuzz(
            seed=args.seed,
            budget=args.budget,
            trials=args.trials,
            fuel=args.fuel,
            deadline=args.deadline,
            progress=progress if args.verbose else None,
            jobs=args.jobs,
        )
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_faults(args) -> int:
    def progress(message: str) -> None:
        print(f"// {message}", file=sys.stderr)

    with _maybe_trace(args, f"faults:{args.seed}"):
        if getattr(args, "serve", False):
            from repro.resilience.serve_faults import run_serve_faults

            report = run_serve_faults(
                seed=args.seed,
                jobs=args.jobs,
                progress=progress if args.verbose else None,
            )
        elif getattr(args, "lift", False):
            from repro.resilience.lift_faults import run_lift_faults

            report = run_lift_faults(
                seed=args.seed,
                progress=progress if args.verbose else None,
            )
        else:
            from repro.resilience.faults import run_faults

            report = run_faults(
                seed=args.seed,
                budget=args.budget,
                progress=progress if args.verbose else None,
                jobs=args.jobs,
            )
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_bench(args) -> int:
    from benchmarks.figure2 import figure2_rows, render_figure2  # type: ignore

    cache = None
    if getattr(args, "cache", None):
        from repro.serve.cache import CompilationCache

        cache = CompilationCache(args.cache)
    # --json always meters the run: the suite compilations happen under a
    # tracer so the payload can carry the metrics registry.
    with _maybe_trace(args, "bench", force=args.json) as tracer:
        rows = figure2_rows(size=args.size, cache=cache)
        opt_rows = None
        if args.opt_level > 0:
            from benchmarks.figure2 import optimizer_rows, render_optimizer_table

            opt_rows = optimizer_rows(size=args.size, cache=cache)
    if cache is not None:
        stats = cache.stats
        print(
            f"// cache [{args.cache}]: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.invalidated} invalidated, {stats.stores} stores",
            file=sys.stderr,
        )
    if args.json:
        import dataclasses
        import json

        payload = {
            "size": args.size,
            "rows": [dataclasses.asdict(row) for row in rows],
            "metrics": tracer.metrics.to_dict(),
        }
        if opt_rows is not None:
            payload["optimizer"] = [dataclasses.asdict(row) for row in opt_rows]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(render_figure2(rows))
    if opt_rows is not None:
        from benchmarks.figure2 import render_optimizer_table

        print()
        print(render_optimizer_table(opt_rows))
    return 0


def cmd_batch(args) -> int:
    from repro.serve.batch import load_manifest, run_batch

    def progress(message: str) -> None:
        print(f"// {message}", file=sys.stderr)

    if args.manifest == "registry":
        from repro.serve.batch import registry_manifest

        jobs = registry_manifest(opt_level=args.opt_level)
    else:
        jobs = load_manifest(args.manifest)
    with _maybe_trace(args, f"batch:{args.manifest}"):
        report = run_batch(
            jobs,
            jobs_n=args.jobs,
            cache_dir=args.cache,
            fuel=args.fuel,
            deadline=args.deadline,
            progress=progress if args.verbose else None,
        )
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if not report.crashes else 1


def cmd_serve(args) -> int:
    supervisor = None
    if args.workers > 0:
        from repro.serve.supervisor import (
            SupervisedService,
            Supervisor,
            SupervisorConfig,
        )

        config = SupervisorConfig(
            workers=args.workers,
            request_timeout=args.timeout,
            max_retries=args.retries,
            queue_depth=args.queue_depth,
            degrade_after=args.degrade_after,
        )
        supervisor = Supervisor(config, cache_dir=args.cache)
        service = SupervisedService(supervisor)
    else:
        from repro.serve.service import CompileService

        service = CompileService(cache_dir=args.cache)
    service.install_signal_handlers()
    with _maybe_trace(args, "serve"):
        try:
            if supervisor is not None:
                supervisor.start()
            if args.socket:
                print(f"// serving on {args.socket}", file=sys.stderr)
                service.serve_socket(args.socket, concurrency=args.concurrency)
            else:
                service.serve_stdio()
        finally:
            if supervisor is not None:
                supervisor.stop()
    print(f"// {service.drain_summary()}", file=sys.stderr)
    return 0


def cmd_cache(args) -> int:
    from repro.serve.admin import gc_cache, repair_cache, verify_cache

    if not os.path.isdir(args.dir):
        # A typo'd path must not look like a healthy cache to cron.
        print(f"cache {args.action}: no such cache directory: {args.dir}", file=sys.stderr)
        return 2
    if args.action == "verify":
        report = verify_cache(args.dir, quarantine=args.quarantine)
    elif args.action == "gc":
        report = gc_cache(args.dir)
    else:
        report = repair_cache(args.dir)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.clean else 1


def _query_program(name: str):
    from repro.query.programs import QUERY_PROGRAMS, get_query_program

    try:
        return get_query_program(name)
    except KeyError:
        known = ", ".join(sorted(QUERY_PROGRAMS))
        print(
            f"unknown query program {name!r}; have: {known}", file=sys.stderr
        )
        raise SystemExit(2) from None


def cmd_query(args) -> int:
    from repro.query.programs import all_query_programs

    if args.action == "list":
        for program in all_query_programs():
            via = program.reified().via
            print(f"{program.name:<16} {program.description}  [{via}]")
        return 0

    if not args.program:
        print(f"query {args.action} needs a program name", file=sys.stderr)
        return 2
    program = _query_program(args.program)
    if args.action == "explain":
        print(program.explain())
        return 0

    with _maybe_trace(args, f"query:{args.action}:{args.program}", detail="debug"):
        if args.action == "compile":
            compiled = program.compile(opt_level=args.opt_level)
            print(compiled.c_source())
            _print_opt_summary(compiled)
            return 0
        if args.action == "validate":
            from repro.validation.checker import validate

            compiled = program.compile(opt_level=args.opt_level)
            report = validate(
                compiled,
                trials=args.trials,
                rng=random.Random(args.seed),
                input_gen=program.validation_input_gen(),
            )
            print(
                f"{compiled.name}: certificate ok; {report.trials} "
                f"differential trials, 0 failures"
            )
            return 0
        # run: one seeded random database through the reference evaluator
        # and the compiled code; print both answers.
        from repro.validation.runners import run_function

        compiled = program.compile(opt_level=args.opt_level)
        rng = random.Random(args.seed)
        tables, out_len = program.gen_tables(rng)
        params = program.inputs_from_tables(tables, out_len)
        expected = program.reference(tables, out_len)
        result = run_function(compiled.bedrock_fn, compiled.spec, params)
        reified = program.reified()
        got = (
            result.rets[0]
            if reified.kind == "scalar"
            else result.out_memory[reified.out_param]
        )
        for table, cols in reified.table_cols:
            shown = {col.name: tables[table][col.name] for col in cols}
            print(f"// {table}: {shown}")
        print(f"reference: {expected}")
        print(f"compiled:  {got}")
        if got != expected:
            print("MISMATCH", file=sys.stderr)
            return 1
        return 0


def _lift_target(args):
    """Resolve a lift target to ``(fn, spec, validation_input_gen)``.

    Three sources, in the order a user reaches for them: a serialized
    legacy bundle (``--file``), a suite program, a query program.  The
    compiled sources honour ``-O`` so one can lift optimizer output.
    """
    if getattr(args, "file", None):
        from repro.lift.legacy import load_bundle

        fn, spec = load_bundle(args.file)
        return fn, spec, None
    if not args.program:
        print("lift needs a program name or --file BUNDLE", file=sys.stderr)
        raise SystemExit(2)
    from repro.programs import all_programs, get_program
    from repro.query.programs import QUERY_PROGRAMS, get_query_program

    try:
        program = get_program(args.program)
    except KeyError:
        try:
            program = get_query_program(args.program)
        except KeyError:
            known = ", ".join(
                [p.name for p in all_programs()] + sorted(QUERY_PROGRAMS)
            )
            print(
                f"unknown program {args.program!r}; have: {known}",
                file=sys.stderr,
            )
            raise SystemExit(2) from None
    compiled = program.compile(opt_level=args.opt_level)
    return compiled.bedrock_fn, compiled.spec, program.validation_input_gen()


def cmd_lift(args) -> int:
    from repro.lift import certify, lift_function

    with _maybe_trace(args, f"lift:{args.action}:{args.program or args.file}",
                      detail="debug"):
        fn, spec, input_gen = _lift_target(args)
        result = lift_function(fn, spec, use_cache=False)
        if not result.ok:
            print(f"{fn.name}: lift stalled", file=sys.stderr)
            print(result.stall.to_json(), file=sys.stderr)
            return 1
        if args.action == "explain":
            print(f"// {fn.name}: {len(result.steps)} backward steps "
                  f"(key {result.key})")
            for index, step in enumerate(result.steps):
                extra = {k: v for k, v in step.items() if k not in ("head", "via")}
                suffix = f"  {extra}" if extra else ""
                print(f"  {index:>3}  {step['head']:<14} ~> {step['via']}{suffix}")
            return 0
        if args.action == "validate":
            cert = certify(
                result,
                trials=args.trials,
                rng=random.Random(args.seed),
                input_gen=input_gen,
            )
            print(f"{fn.name}: lift certified [{cert.kind}] {cert.detail}")
            return 0
    # lift: print the synthesized functional model.
    from repro.source.terms import pretty

    model = result.model
    params = ", ".join(f"{name}: {ty}" for name, ty in model.params)
    print(f"// lifted from {fn.name} in {len(result.steps)} steps "
          f"(key {result.key})")
    print(f"def {model.name}({params}) -> {model.result_ty}:")
    for line in pretty(model.term).splitlines():
        print(f"    {line}")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.runner import run_lint

    # Narrowing to one half narrows the run: `--db` alone skips the
    # program lints and `--program` alone skips the DB audits; with
    # neither, everything runs (the CI gate).
    db_names = args.db or (None if not args.program else [])
    program_names = args.program or (None if not args.db else [])
    with _maybe_trace(args, "lint"):
        try:
            report = run_lint(
                db_names=db_names,
                program_names=program_names,
                opt_levels=tuple(args.opt_levels) if args.opt_levels else (0, 1),
                ranges=args.ranges,
            )
        except KeyError as exc:
            print(f"lint: {exc.args[0]}", file=sys.stderr)
            raise SystemExit(2) from None
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_profile(args) -> int:
    from repro.obs.profile import profile_program

    _program(args.program)  # friendly error for unknown names
    report = profile_program(args.program, opt_level=args.opt_level)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render(top=args.top))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Rupicola reproduction: relational compilation toolkit",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for Python's random module (reproducible runs)",
    )
    # Proof-search fast-path kill switches (before the subcommand, e.g.
    # ``python -m repro --no-index compile crc32``).  Each disables one
    # layer; outputs, certificates, and cache keys are identical either
    # way (see docs/dispatch.md), only the speed changes.
    parser.add_argument(
        "--no-index", action="store_true",
        help="disable head-indexed lemma dispatch (linear hint-DB scans)",
    )
    parser.add_argument(
        "--no-intern", action="store_true",
        help="disable hash-consing of source terms",
    )
    parser.add_argument(
        "--no-memo", action="store_true",
        help="disable per-derivation memoization of repeated pure subterms",
    )
    parser.add_argument(
        "--no-absint", action="store_true",
        help="disable per-state caching of abstract-interpretation range maps",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the benchmark suite")
    trace_help = "record flight-recorder events to FILE (JSON Lines)"
    for name in ("compile", "cert", "riscv"):
        p = sub.add_parser(name)
        p.add_argument("program")
        if name != "cert":
            p.add_argument(
                "-O", dest="opt_level", type=int, choices=(0, 1), default=0,
                help="optimization level (-O0 none, -O1 validated passes)",
            )
        if name == "compile":
            p.add_argument("--trace", metavar="FILE", help=trace_help)
            p.add_argument(
                "--cache", metavar="DIR",
                help="content-addressed derivation cache (entries are "
                "re-validated by the trusted checkers on load)",
            )
        if name == "riscv":
            p.add_argument("--disasm", action="store_true")
    p = sub.add_parser("validate")
    p.add_argument("program")
    p.add_argument("--trials", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "-O", dest="opt_level", type=int, choices=(0, 1), default=0,
        help="validate the optimized code instead of the raw derivation",
    )
    p.add_argument(
        "--degrade", action="store_true",
        help="on compilation failure, fall back to interpreting the "
        "functional model (clearly marked unverified) instead of aborting",
    )
    p.add_argument(
        "--lift-validate", action="store_true", dest="lift_validate",
        help="with -O1: lift the optimizer output back to a functional "
        "model and cross-check it against the source model (repro.lift)",
    )
    p.add_argument("--trace", metavar="FILE", help=trace_help)
    p = sub.add_parser("fuzz", help="seeded pipeline fuzzing campaign")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--budget", type=int, default=100, help="number of cases")
    p.add_argument("--trials", type=int, default=6,
                   help="differential trials per case")
    p.add_argument("--fuel", type=int, default=200_000,
                   help="proof-search fuel per case")
    p.add_argument("--deadline", type=float, default=20.0,
                   help="wall-clock seconds per case")
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.add_argument("--trace", metavar="FILE", help=trace_help)
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1: single-process, full tracing)",
    )
    p = sub.add_parser("faults", help="cross-layer fault-injection campaign")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--budget", type=int, default=None,
                   help="cap the number of injections")
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.add_argument("--trace", metavar="FILE", help=trace_help)
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (default 1: single-process, full tracing)",
    )
    p.add_argument(
        "--serve", action="store_true",
        help="run the serve-layer availability campaign (supervised pool) "
        "instead of the checker-soundness campaign",
    )
    p.add_argument(
        "--lift", action="store_true",
        help="run the lift fault campaign: seed a model-drifting optimizer "
        "pass that per-pass certificates and `repro lint` both accept, and "
        "assert the repro.lift cross-check rejects it",
    )
    p = sub.add_parser("bench")
    p.add_argument("--size", type=int, default=1024)
    p.add_argument(
        "-O", dest="opt_level", type=int, choices=(0, 1), default=0,
        help="also print the optimized-vs-unoptimized comparison",
    )
    p.add_argument("--json", action="store_true",
                   help="machine-readable rows plus the metrics registry")
    p.add_argument("--trace", metavar="FILE", help=trace_help)
    p.add_argument("--cache", metavar="DIR",
                   help="serve suite derivations from this cache directory")
    p = sub.add_parser(
        "batch", help="compile a manifest of jobs through the worker pool"
    )
    p.add_argument(
        "manifest",
        help="JSON manifest path, or the literal 'registry' for the full suite",
    )
    p.add_argument("--jobs", type=int, default=1, help="worker processes")
    p.add_argument("--cache", metavar="DIR",
                   help="shared content-addressed derivation cache")
    p.add_argument(
        "-O", dest="opt_level", type=int, choices=(0, 1), default=0,
        help="optimization level for the 'registry' shorthand manifest",
    )
    p.add_argument("--fuel", type=int, default=200_000,
                   help="proof-search fuel per job")
    p.add_argument("--deadline", type=float, default=20.0,
                   help="wall-clock seconds per job")
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.add_argument("--trace", metavar="FILE", help=trace_help)
    p.add_argument("-v", "--verbose", action="store_true")
    p = sub.add_parser(
        "serve", help="long-lived JSON-lines compilation service"
    )
    p.add_argument("--cache", metavar="DIR",
                   help="content-addressed derivation cache")
    p.add_argument("--socket", metavar="PATH",
                   help="listen on a Unix domain socket instead of stdio")
    p.add_argument(
        "--workers", type=int, default=0,
        help="dispatch through a supervised pool of N worker subprocesses "
        "(0: compile in-process, the original single-tenant mode)",
    )
    p.add_argument(
        "--queue-depth", type=int, default=8,
        help="max requests waiting for a worker before backpressure",
    )
    p.add_argument(
        "--timeout", type=float, default=30.0,
        help="hard wall-clock seconds per request (supervised mode)",
    )
    p.add_argument(
        "--retries", type=int, default=1,
        help="retries for transient failures such as worker deaths",
    )
    p.add_argument(
        "--degrade-after", type=int, default=3,
        help="consecutive compile failures before the unverified "
        "interpreter fallback",
    )
    p.add_argument(
        "--concurrency", type=int, default=1,
        help="socket connections served concurrently (supervised mode)",
    )
    p.add_argument("--trace", metavar="FILE", help=trace_help)
    p = sub.add_parser(
        "cache", help="offline cache maintenance (verify / gc / repair)"
    )
    p.add_argument("action", choices=("verify", "gc", "repair"))
    p.add_argument("dir", help="cache directory to sweep")
    p.add_argument(
        "--quarantine", action="store_true",
        help="verify: move corrupt entries to the quarantine directory",
    )
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p = sub.add_parser(
        "query", help="relational-algebra frontend (repro.query)"
    )
    p.add_argument(
        "action", choices=("list", "explain", "compile", "validate", "run")
    )
    p.add_argument("program", nargs="?", help="query program name")
    p.add_argument(
        "-O", dest="opt_level", type=int, choices=(0, 1), default=0,
        help="optimization level (-O0 none, -O1 validated passes)",
    )
    p.add_argument("--trials", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", metavar="FILE", help=trace_help)
    p = sub.add_parser(
        "lift",
        help="lift Bedrock2 back to a functional model (repro.lift)",
    )
    p.add_argument(
        "action", choices=("lift", "explain", "validate"),
        help="lift: print the synthesized model; explain: print the "
        "backward-search step trace; validate: lift and certify",
    )
    p.add_argument("program", nargs="?",
                   help="suite or query program name (see `list`/`query list`)")
    p.add_argument(
        "--file", metavar="BUNDLE",
        help="lift a serialized legacy bundle (JSON: function + spec) "
        "instead of a registered program",
    )
    p.add_argument(
        "-O", dest="opt_level", type=int, choices=(0, 1), default=0,
        help="lift the optimizer's output instead of the raw derivation",
    )
    p.add_argument("--trials", type=int, default=24,
                   help="validate: trials for the extensional certificate")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", metavar="FILE", help=trace_help)
    p = sub.add_parser(
        "lint",
        help="static analysis: hint-DB audit + Bedrock2 dataflow lint",
    )
    p.add_argument(
        "--db", action="append", metavar="NAME", default=[],
        help="audit only this hint database (bindings, exprs); repeatable",
    )
    p.add_argument(
        "--program", action="append", metavar="NAME", default=[],
        help="lint only this suite program's compiled code; repeatable",
    )
    p.add_argument(
        "-O", dest="opt_levels", action="append", type=int, choices=(0, 1),
        default=[],
        help="optimization level(s) to lint programs at (default: both)",
    )
    p.add_argument(
        "--ranges", action="store_true",
        help="also show the inferred per-variable value ranges (absint)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.add_argument("--trace", metavar="FILE", help=trace_help)
    p = sub.add_parser(
        "profile", help="per-phase / per-lemma time breakdown of one compile"
    )
    p.add_argument("program")
    p.add_argument(
        "-O", dest="opt_level", type=int, choices=(0, 1), default=0,
        help="profile the optimizer pipeline too",
    )
    p.add_argument("--top", type=int, default=10, help="hottest lemmas to show")
    p.add_argument("--json", action="store_true", help="machine-readable report")

    args = parser.parse_args(argv)
    random.seed(args.seed)
    if args.no_index:
        from repro.core.lemma import set_index_enabled

        set_index_enabled(False)
    if args.no_intern:
        from repro.source.terms import set_interning

        set_interning(False)
    if args.no_memo:
        from repro.core.engine import set_memo_enabled

        set_memo_enabled(False)
    if args.no_absint:
        from repro.analysis.absint import set_absint_enabled

        set_absint_enabled(False)
    handlers = {
        "list": cmd_list,
        "compile": cmd_compile,
        "cert": cmd_cert,
        "validate": cmd_validate,
        "riscv": cmd_riscv,
        "bench": cmd_bench,
        "fuzz": cmd_fuzz,
        "faults": cmd_faults,
        "profile": cmd_profile,
        "batch": cmd_batch,
        "serve": cmd_serve,
        "cache": cmd_cache,
        "query": cmd_query,
        "lift": cmd_lift,
        "lint": cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
