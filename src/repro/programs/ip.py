"""ip: the IP one's-complement checksum (RFC 1071).

Model: a ranged ``for`` over 16-bit pairs accumulating into a word, a
guarded load for the trailing odd byte (the guard's path condition is
exactly the bounds fact the array access needs), a fixed number of carry
folds, and a final complement:

    acc := for i in [0, (len+1)/2):
             acc + (s[2i] | (if 2i+1 < len then s[2i+1] else 0) << 8)
    acc := Nat.iter 4 (fun a => (a & 0xffff) + (a >> 16)) acc
    chk := ~acc & 0xffff

The fixed carry-fold count is the verified-implementation refinement of
RFC 1071's ``while (sum >> 16)`` loop; four folds suffice for inputs up
to 1 MiB, which the spec records as an *incidental* fact (§3.4.2) -- this
is the paper's "Lemmas: 3" column for ip in Table 2.
"""

from __future__ import annotations

from repro.bedrock2 import ast
from repro.core.spec import FnSpec, Model, len_arg, ptr_arg, scalar_out
from repro.programs.registry import BenchProgram, register_program
from repro.source import listarray
from repro.source import terms as t
from repro.source.builder import ite, let_n, nat_iter, ranged_for, sym, word_lit
from repro.source.types import ARRAY_BYTE, NAT, WORD

MAX_LEN = 1 << 20  # carry folds are exact up to 1 MiB inputs


def build_model() -> Model:
    s = sym("s", ARRAY_BYTE)
    length = listarray.length(s)
    pairs = (length + 1).udiv(2)

    def step(i, acc):
        lo = listarray.get(s, i * 2).to_word()
        hi_value = ite(
            (i * 2 + 1).ltu(length),
            listarray.get(s, i * 2 + 1).to_word(),
            word_lit(0),
        )
        return let_n(
            "lo",
            lo,
            let_n(
                "hi",
                hi_value,
                acc + (sym("lo", WORD) | (sym("hi", WORD) << 8)),
            ),
        )

    total = ranged_for(0, pairs, step, word_lit(0), names=("i", "acc"))
    folded = nat_iter(
        4,
        lambda a: (a & 0xFFFF) + (a >> 16),
        sym("acc", WORD),
        name="a",
    )
    program = let_n(
        "acc",
        total,
        let_n(
            "acc",
            folded,
            let_n("chk", (~sym("acc", WORD)) & 0xFFFF, sym("chk", WORD)),
        ),
    )
    return Model("ip_checksum", [("s", ARRAY_BYTE)], program.term, WORD)


def build_spec() -> FnSpec:
    # The incidental facts a user proves at the source level: the input is
    # bounded (justifying both of_nat lowering of (len+1) and the fixed
    # carry-fold count).
    bounded = t.Prim(
        "nat.ltb", (t.ArrayLen(t.Var("s")), t.Lit(MAX_LEN, NAT))
    )
    return FnSpec(
        "ip_checksum",
        [ptr_arg("s", ARRAY_BYTE), len_arg("len", "s")],
        [scalar_out()],
        facts=[bounded],
    )


def reference(data: bytes) -> int:
    """RFC 1071, the textbook way (while-loop carry folding)."""
    total = 0
    for offset in range(0, len(data) - 1, 2):
        total += data[offset] | (data[offset + 1] << 8)
    if len(data) % 2:
        total += data[-1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def build_handwritten() -> ast.Function:
    """The C implementation: pairwise sum with a guarded odd byte, then
    two-and-more carry folds (unrolled to four, like the model)."""
    from repro.bedrock2.ast import ELit, EOp, SCond, SSet, SWhile, load1, seq_of, var

    i, s, ln, acc = var("i"), var("s"), var("len"), var("acc")
    two_i = EOp("mul", ELit(2), i)
    lo = load1(EOp("add", s, two_i))
    hi_addr = EOp("add", s, EOp("add", two_i, ELit(1)))
    body = seq_of(
        SSet("lo", lo),
        SCond(
            EOp("ltu", EOp("add", two_i, ELit(1)), ln),
            SSet("hi", load1(hi_addr)),
            SSet("hi", ELit(0)),
        ),
        SSet("acc", EOp("add", acc, EOp("or", var("lo"), EOp("slu", var("hi"), ELit(8))))),
        SSet("i", EOp("add", i, ELit(1))),
    )
    fold = SSet(
        "acc",
        EOp("add", EOp("and", acc, ELit(0xFFFF)), EOp("sru", acc, ELit(16))),
    )
    code = seq_of(
        SSet("acc", ELit(0)),
        SSet("pairs", EOp("divu", EOp("add", ln, ELit(1)), ELit(2))),
        SSet("i", ELit(0)),
        SWhile(EOp("ltu", i, var("pairs")), body),
        fold,
        fold,
        fold,
        fold,
        SSet("chk", EOp("and", EOp("xor", acc, ELit((1 << 64) - 1)), ELit(0xFFFF))),
    )
    return ast.Function("ip_hw", ("s", "len"), ("chk",), code)


register_program(
    BenchProgram(
        name="ip",
        description="IP (one's-complement) checksum (RFC 1071)",
        build_model=build_model,
        build_spec=build_spec,
        reference=reference,
        build_handwritten=build_handwritten,
        calling_style="hash",
        features=("Arithmetic", "Arrays", "Loops"),
        end_to_end=True,
        max_len=MAX_LEN,
    )
)
