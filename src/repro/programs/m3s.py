"""m3s: the scramble step of the Murmur3 hash.

A straight-line, loop-free scalar computation (Table 2 marks it with the
Arithmetic feature only):

    k *= 0xcc9e2d51;
    k = (k << 15) | (k >> 17);    // rotl32(k, 15)
    k *= 0x1b873593;

Murmur3 works on 32-bit lanes; on our 64-bit target each step masks back
to 32 bits, exactly as portable C on a 64-bit machine would with
``uint32_t`` semantics spelled out.
"""

from __future__ import annotations

from repro.bedrock2 import ast
from repro.core.spec import FnSpec, Model, scalar_arg, scalar_out
from repro.programs.registry import BenchProgram, register_program
from repro.source.builder import let_n, sym
from repro.source.types import WORD

C1 = 0xCC9E2D51
C2 = 0x1B873593
MASK32 = 0xFFFFFFFF


def build_model() -> Model:
    k = sym("k", WORD)
    step1 = let_n("k", (k * C1) & MASK32, sym("k", WORD))
    k1 = sym("k", WORD)
    rot = ((k1 << 15) | (k1 >> 17)) & MASK32
    step2 = let_n("k", rot, sym("k", WORD))
    step3 = let_n("k", (sym("k", WORD) * C2) & MASK32, sym("k", WORD))
    # Chain the steps: let k := ...*c1 in let k := rotl in let k := ...*c2 in k.
    from repro.source import terms as t

    program = t.Let(
        "k",
        step1.term.value,
        t.Let("k", step2.term.value, t.Let("k", step3.term.value, t.Var("k"))),
    )
    return Model("m3s", [("k", WORD)], program, WORD)


def build_spec() -> FnSpec:
    return FnSpec("m3s", [scalar_arg("k")], [scalar_out()])


def reference(k: int) -> int:
    k = (k * C1) & MASK32
    k = ((k << 15) | (k >> 17)) & MASK32
    k = (k * C2) & MASK32
    return k


def reference_bytes(data: bytes) -> int:
    """Byte-wise driver used by the benchmark harness: scramble a running
    lane fed 4 bytes at a time (the shape of Murmur3's inner loop)."""
    acc = 0
    for offset in range(0, len(data) - 3, 4):
        lane = int.from_bytes(data[offset : offset + 4], "little")
        acc = (acc ^ reference(lane)) & MASK32
    return acc


def build_handwritten() -> ast.Function:
    from repro.bedrock2.ast import ELit, EOp, SSet, seq_of, var

    k = var("k")
    code = seq_of(
        SSet("k", EOp("and", EOp("mul", k, ELit(C1)), ELit(MASK32))),
        SSet(
            "k",
            EOp(
                "and",
                EOp("or", EOp("slu", k, ELit(15)), EOp("sru", k, ELit(17))),
                ELit(MASK32),
            ),
        ),
        SSet("k", EOp("and", EOp("mul", k, ELit(C2)), ELit(MASK32))),
    )
    return ast.Function("m3s_hw", ("k",), ("k",), code)


register_program(
    BenchProgram(
        name="m3s",
        description="Scramble part of the Murmur3 algorithm",
        build_model=build_model,
        build_spec=build_spec,
        reference=reference,
        build_handwritten=build_handwritten,
        calling_style="scalar",
        features=("Arithmetic",),
        end_to_end=False,
        scalar_args=("k",),
    )
)
