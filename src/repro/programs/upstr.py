"""upstr: in-place string uppercase (the paper's Box 1 / §3.2 example).

High-level spec: ``String.map Char.toupper``.  The lowered model works on
``list byte`` with ``ListArray.map`` and the efficient byte computation
``toupper'`` of §3.2:

    Definition toupper' (b: byte) : byte :=
      if wrap (b - "a") <? 26 then b & x5f else b.

The four transformations of the walkthrough happen exactly as in the
paper: strings-as-arrays comes from the ABI (pointer + length), map
becomes a for loop, the rebinding of ``s`` licenses in-place mutation,
and the bit trick is the model's body (plugged in as a program
equivalence at the source level -- see ``tests/programs`` for the
model-vs-reference proof surrogate).
"""

from __future__ import annotations

from repro.bedrock2 import ast
from repro.core.spec import FnSpec, Model, array_out, len_arg, ptr_arg
from repro.programs.registry import BenchProgram, register_program
from repro.source import listarray
from repro.source.builder import ite, let_n, sym
from repro.source.types import ARRAY_BYTE


def toupper_prime(b):
    """The efficient byte-level uppercase: branch on ``wrap (b - 'a') < 26``."""
    return ite((b - ord("a")).ltu(26), b & 0x5F, b)


def build_model() -> Model:
    s = sym("s", ARRAY_BYTE)
    program = let_n("s", listarray.map_(toupper_prime, s, elem_name="b"), s)
    return Model("upstr'", [("s", ARRAY_BYTE)], program.term, ARRAY_BYTE)


def build_spec() -> FnSpec:
    """The fnspec of §3.2: requires ``wlen = of_nat (length s)`` and
    ``(array p s * r) m``; ensures the same memory holds ``upstr' s``."""
    return FnSpec(
        "upstr",
        [ptr_arg("s", ARRAY_BYTE), len_arg("len", "s")],
        [array_out("s")],
    )


def reference(data: bytes) -> bytes:
    """The high-level specification: ASCII uppercase."""
    return bytes(b - 32 if ord("a") <= b <= ord("z") else b for b in data)


def build_handwritten() -> ast.Function:
    """The handwritten C of Box 1, transcribed to Bedrock2:

        for (int i = 0; i < len; i++) str[i] = toupper(str[i]);

    with toupper open-coded as the comparison + bitmask.
    """
    from repro.bedrock2.ast import (
        EOp,
        ELit,
        SCond,
        SSet,
        SStore,
        SWhile,
        load1,
        seq_of,
        var,
    )

    i, s, ln = var("i"), var("s"), var("len")
    elem = load1(EOp("add", s, i))
    body = seq_of(
        SCond(
            EOp("ltu", EOp("and", EOp("sub", elem, ELit(97)), ELit(0xFF)), ELit(26)),
            SStore(1, EOp("add", s, i), EOp("and", elem, ELit(0x5F))),
            ast.SSkip(),
        ),
        SSet("i", EOp("add", i, ELit(1))),
    )
    loop = seq_of(SSet("i", ELit(0)), SWhile(EOp("ltu", i, ln), body))
    return ast.Function("upstr_hw", ("s", "len"), (), loop)


register_program(
    BenchProgram(
        name="upstr",
        description="In-place string uppercase (Box 1)",
        build_model=build_model,
        build_spec=build_spec,
        reference=reference,
        build_handwritten=build_handwritten,
        calling_style="inplace",
        features=("Arithmetic", "Arrays", "Loops", "Mutation"),
        end_to_end=True,
        gen_input=lambda rng, n: bytes(rng.randrange(32, 127) for _ in range(n)),
    )
)
