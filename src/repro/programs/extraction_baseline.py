"""The OCaml-extraction baseline (§4.2's "multiple orders of magnitude").

Coq's extraction maps Gallina data structures to their literal OCaml
counterparts: strings become linked lists of characters, ``nth`` is a
linear walk, ``map`` allocates a fresh cell per element.  This module is
a faithful cost simulation of that world: a cons-cell runtime with
counters for allocations, pointer dereferences, arithmetic, and calls,
and per-program "extracted" implementations written exactly the way
extraction renders the Gallina models (structural recursion, no arrays,
no mutation).

The Figure 2 harness prices these counters with the same weights as the
Bedrock2 interpreter counters, which reproduces the paper's observation
that the gap is orders of magnitude -- and, for table-driven programs
like crc32, asymptotic (footnote 13: a linear ``nth`` lookup per byte).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Dict, Optional


@dataclass
class ExtractionCosts:
    """Counters mirroring :class:`repro.bedrock2.semantics.OpCounts`."""

    alloc: int = 0  # fresh cons cells (GC pressure)
    deref: int = 0  # pointer chases through cons cells
    arith: int = 0
    call: int = 0  # recursive calls (stack frames / closures)

    def weighted(self, weights: Dict[str, float]) -> float:
        return sum(weights.get(k, 0.0) * v for k, v in self.__dict__.items())

    def total(self) -> int:
        return self.alloc + self.deref + self.arith + self.call


@dataclass
class Cons:
    """One cons cell of an extracted ``list``."""

    head: int
    tail: Optional["Cons"]


class ExtractedRuntime:
    """The extracted-OCaml world: cons lists with metered operations."""

    def __init__(self):
        self.costs = ExtractionCosts()

    # -- List primitives, as extraction renders them ---------------------------

    def of_bytes(self, data: bytes) -> Optional[Cons]:
        """Build the input list (not charged: it models the pre-existing value)."""
        head: Optional[Cons] = None
        for byte in reversed(data):
            head = Cons(byte, head)
        return head

    def to_bytes(self, lst: Optional[Cons]) -> bytes:
        out = bytearray()
        while lst is not None:
            out.append(lst.head)
            lst = lst.tail
        return bytes(out)

    def cons(self, head: int, tail: Optional[Cons]) -> Cons:
        self.costs.alloc += 1
        return Cons(head, tail)

    def uncons(self, lst: Cons):
        self.costs.deref += 1
        return lst.head, lst.tail

    def nth(self, lst: Optional[Cons], index: int, default: int = 0) -> int:
        """Coq's ``nth``: a linear walk -- the asymptotic killer."""
        self.costs.call += 1
        while index > 0 and lst is not None:
            self.costs.deref += 1
            self.costs.call += 1  # structural recursion
            lst = lst.tail
            index -= 1
        if lst is None:
            return default
        self.costs.deref += 1
        return lst.head

    def map(self, fn: Callable[[int], int], lst: Optional[Cons]) -> Optional[Cons]:
        """Non-tail-recursive ``List.map``: one frame + one cell per element."""
        self.costs.call += 1
        if lst is None:
            return None
        head, tail = self.uncons(lst)
        return self.cons(fn(head), self.map(fn, tail))

    def fold_left(self, fn: Callable[[int, int], int], lst: Optional[Cons], acc: int) -> int:
        self.costs.call += 1
        while lst is not None:
            head, tail = self.uncons(lst)
            acc = fn(acc, head)
            self.costs.call += 1
            lst = tail
        return acc

    def arith(self, value: int) -> int:
        self.costs.arith += 1
        return value

    def z_op(self, value: int, bits: int = 64) -> int:
        """One machine-word operation in extracted-Coq land.

        Coq's ``word``/``Z`` arithmetic extracts (without unsound
        remapping) to arbitrary-precision integers represented as linked
        structures: one operation walks and reallocates O(bits) digits.
        We charge a conservative fraction of that.
        """
        self.costs.arith += bits // 8
        self.costs.alloc += bits // 16
        self.costs.deref += bits // 16
        return value


# -- Extracted program implementations --------------------------------------------


def upstr_extracted(runtime: ExtractedRuntime, data: bytes) -> bytes:
    """String.map Char.toupper, on a linked list of characters."""
    lst = runtime.of_bytes(data)

    def toupper(b: int) -> int:
        # Box 1: "characters an inductive type with 256 cases, and
        # toupper a disjunction with one case per lowercase letter".
        # Extraction keeps that shape: matching scans the 26 cases, and
        # each case compares an 8-tuple of booleans constructor-wise.
        cases_scanned = b - ord("a") + 1 if ord("a") <= b <= ord("z") else 26
        runtime.costs.arith += 8 * cases_scanned  # 8 boolean fields/case
        if ord("a") <= b <= ord("z"):
            return b - 32
        return b

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, len(data) + 1000))
    try:
        result = runtime.map(toupper, lst)
    finally:
        sys.setrecursionlimit(old_limit)
    return runtime.to_bytes(result)


def fnv1a_extracted(runtime: ExtractedRuntime, data: bytes) -> int:
    from repro.programs.fnv1a import FNV_OFFSET_BASIS, FNV_PRIME, MASK64

    lst = runtime.of_bytes(data)

    def step(h: int, b: int) -> int:
        # Two Z-arithmetic operations per byte (xor, mul on 64-bit words).
        runtime.z_op(0)
        return runtime.z_op(((h ^ b) * FNV_PRIME) & MASK64)

    return runtime.fold_left(step, lst, FNV_OFFSET_BASIS)


def crc32_extracted(runtime: ExtractedRuntime, data: bytes) -> int:
    """Table-driven CRC where the table is a 256-element *list*: each byte
    costs a linear nth traversal (the asymptotic change of footnote 13)."""
    from repro.programs.crc32 import CRC_TABLE

    table = runtime.of_bytes(bytes(0 for _ in CRC_TABLE))  # shape only
    # Rebuild with true values (of_bytes is byte-limited).
    head: Optional[Cons] = None
    for value in reversed(CRC_TABLE):
        head = Cons(value, head)
    table = head

    lst = runtime.of_bytes(data)

    def step(crc: int, b: int) -> int:
        runtime.z_op(0)  # xor+mask
        runtime.z_op(0)  # shift
        index = (crc ^ b) & 0xFF
        return runtime.z_op(runtime.nth(table, index) ^ (crc >> 8))

    crc = runtime.fold_left(step, lst, 0xFFFFFFFF)
    runtime.costs.arith += 1
    return crc ^ 0xFFFFFFFF


def fasta_extracted(runtime: ExtractedRuntime, data: bytes) -> bytes:
    from repro.programs.fasta import COMPLEMENT

    table: Optional[Cons] = None
    for value in reversed(COMPLEMENT):
        table = Cons(value, table)
    lst = runtime.of_bytes(data)

    def complement(b: int) -> int:
        return runtime.nth(table, b)

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, len(data) + 1000))
    try:
        result = runtime.map(complement, lst)
    finally:
        sys.setrecursionlimit(old_limit)
    return runtime.to_bytes(result)


EXTRACTED = {
    "upstr": upstr_extracted,
    "fnv1a": fnv1a_extracted,
    "crc32": crc32_extracted,
    "fasta": fasta_extracted,
}
