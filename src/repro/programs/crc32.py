"""crc32: the CRC-32 error-detecting code (polynomial 0xEDB88320).

The classic table-driven byte-at-a-time implementation: the 256-entry
lookup table is an *inline table* (a Bedrock2 function-local constant,
§4.1.2), and the fold body is

    crc := table[(crc ^ b) & 0xff] ^ (crc >> 8)

The table index's bounds obligation is discharged by interval reasoning
on the ``& 0xff`` mask -- no user lemma needed, matching the paper's
"plug in Coq's linear-arithmetic solver" workflow.
"""

from __future__ import annotations

from repro.bedrock2 import ast
from repro.core.spec import FnSpec, Model, len_arg, ptr_arg, scalar_out
from repro.programs.registry import BenchProgram, register_program
from repro.source import listarray
from repro.source.builder import let_n, sym, word_lit
from repro.source.inline_table import word_table
from repro.source.types import ARRAY_BYTE, WORD

POLY = 0xEDB88320


def _make_table():
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


CRC_TABLE = _make_table()


def build_model() -> Model:
    table = word_table(CRC_TABLE)
    s = sym("s", ARRAY_BYTE)

    def step(crc, b):
        index = ((crc ^ b.to_word()) & 0xFF).to_nat()
        return table.get(index) ^ (crc >> 8)

    fold = listarray.fold(step, word_lit(0xFFFFFFFF), s, names=("crc", "b"))
    program = let_n(
        "crc",
        fold,
        let_n("r", sym("crc", WORD) ^ 0xFFFFFFFF, sym("r", WORD)),
    )
    return Model("crc32", [("s", ARRAY_BYTE)], program.term, WORD)


def build_spec() -> FnSpec:
    return FnSpec(
        "crc32",
        [ptr_arg("s", ARRAY_BYTE), len_arg("len", "s")],
        [scalar_out()],
    )


def reference(data: bytes) -> int:
    crc = 0xFFFFFFFF
    for b in data:
        crc = CRC_TABLE[(crc ^ b) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def build_handwritten() -> ast.Function:
    """The table-driven loop a C programmer writes, table in const memory."""
    from repro.bedrock2.ast import EInlineTable, ELit, EOp, SSet, SWhile, load1, seq_of, var

    from repro.stdlib.inline_tables import pack_table

    packed = pack_table(CRC_TABLE, 8)
    i, s, ln, crc = var("i"), var("s"), var("len"), var("crc")
    index = EOp("mul", EOp("and", EOp("xor", crc, load1(EOp("add", s, i))), ELit(0xFF)), ELit(8))
    body = seq_of(
        SSet("crc", EOp("xor", EInlineTable(8, packed, index), EOp("sru", crc, ELit(8)))),
        SSet("i", EOp("add", i, ELit(1))),
    )
    code = seq_of(
        SSet("crc", ELit(0xFFFFFFFF)),
        SSet("i", ELit(0)),
        SWhile(EOp("ltu", i, ln), body),
        SSet("r", EOp("xor", crc, ELit(0xFFFFFFFF))),
    )
    return ast.Function("crc32_hw", ("s", "len"), ("r",), code)


register_program(
    BenchProgram(
        name="crc32",
        description="Error-detecting code (cyclic redundancy check)",
        build_model=build_model,
        build_spec=build_spec,
        reference=reference,
        build_handwritten=build_handwritten,
        calling_style="hash",
        features=("Arithmetic", "Inline", "Arrays", "Loops"),
        end_to_end=True,
    )
)
