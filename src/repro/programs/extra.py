"""The auxiliary program suite.

§4.2: "Not discussed in the following is an additional suite of dozens of
programs testing features around arithmetic, monadic extensions, and
stack allocation."  This module is that suite's counterpart: small
programs, each exercising one feature combination, all derived and
validated by ``tests/programs/test_extra_suite.py``.

Each entry returns ``(model, spec, reference)`` where ``reference`` is a
plain-Python oracle taking the model's parameters as keyword arguments.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.core.spec import (
    FnSpec,
    Model,
    array_out,
    error_out,
    len_arg,
    ptr_arg,
    scalar_arg,
    scalar_out,
)
from repro.source import cells, listarray, monads
from repro.source import terms as t
from repro.source.annotations import copy, stack
from repro.source.builder import (
    SymValue,
    ite,
    let_n,
    nat_iter,
    ranged_for,
    sym,
    word_lit,
)
from repro.source.types import ARRAY_BYTE, ARRAY_WORD, NAT, WORD, array_of, BYTE, cell_of

EXTRA: Dict[str, Callable[[], Tuple[Model, FnSpec, Callable]]] = {}


def register(name: str):
    def wrap(builder):
        EXTRA[name] = builder
        return builder

    return wrap


def byte_array_spec(fname, outputs, extra_args=(), facts=()):
    return FnSpec(
        fname,
        [ptr_arg("s", ARRAY_BYTE), len_arg("len", "s"), *extra_args],
        outputs,
        facts=list(facts),
    )


# -- Arithmetic ---------------------------------------------------------------------


@register("abs_diff")
def _abs_diff():
    x, y = sym("x", WORD), sym("y", WORD)
    body = let_n("r", ite(x.ltu(y), y - x, x - y), sym("r", WORD))
    model = Model("abs_diff", [("x", WORD), ("y", WORD)], body.term, WORD)
    spec = FnSpec("abs_diff", [scalar_arg("x"), scalar_arg("y")], [scalar_out()])
    return model, spec, lambda x, y: (y - x if x < y else x - y) % 2**64


@register("parity")
def _parity():
    x = sym("x", WORD)
    folded = nat_iter(6, lambda a: a ^ (a >> 1), x, name="a")
    # popcount parity via xor-folding: p = x ^ x>>32 ^ ... & 1
    step = let_n("p", x ^ (x >> 32), sym("p", WORD))
    p = sym("p", WORD)
    body = let_n(
        "p",
        x ^ (x >> 32),
        let_n(
            "p",
            p ^ (p >> 16),
            let_n(
                "p",
                p ^ (p >> 8),
                let_n(
                    "p",
                    p ^ (p >> 4),
                    let_n(
                        "p",
                        p ^ (p >> 2),
                        let_n("p", p ^ (p >> 1), let_n("r", p & 1, sym("r", WORD))),
                    ),
                ),
            ),
        ),
    )
    model = Model("parity", [("x", WORD)], body.term, WORD)
    spec = FnSpec("parity", [scalar_arg("x")], [scalar_out()])
    return model, spec, lambda x: bin(x).count("1") & 1


@register("clamp255")
def _clamp255():
    x = sym("x", WORD)
    body = let_n("r", ite(x.ltu(255), x, word_lit(255)), sym("r", WORD))
    model = Model("clamp255", [("x", WORD)], body.term, WORD)
    spec = FnSpec("clamp255", [scalar_arg("x")], [scalar_out()])
    return model, spec, lambda x: min(x, 255)


# -- Arrays and loops --------------------------------------------------------------------


@register("memset42")
def _memset42():
    s = sym("s", ARRAY_BYTE)
    body = let_n("s", listarray.map_(lambda b: SymValue(t.Lit(0x42, BYTE), BYTE), s), s)
    model = Model("memset42", [("s", ARRAY_BYTE)], body.term, ARRAY_BYTE)
    spec = byte_array_spec("memset42", [array_out("s")])
    return model, spec, lambda s: [0x42] * len(s)


@register("xor_cipher")
def _xor_cipher():
    s, key = sym("s", ARRAY_BYTE), sym("key", WORD)
    body = let_n(
        "s", listarray.map_(lambda b: b ^ key.to_byte(), s, elem_name="b"), s
    )
    model = Model("xor_cipher", [("s", ARRAY_BYTE), ("key", WORD)], body.term, ARRAY_BYTE)
    spec = byte_array_spec(
        "xor_cipher", [array_out("s")], extra_args=[scalar_arg("key")]
    )
    return model, spec, lambda s, key: [b ^ (key & 0xFF) for b in s]


@register("djb2")
def _djb2():
    s = sym("s", ARRAY_BYTE)
    fold = listarray.fold(
        lambda h, b: h * 33 + b.to_word(), word_lit(5381), s, names=("h", "b")
    )
    body = let_n("h", fold, sym("h", WORD))
    model = Model("djb2", [("s", ARRAY_BYTE)], body.term, WORD)
    spec = byte_array_spec("djb2", [scalar_out()])

    def reference(s):
        h = 5381
        for b in s:
            h = (h * 33 + b) % 2**64
        return h

    return model, spec, reference


@register("count_spaces")
def _count_spaces():
    s = sym("s", ARRAY_BYTE)
    fold = listarray.fold(
        lambda n, b: ite(b.eq(0x20), n + 1, n), word_lit(0), s, names=("n", "b")
    )
    body = let_n("n", fold, sym("n", WORD))
    model = Model("count_spaces", [("s", ARRAY_BYTE)], body.term, WORD)
    spec = byte_array_spec("count_spaces", [scalar_out()])
    return model, spec, lambda s: sum(1 for b in s if b == 0x20)


@register("sum_words")
def _sum_words():
    a = sym("a", ARRAY_WORD)
    fold = listarray.fold(lambda acc, w: acc + w, word_lit(0), a, names=("acc", "w"))
    body = let_n("acc", fold, sym("acc", WORD))
    model = Model("sum_words", [("a", ARRAY_WORD)], body.term, WORD)
    spec = FnSpec(
        "sum_words", [ptr_arg("a", ARRAY_WORD), len_arg("len", "a")], [scalar_out()]
    )
    return model, spec, lambda a: sum(a) % 2**64


@register("find42")
def _find42():
    s = sym("s", ARRAY_BYTE)
    fold = listarray.fold_break(
        lambda found, b: b.eq(0x2A).to_word(),
        word_lit(0),
        s,
        until=lambda found: found.eq(1),
        names=("found", "b"),
    )
    body = let_n("found", fold, sym("found", WORD))
    model = Model("find42", [("s", ARRAY_BYTE)], body.term, WORD)
    spec = byte_array_spec("find42", [scalar_out()])
    return model, spec, lambda s: int(0x2A in s)


@register("reverse_sum")
def _reverse_sum():
    """Strided indexed access: sum s[len-1-i] over i (exercises nat.sub
    side conditions discharged from loop facts)."""
    s = sym("s", ARRAY_BYTE)
    length = listarray.length(s)
    body = let_n(
        "acc",
        ranged_for(
            0,
            length,
            lambda i, acc: acc + listarray.get(s, length - 1 - i).to_word(),
            word_lit(0),
            names=("i", "acc"),
        ),
        sym("acc", WORD),
    )
    model = Model("reverse_sum", [("s", ARRAY_BYTE)], body.term, WORD)
    spec = byte_array_spec("reverse_sum", [scalar_out()])
    return model, spec, lambda s: sum(s) % 2**64


@register("memcpy")
def _memcpy():
    s, d = sym("s", ARRAY_BYTE), sym("d", ARRAY_BYTE)
    body = let_n("d", copy(s), d)
    model = Model("memcpy", [("s", ARRAY_BYTE), ("d", ARRAY_BYTE)], body.term, ARRAY_BYTE)
    spec = FnSpec(
        "memcpy",
        [ptr_arg("s", ARRAY_BYTE), ptr_arg("d", ARRAY_BYTE), len_arg("len", "s")],
        [array_out("d")],
        facts=[t.Prim("nat.eqb", (t.ArrayLen(t.Var("d")), t.ArrayLen(t.Var("s"))))],
    )
    return model, spec, lambda s, d: list(s)


# -- Stack allocation --------------------------------------------------------------------


@register("stack_swap_table")
def _stack_swap_table():
    """A stack-allocated 2-entry lookup used to branchlessly swap 0/1."""
    table = t.Lit((1, 0), array_of(BYTE))
    x = sym("x", WORD)
    body = let_n(
        "tmp",
        stack(SymValue(table, array_of(BYTE))),
        let_n(
            "r",
            listarray.get(sym("tmp", array_of(BYTE)), (x & 1).to_nat()).to_word(),
            sym("r", WORD),
        ),
    )
    model = Model("stack_swap", [("x", WORD)], body.term, WORD)
    spec = FnSpec("stack_swap", [scalar_arg("x")], [scalar_out()])
    return model, spec, lambda x: 1 - (x & 1)


# -- Monadic extensions ---------------------------------------------------------------------


@register("echo_sum")
def _echo_sum():
    program = monads.bind(
        "a",
        monads.io_read(),
        lambda a: monads.bind(
            "b",
            monads.io_read(),
            lambda b: monads.bind("_", monads.io_write(a + b), monads.ret(a + b)),
        ),
    )
    model = Model("echo_sum", [], program.term, WORD)
    spec = FnSpec("echo_sum", [], [scalar_out()])
    return model, spec, None  # validated via differential IO comparison


@register("checked_index")
def _checked_index():
    s, j = sym("s", ARRAY_BYTE), sym("j", NAT)
    program = monads.bind(
        "_",
        monads.err_guard(j.ltu(listarray.length(s))),
        monads.ret(listarray.get(s, j).to_word()),
    )
    model = Model("checked_index", [("s", ARRAY_BYTE), ("j", NAT)], program.term, WORD)
    spec = byte_array_spec(
        "checked_index",
        [error_out(), scalar_out()],
        extra_args=[scalar_arg("j", ty=NAT)],
    )

    def reference(s, j):
        return (1, s[j]) if j < len(s) else (0, 0)

    return model, spec, reference


@register("counter_bump")
def _counter_bump():
    c, x = cells.cell_var("c", WORD), sym("x", WORD)
    body = let_n("c", cells.put(c, cells.get(c) + x), c)
    model = Model("counter_bump", [("c", cell_of(WORD)), ("x", WORD)], body.term, cell_of(WORD))
    spec = FnSpec(
        "counter_bump",
        [ptr_arg("c", cell_of(WORD)), scalar_arg("x")],
        [array_out("c")],
    )
    return model, spec, lambda c, x: (c.value + x) % 2**64
