"""The program registry shared by tests, validation, and benchmarks.

A :class:`BenchProgram` bundles everything the harnesses need about one
suite entry: how to build its model and spec, how to generate inputs, how
to call the compiled/handwritten Bedrock2 functions, and which compiler
features it exercises (the checkmark columns of Table 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bedrock2 import ast
from repro.core.spec import CompiledFunction, FnSpec, Model


@dataclass
class BenchProgram:
    """One row of Table 2."""

    name: str
    description: str
    build_model: Callable[[], Model]
    build_spec: Callable[[], FnSpec]
    reference: Callable  # plain-Python spec-level implementation
    build_handwritten: Callable[[], ast.Function]  # the "handwritten C" baseline
    # How the function consumes/produces data, for the runner harnesses:
    #   "inplace"  -- (ptr, len) in, transformed buffer out
    #   "hash"     -- (ptr, len) in, scalar out
    #   "scalar"   -- scalar args in, scalar out
    calling_style: str = "hash"
    # Table 2 feature checkmarks.
    features: Tuple[str, ...] = ()
    end_to_end: bool = False
    # Input generator for differential testing / benchmarking.
    gen_input: Callable[[random.Random, int], bytes] = lambda rng, n: bytes(
        rng.randrange(256) for _ in range(n)
    )
    # Extra scalar arguments (for "scalar" style programs).
    scalar_args: Tuple[str, ...] = ()
    # Maximum input length the model's side conditions assume (documented
    # incidental facts, e.g. ip's carry-fold bound).
    max_len: Optional[int] = None

    _compiled: Optional[CompiledFunction] = field(default=None, repr=False)
    _optimized: Dict[int, CompiledFunction] = field(default_factory=dict, repr=False)

    def compile(self, fresh: bool = False, opt_level: int = 0) -> CompiledFunction:
        """Derive the Bedrock2 implementation (cached).

        With ``opt_level > 0`` the derived code is additionally run
        through the translation-validated optimizer (``repro.opt``),
        using this program's input generator for the per-pass
        differential checks; the result is cached per level.
        """
        from repro.obs.trace import current_tracer

        if self._compiled is None or fresh or current_tracer().enabled:
            # A flight recorder is watching: serve nothing from the cache,
            # or the trace would silently miss the derivation it exists
            # to record.
            from repro.stdlib import default_engine

            engine = default_engine()
            self._compiled = engine.compile_function(
                self.build_model(), self.build_spec()
            )
            self._optimized.clear()
        if opt_level <= 0:
            return self._compiled
        if opt_level not in self._optimized:
            self._optimized[opt_level] = self._compiled.optimize(
                opt_level, input_gen=self.validation_input_gen()
            )
        return self._optimized[opt_level]

    def validation_input_gen(self):
        """The input generator differential testing should use, or None.

        ``None`` means the generic ``make_inputs`` (scalar programs);
        pointer-taking programs draw byte arrays from ``gen_input``, and
        window-style programs also need an in-range offset.  Shared by
        ``python -m repro validate``, the optimizer's per-pass checks,
        and the fault-injection tests.
        """
        if self.calling_style == "scalar":
            return None
        if self.calling_style == "window":

            def gen(rng: random.Random):
                data = self.gen_input(rng, 24)
                return {"s": list(data), "off": rng.randrange(0, len(data) - 3)}

            return gen

        return lambda rng: {"s": list(self.gen_input(rng, rng.randrange(48)))}


PROGRAMS: Dict[str, BenchProgram] = {}


def register_program(program: BenchProgram) -> BenchProgram:
    if program.name in PROGRAMS:
        raise ValueError(f"duplicate program {program.name!r}")
    PROGRAMS[program.name] = program
    return program


def get_program(name: str) -> BenchProgram:
    _load_all()
    return PROGRAMS[name]


_LOADED = False


def _load_all() -> None:
    global _LOADED
    if _LOADED:
        return
    from repro.programs import (  # noqa: F401
        crc32,
        fasta,
        fnv1a,
        ip,
        m3s,
        sbox,
        upstr,
        utf8,
        xorsum,
    )

    _LOADED = True


def all_programs() -> List[BenchProgram]:
    _load_all()
    return [PROGRAMS[name] for name in sorted(PROGRAMS)]
