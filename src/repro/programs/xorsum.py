"""xorsum: byte-wise XOR checksum (longitudinal redundancy check).

Model: a fold over the input bytes, ``acc := acc ^ (b & 0xFF)`` starting
from zero.  The defensive ``& 0xFF`` is redundant -- a loaded byte is
already in ``[0, 255]`` -- which makes this the registry's fixture for
the range-guided mask elimination in
:class:`repro.opt.passes.RangeGuardElimination`: at ``-O1`` the mask is
removed, at ``-O0`` it survives.
"""

from __future__ import annotations

from repro.bedrock2 import ast
from repro.core.spec import FnSpec, Model, len_arg, ptr_arg, scalar_out
from repro.programs.registry import BenchProgram, register_program
from repro.source import listarray
from repro.source.builder import let_n, sym, word_lit
from repro.source.types import ARRAY_BYTE, WORD


def build_model() -> Model:
    s = sym("s", ARRAY_BYTE)
    fold = listarray.fold(
        lambda acc, b: acc ^ (b.to_word() & word_lit(0xFF)),
        word_lit(0),
        s,
        names=("acc", "b"),
    )
    program = let_n("acc", fold, sym("acc", WORD))
    return Model("xorsum", [("s", ARRAY_BYTE)], program.term, WORD)


def build_spec() -> FnSpec:
    return FnSpec(
        "xorsum",
        [ptr_arg("s", ARRAY_BYTE), len_arg("len", "s")],
        [scalar_out()],
    )


def reference(data: bytes) -> int:
    acc = 0
    for b in data:
        acc ^= b
    return acc


def build_handwritten() -> ast.Function:
    """uint64_t acc = 0; for (...) acc ^= s[i]; return acc;"""
    from repro.bedrock2.ast import ELit, EOp, SSet, SWhile, load1, seq_of, var

    i, s, ln, acc = var("i"), var("s"), var("len"), var("acc")
    body = seq_of(
        SSet("acc", EOp("xor", acc, load1(EOp("add", s, i)))),
        SSet("i", EOp("add", i, ELit(1))),
    )
    code = seq_of(
        SSet("acc", ELit(0)),
        SSet("i", ELit(0)),
        SWhile(EOp("ltu", i, ln), body),
    )
    return ast.Function("xorsum_hw", ("s", "len"), ("acc",), code)


register_program(
    BenchProgram(
        name="xorsum",
        description="Byte-wise XOR checksum (LRC)",
        build_model=build_model,
        build_spec=build_spec,
        reference=reference,
        build_handwritten=build_handwritten,
        calling_style="hash",
        features=("Arithmetic", "Loops"),
        end_to_end=True,
    )
)
