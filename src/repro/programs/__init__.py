"""The benchmark suite (Table 2 of the paper).

Seven programs "from a variety of domains, including string manipulation,
hashing, and packet-manipulating (network) programs":

========  =============================================================
fnv1a     Fowler-Noll-Vo (noncryptographic) hash
utf8      Branchless UTF-8 decoding
upstr     In-place string uppercase (Box 1)
m3s       Scramble part of the Murmur3 algorithm
ip        IP (one's-complement) checksum (RFC 1071)
fasta     In-place DNA sequence complement
crc32     Error-detecting code (cyclic redundancy check)
========  =============================================================

Each module provides the annotated functional model, its ``FnSpec`` ABI,
a plain-Python reference implementation (the high-level specification),
and a *handwritten* Bedrock2 implementation standing in for the paper's
handwritten C baselines.  :data:`PROGRAMS` is the registry the test,
validation and benchmark harnesses iterate over.
"""

from repro.programs.registry import (
    PROGRAMS,
    BenchProgram,
    all_programs,
    get_program,
)

__all__ = ["PROGRAMS", "BenchProgram", "all_programs", "get_program"]
