"""fnv1a: the Fowler-Noll-Vo (noncryptographic) 64-bit hash.

Model: a fold over the input bytes, ``h := (h ^ b) * prime`` starting
from the offset basis.  Compiles to the canonical single-pass C loop.
"""

from __future__ import annotations

from repro.bedrock2 import ast
from repro.core.spec import FnSpec, Model, len_arg, ptr_arg, scalar_out
from repro.programs.registry import BenchProgram, register_program
from repro.source import listarray
from repro.source.builder import let_n, sym, word_lit
from repro.source.types import ARRAY_BYTE, WORD

FNV_PRIME = 0x100000001B3
FNV_OFFSET_BASIS = 0xCBF29CE484222325
MASK64 = (1 << 64) - 1


def build_model() -> Model:
    s = sym("s", ARRAY_BYTE)
    fold = listarray.fold(
        lambda h, b: (h ^ b.to_word()) * FNV_PRIME,
        word_lit(FNV_OFFSET_BASIS),
        s,
        names=("h", "b"),
    )
    program = let_n("h", fold, sym("h", WORD))
    return Model("fnv1a", [("s", ARRAY_BYTE)], program.term, WORD)


def build_spec() -> FnSpec:
    return FnSpec(
        "fnv1a",
        [ptr_arg("s", ARRAY_BYTE), len_arg("len", "s")],
        [scalar_out()],
    )


def reference(data: bytes) -> int:
    h = FNV_OFFSET_BASIS
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def build_handwritten() -> ast.Function:
    """uint64_t h = BASIS; for (...) h = (h ^ s[i]) * PRIME; return h;"""
    from repro.bedrock2.ast import ELit, EOp, SSet, SWhile, load1, seq_of, var

    i, s, ln, h = var("i"), var("s"), var("len"), var("h")
    body = seq_of(
        SSet(
            "h",
            EOp("mul", EOp("xor", h, load1(EOp("add", s, i))), ELit(FNV_PRIME)),
        ),
        SSet("i", EOp("add", i, ELit(1))),
    )
    code = seq_of(
        SSet("h", ELit(FNV_OFFSET_BASIS)),
        SSet("i", ELit(0)),
        SWhile(EOp("ltu", i, ln), body),
    )
    return ast.Function("fnv1a_hw", ("s", "len"), ("h",), code)


register_program(
    BenchProgram(
        name="fnv1a",
        description="Fowler-Noll-Vo (noncryptographic) hash",
        build_model=build_model,
        build_spec=build_spec,
        reference=reference,
        build_handwritten=build_handwritten,
        calling_style="hash",
        features=("Arithmetic", "Loops"),
        end_to_end=True,
    )
)
