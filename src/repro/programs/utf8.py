"""utf8: branchless UTF-8 decoding.

A table-driven, branch-free decoder (the shape of Bjoern Hoehrmann's /
Chris Wellons' branchless decoders), reading one codepoint from a byte
buffer at a caller-supplied offset: the sequence length is looked up from
the lead byte's top five bits, and the codepoint is assembled
unconditionally from four bytes then shifted right by a length-indexed
amount.  Table 2 marks utf8 with Arithmetic + Inline + Arrays and *no*
loops or mutation -- it is a straight-line function; callers (like the
Figure 2 driver) slide the offset across the buffer.

The caller contract ``off + 3 < length s`` is the program's incidental
fact (§3.4.2): it is what makes the four unconditional reads safe.
"""

from __future__ import annotations

from repro.bedrock2 import ast
from repro.core.spec import FnSpec, Model, len_arg, ptr_arg, scalar_arg, scalar_out
from repro.programs.registry import BenchProgram, register_program
from repro.source import listarray
from repro.source import terms as t
from repro.source.builder import let_n, sym
from repro.source.inline_table import byte_table
from repro.source.types import ARRAY_BYTE, NAT, WORD

# Sequence length from the lead byte's top 5 bits (0 = invalid lead).
LENGTHS = (
    [1] * 16  # 0x00-0x7F: ASCII
    + [0] * 8  # 0x80-0xBF: continuation bytes cannot lead
    + [2] * 4  # 0xC0-0xDF
    + [3] * 2  # 0xE0-0xEF
    + [4]  # 0xF0-0xF7
    + [0]  # 0xF8-0xFF: invalid
)
assert len(LENGTHS) == 32

# Lead-byte payload mask, indexed by sequence length.
MASKS = [0x00, 0x7F, 0x1F, 0x0F, 0x07]
# Right-shift fixing up the unconditionally assembled 21-bit scaffold.
SHIFTC = [0, 18, 12, 6, 0]


def build_model() -> Model:
    lengths = byte_table(LENGTHS)
    masks = byte_table(MASKS)
    shiftc = byte_table(SHIFTC)
    s = sym("s", ARRAY_BYTE)
    off = sym("off", NAT)

    s0 = sym("s0", WORD)
    s1 = sym("s1", WORD)
    s2 = sym("s2", WORD)
    s3 = sym("s3", WORD)
    n = sym("n", WORD)
    scaffold = (
        ((s0 & masks.get(n.to_nat()).to_word()) << 18)
        | ((s1 & 0x3F) << 12)
        | ((s2 & 0x3F) << 6)
        | (s3 & 0x3F)
    )
    program = let_n(
        "s0",
        listarray.get(s, off).to_word(),
        let_n(
            "s1",
            listarray.get(s, off + 1).to_word(),
            let_n(
                "s2",
                listarray.get(s, off + 2).to_word(),
                let_n(
                    "s3",
                    listarray.get(s, off + 3).to_word(),
                    let_n(
                        "n",
                        lengths.get((s0 >> 3).to_nat()).to_word(),
                        let_n(
                            "cp",
                            scaffold,
                            let_n(
                                "cp",
                                sym("cp", WORD) >> shiftc.get(n.to_nat()).to_word(),
                                sym("cp", WORD),
                            ),
                        ),
                    ),
                ),
            ),
        ),
    )
    return Model(
        "utf8_decode", [("s", ARRAY_BYTE), ("off", NAT)], program.term, WORD
    )


def build_spec() -> FnSpec:
    # The caller contract: the window fits (off + 3 < length s).
    window_fits = t.Prim(
        "nat.ltb",
        (t.Prim("nat.add", (t.Var("off"), t.Lit(3, NAT))), t.ArrayLen(t.Var("s"))),
    )
    return FnSpec(
        "utf8_decode",
        [ptr_arg("s", ARRAY_BYTE), len_arg("len", "s"), scalar_arg("off", ty=NAT)],
        [scalar_out()],
        facts=[window_fits],
    )


def reference(data: bytes, off: int = 0) -> int:
    """Decode one codepoint from four bytes at ``off``."""
    s0, s1, s2, s3 = data[off], data[off + 1], data[off + 2], data[off + 3]
    n = LENGTHS[s0 >> 3]
    cp = (
        ((s0 & MASKS[n]) << 18)
        | ((s1 & 0x3F) << 12)
        | ((s2 & 0x3F) << 6)
        | (s3 & 0x3F)
    )
    return cp >> SHIFTC[n]


def reference_bytes(data: bytes) -> int:
    """Benchmark driver: decode at every 4-byte window, xor the results."""
    acc = 0
    for offset in range(0, len(data) - 3, 4):
        acc ^= reference(data, offset)
    return acc


def build_handwritten() -> ast.Function:
    from repro.bedrock2.ast import EInlineTable, ELit, EOp, SSet, load1, seq_of, var

    from repro.stdlib.inline_tables import pack_table

    lengths = pack_table(LENGTHS, 1)
    masks = pack_table(MASKS, 1)
    shiftc = pack_table(SHIFTC, 1)
    s, off = var("s"), var("off")
    base = EOp("add", s, off)
    s0 = var("s0")
    code = seq_of(
        SSet("s0", load1(base)),
        SSet("s1", load1(EOp("add", base, ELit(1)))),
        SSet("s2", load1(EOp("add", base, ELit(2)))),
        SSet("s3", load1(EOp("add", base, ELit(3)))),
        SSet("n", EInlineTable(1, lengths, EOp("sru", s0, ELit(3)))),
        SSet(
            "cp",
            EOp(
                "or",
                EOp(
                    "or",
                    EOp(
                        "or",
                        EOp(
                            "slu",
                            EOp("and", s0, EInlineTable(1, masks, var("n"))),
                            ELit(18),
                        ),
                        EOp("slu", EOp("and", var("s1"), ELit(0x3F)), ELit(12)),
                    ),
                    EOp("slu", EOp("and", var("s2"), ELit(0x3F)), ELit(6)),
                ),
                EOp("and", var("s3"), ELit(0x3F)),
            ),
        ),
        SSet("cp", EOp("sru", var("cp"), EInlineTable(1, shiftc, var("n")))),
    )
    return ast.Function("utf8_hw", ("s", "len", "off"), ("cp",), code)


def gen_utf8(rng, n: int) -> bytes:
    """Valid-ish UTF-8: a mix of codepoint widths, padded to >= 4 bytes."""
    out = bytearray()
    while len(out) < max(n, 4):
        choice = rng.randrange(4)
        if choice == 0:
            out.append(rng.randrange(0x20, 0x7F))
        elif choice == 1:
            out.extend(chr(rng.randrange(0x80, 0x800)).encode("utf-8"))
        elif choice == 2:
            out.extend(chr(rng.randrange(0x800, 0xD800)).encode("utf-8"))
        else:
            out.extend(chr(rng.randrange(0x10000, 0x10FFFF)).encode("utf-8"))
    return bytes(out[: max(n, 4)])


register_program(
    BenchProgram(
        name="utf8",
        description="Branchless UTF-8 decoding",
        build_model=build_model,
        build_spec=build_spec,
        reference=reference,
        build_handwritten=build_handwritten,
        calling_style="window",
        features=("Arithmetic", "Inline", "Arrays"),
        end_to_end=True,
        gen_input=gen_utf8,
        scalar_args=("off",),
    )
)
