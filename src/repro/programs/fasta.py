"""fasta: in-place DNA sequence complement.

The complement map (A<->T, C<->G, case-insensitive, everything else --
in particular N -- fixed) is a 256-entry translation table, realized as a
Bedrock2 inline table inside an in-place ``ListArray.map`` loop.
"""

from __future__ import annotations

from repro.bedrock2 import ast
from repro.core.spec import FnSpec, Model, array_out, len_arg, ptr_arg
from repro.programs.registry import BenchProgram, register_program
from repro.source import listarray
from repro.source.builder import let_n, sym
from repro.source.inline_table import byte_table
from repro.source.types import ARRAY_BYTE

_PAIRS = {
    "A": "T", "T": "A", "C": "G", "G": "C",
    "a": "t", "t": "a", "c": "g", "g": "c",
    "U": "A", "u": "a",
    "R": "Y", "Y": "R", "r": "y", "y": "r",
    "K": "M", "M": "K", "k": "m", "m": "k",
}


def _make_table():
    table = list(range(256))
    for key, value in _PAIRS.items():
        table[ord(key)] = ord(value)
    return table


COMPLEMENT = _make_table()


def build_model() -> Model:
    table = byte_table(COMPLEMENT)
    s = sym("s", ARRAY_BYTE)
    program = let_n(
        "s",
        listarray.map_(lambda b: table.get(b.to_nat()), s, elem_name="b"),
        s,
    )
    return Model("fasta", [("s", ARRAY_BYTE)], program.term, ARRAY_BYTE)


def build_spec() -> FnSpec:
    return FnSpec(
        "fasta",
        [ptr_arg("s", ARRAY_BYTE), len_arg("len", "s")],
        [array_out("s")],
    )


def reference(data: bytes) -> bytes:
    return bytes(COMPLEMENT[b] for b in data)


def build_handwritten() -> ast.Function:
    """for (...) s[i] = comp[s[i]]; with comp a const table."""
    from repro.bedrock2.ast import EInlineTable, ELit, EOp, SSet, SStore, SWhile, load1, seq_of, var

    from repro.stdlib.inline_tables import pack_table

    packed = pack_table(COMPLEMENT, 1)
    i, s, ln = var("i"), var("s"), var("len")
    body = seq_of(
        SStore(1, EOp("add", s, i), EInlineTable(1, packed, load1(EOp("add", s, i)))),
        SSet("i", EOp("add", i, ELit(1))),
    )
    code = seq_of(SSet("i", ELit(0)), SWhile(EOp("ltu", i, ln), body))
    return ast.Function("fasta_hw", ("s", "len"), (), code)


def gen_dna(rng, n: int) -> bytes:
    return bytes(rng.choice(b"ACGTacgtN") for _ in range(n))


register_program(
    BenchProgram(
        name="fasta",
        description="In-place DNA sequence complement",
        build_model=build_model,
        build_spec=build_spec,
        reference=reference,
        build_handwritten=build_handwritten,
        calling_style="inplace",
        features=("Arithmetic", "Inline", "Arrays", "Loops", "Mutation"),
        end_to_end=True,
        gen_input=gen_dna,
    )
)
