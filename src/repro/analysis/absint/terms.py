"""Abstract interpretation on the source side.

Two analyses share the :mod:`repro.analysis.absint.domain` lattice:

1. :func:`fact_ranges` -- the solver-facing half.  The symbolic state's
   facts (``nat.ltb``/``nat.leb``/equalities, seeded by
   ``FnSpec``/``initial_state`` with per-argument word bounds and
   per-table length facts) are linearized with the Fourier--Motzkin
   front end from :mod:`repro.core.solver` and propagated to a bounded
   interval fixpoint over the linear atoms.  ``range_solver`` discharges
   a bounds obligation when every linearized inequality of the
   obligation either is subsumed by a fact inequality or evaluates
   nonpositive at the interval bounds -- both checks are cheap and run
   *before* a full Fourier--Motzkin elimination would.

2. :func:`analyze_model` -- per-binding ranges of a functional model,
   by a structural walk with widened loop accumulators.  This is the
   whole-program view the soundness property suite checks against the
   reference evaluator, and what seeds documentation examples.

Both halves are untrusted, like every solver: a wrong range can at most
make proof search accept an obligation the trusted validation layers
then reject.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.absint import domain
from repro.analysis.absint.domain import Range
from repro.core import solver as core_solver
from repro.source import terms as t
from repro.source.types import BOOL, BYTE, NAT, WORD, SourceType, TypeKind

__all__ = [
    "LinearForm",
    "ModelRanges",
    "analyze_model",
    "discharge_bounds",
    "fact_ranges",
    "state_ranges",
]

# Interval-propagation rounds over the fact system.  Each round only
# tightens bounds, so a small cap keeps the fixpoint deterministic and
# cheap; anything it misses still falls through to Fourier-Motzkin.
FACT_FIXPOINT_ROUNDS = 8

LinearForm = Tuple[Dict[t.Term, int], int]


# -- Fact-derived ranges (the range_solver's map) ---------------------------


def fact_ranges(
    facts, width: int, state=None
) -> Tuple[Dict[t.Term, Range], List[LinearForm]]:
    """Interval map over the facts' linear atoms, plus the fact forms.

    Every atom is nat-valued (the linearizer works over naturals), so
    intervals start at ``[0, +inf)`` and only shrink.
    """
    forms: List[LinearForm] = []
    for fact in facts:
        forms.extend(core_solver._fact_to_inequalities(core_solver.canonicalize(fact)))
    los: Dict[t.Term, int] = {}
    his: Dict[t.Term, Optional[int]] = {}
    for coeffs, _k in forms:
        for atom in coeffs:
            if atom not in los:
                los[atom] = 0
                his[atom] = None
    changed, rounds = True, 0
    while changed and rounds < FACT_FIXPOINT_ROUNDS:
        changed = False
        rounds += 1
        for coeffs, k in forms:
            for atom, coeff in coeffs.items():
                if coeff > 0:
                    # coeff*atom <= -k - sum(other terms), maximized.
                    bound, ok = -k, True
                    for other, c in coeffs.items():
                        if other is atom:
                            continue
                        if c > 0:
                            bound -= c * los[other]
                        elif his[other] is None:
                            ok = False
                            break
                        else:
                            bound += (-c) * his[other]
                    if ok:
                        new_hi = bound // coeff
                        if his[atom] is None or new_hi < his[atom]:
                            his[atom] = new_hi
                            changed = True
                else:
                    # |coeff|*atom >= k + sum(other terms), minimized.
                    bound, ok = k, True
                    for other, c in coeffs.items():
                        if other is atom:
                            continue
                        if c > 0:
                            bound += c * los[other]
                        elif his[other] is None:
                            ok = False
                            break
                        else:
                            bound += c * his[other]
                    if ok:
                        new_lo = -((-bound) // (-coeff))  # ceil division
                        if new_lo > los[atom]:
                            los[atom] = new_lo
                            changed = True
    intervals = {
        atom: Range(los[atom], his[atom], 1, 0) for atom in los
    }
    from repro.obs.trace import current_tracer

    current_tracer().inc("absint.fixpoint.iterations", rounds)
    return intervals, forms


def state_ranges(state, width: int) -> Tuple[Dict[t.Term, Range], List[LinearForm]]:
    """The fact-range map for one symbolic state, cached per version.

    The cache is the layer ``--no-absint`` turns off: with it disabled
    every obligation recomputes the map from the same facts, so verdicts
    (and therefore compiled outputs) are bit-identical either way.
    """
    from repro.analysis import absint as _pkg
    from repro.obs.trace import current_tracer

    caching = _pkg.absint_enabled()
    if caching:
        cached = getattr(state, "_absint_ranges", None)
        if cached is not None and cached[0] == state.version:
            current_tracer().inc("absint.map.hit")
            return cached[1]
    current_tracer().inc("absint.map.miss")
    result = fact_ranges(state.facts, width, state)
    if caching:
        state._absint_ranges = (state.version, result)
    return result


def entails_form(
    coeffs: Dict[t.Term, int],
    const: int,
    intervals: Dict[t.Term, Range],
    forms: List[LinearForm],
    width: int,
    state=None,
) -> bool:
    """Does the range map entail ``sum(coeffs) + const <= 0``?"""
    # Route 1: a fact inequality with the same shape and a constant at
    # least as strong subsumes the obligation directly.
    for fact_coeffs, fact_const in forms:
        if fact_const >= const and fact_coeffs == coeffs:
            return True
    # Route 2: evaluate the form at the interval bounds.
    total = const
    for atom, coeff in coeffs.items():
        r = intervals.get(atom)
        if coeff > 0:
            hi = r.hi if r is not None else None
            structural = core_solver.upper_bound(atom, width, state)
            hi = structural if hi is None else min(hi, structural)
            total += coeff * hi
        else:
            total += coeff * (r.lo if r is not None else 0)
    return total <= 0


def discharge_bounds(obligation: t.Term, state, width: int) -> bool:
    """The ``range_solver`` core: prove a bounds obligation from ranges."""
    ob_forms = core_solver._fact_to_inequalities(core_solver.canonicalize(obligation))
    if not ob_forms:
        return False
    intervals, forms = state_ranges(state, width)
    return all(
        entails_form(coeffs, const, intervals, forms, width, state)
        for coeffs, const in ob_forms
    )


# -- Model-level ranges ------------------------------------------------------

# Loop accumulators join this many times before widening.
WIDEN_AFTER = 3
LOOP_ITER_CAP = 50


@dataclass
class ModelRanges:
    """Per-binding value ranges of one functional model.

    By convention a binder of array (or cell) type records the range of
    its *elements* -- the property suite checks every element of an
    array-valued binding against that range, and every scalar binding's
    value directly.
    """

    bindings: Dict[str, Range] = field(default_factory=dict)
    result: Optional[Range] = None
    widenings: int = 0


def _type_range(ty: Optional[SourceType], width: int) -> Optional[Range]:
    if ty is None:
        return None
    if ty.kind in (TypeKind.ARRAY, TypeKind.CELL):
        return _type_range(ty.elem, width)
    if ty.kind is TypeKind.BYTE:
        return domain.top(8)
    if ty.kind is TypeKind.BOOL:
        return domain.boolean()
    if ty.kind is TypeKind.WORD:
        return domain.top(width)
    if ty.kind is TypeKind.NAT:
        return domain.make(0, (1 << width) - 1)  # initial_state's word-bound fact
    return None


class _ModelWalker:
    """Structural range evaluation of a Term.

    ``None`` means "no numeric range known".  Array-typed terms evaluate
    to the range of their elements, which makes map/put/firstn chains
    compositional without a type environment.
    """

    def __init__(self, width: int):
        self.width = width
        self.bindings: Dict[str, Range] = {}
        self.widenings = 0

    def record(self, name: str, r: Optional[Range]) -> None:
        if r is None:
            return
        if name in self.bindings:
            self.bindings[name] = domain.join(self.bindings[name], r)
        else:
            self.bindings[name] = r

    def _loop_acc(self, init: Optional[Range], step) -> Optional[Range]:
        """Widened fixpoint of ``acc = join(acc, step(acc))``."""
        acc = init if init is not None else domain.make(0, None)
        for iteration in range(LOOP_ITER_CAP):
            nxt = step(acc)
            if nxt is None:
                nxt = domain.make(0, None)
            joined = domain.join(acc, nxt)
            if joined == acc:
                return acc
            if iteration >= WIDEN_AFTER:
                joined = domain.widen(acc, joined)
                self.widenings += 1
            acc = joined
        return domain.make(0, None)

    def eval(self, term: t.Term, env: Dict[str, Optional[Range]]) -> Optional[Range]:
        w = self.width
        if isinstance(term, t.Lit):
            if isinstance(term.value, bool):
                return domain.const(1 if term.value else 0)
            if isinstance(term.value, int):
                return domain.const(term.value)
            return None
        if isinstance(term, t.Var):
            return env.get(term.name)
        if isinstance(term, t.Prim):
            return self._prim(term, env)
        if isinstance(term, t.Let):
            value = self.eval(term.value, env)
            self.record(term.name, value)
            inner = dict(env)
            inner[term.name] = value
            return self.eval(term.body, inner)
        if isinstance(term, t.LetTuple):
            self.eval(term.value, env)
            inner = dict(env)
            for name in term.names:
                inner[name] = None
            return self.eval(term.body, inner)
        if isinstance(term, t.If):
            self.eval(term.cond, env)
            then_r = self.eval(term.then_, env)
            else_r = self.eval(term.else_, env)
            if then_r is None or else_r is None:
                return None
            return domain.join(then_r, else_r)
        if isinstance(term, t.ArrayLen):
            return domain.make(0, None)
        if isinstance(term, t.ArrayGet):
            self.eval(term.index, env)
            return self.eval(term.arr, env)
        if isinstance(term, t.FirstN):
            self.eval(term.count, env)
            return self.eval(term.arr, env)
        if isinstance(term, t.ArrayPut):
            arr = self.eval(term.arr, env)
            self.eval(term.index, env)
            value = self.eval(term.value, env)
            if arr is None or value is None:
                return None
            return domain.join(arr, value)
        if isinstance(term, t.TableGet):
            self.eval(term.index, env)
            if term.data:
                return domain.make(min(term.data), max(term.data))
            return None
        if isinstance(term, t.ArrayMap):
            elem = self.eval(term.arr, env)
            self.record(term.elem_name, elem)
            inner = dict(env)
            inner[term.elem_name] = elem
            return self.eval(term.body, inner)  # elem range of the result
        if isinstance(term, (t.ArrayFold, t.ArrayFoldBreak)):
            elem = self.eval(term.arr, env)
            init = self.eval(term.init, env)

            def step(acc, term=term, env=env, elem=elem):
                inner = dict(env)
                inner[term.acc_name] = acc
                inner[term.elem_name] = elem
                return self.eval(term.body, inner)

            result = self._loop_acc(init, step)
            self.record(term.acc_name, result)
            self.record(term.elem_name, elem)
            if isinstance(term, t.ArrayFoldBreak):
                inner = dict(env)
                inner[term.acc_name] = result
                self.eval(term.break_pred, inner)
            return result
        if isinstance(term, t.RangedFor):
            lo = self.eval(term.lo, env)
            hi = self.eval(term.hi, env)
            if lo is not None and hi is not None and hi.hi is not None:
                idx: Optional[Range] = domain.make(lo.lo, max(hi.hi - 1, lo.lo))
            else:
                idx = domain.make(lo.lo if lo is not None else 0, None)
            init = self.eval(term.init, env)

            def step(acc, term=term, env=env, idx=idx):
                inner = dict(env)
                inner[term.acc_name] = acc
                inner[term.idx_name] = idx
                return self.eval(term.body, inner)

            result = self._loop_acc(init, step)
            self.record(term.idx_name, idx)
            self.record(term.acc_name, result)
            return result
        if isinstance(term, t.NatIter):
            self.eval(term.count, env)
            init = self.eval(term.init, env)

            def step(acc, term=term, env=env):
                inner = dict(env)
                inner[term.acc_name] = acc
                return self.eval(term.body, inner)

            result = self._loop_acc(init, step)
            self.record(term.acc_name, result)
            return result
        # Unknown heads (tuples, cells, effects, query combinators):
        # walk the children for their bindings, claim nothing.
        for child in term.children():
            self.eval(child, env)
        return None

    def _prim(self, term: t.Prim, env) -> Optional[Range]:
        args = [self.eval(arg, env) for arg in term.args]
        ns, _, op = term.op.partition(".")
        if ns == "cast":
            arg = args[0] if args else None
            if op in ("b2n", "b2w", "to_nat"):
                return arg if arg is not None else None
            if op == "of_nat":
                return domain.wrap(arg, self.width) if arg is not None else None
            if op == "w2b":
                return domain.wrap(arg, 8) if arg is not None else domain.top(8)
            if op == "bool2w":
                return domain.boolean()
            return None
        if ns == "bool":
            return domain.boolean()
        width = {"nat": None, "word": self.width, "byte": 8}.get(ns)
        if width is None and ns != "nat":
            return None
        a = args[0] if args and args[0] is not None else domain.make(0, None)
        if width is not None:
            a = domain.meet_interval(a, hi=(1 << width) - 1)
        b = args[1] if len(args) > 1 and args[1] is not None else domain.make(0, None)
        if width is not None and len(args) > 1:
            b = domain.meet_interval(b, hi=(1 << width) - 1)
        if op in ("ltb", "leb", "ltu", "lts", "eqb", "eq"):
            return domain.boolean()
        if op == "add":
            return domain.add(a, b, width)
        if op == "sub":
            return domain.sub(a, b, width)
        if op == "mul":
            return domain.mul(a, b, width)
        if op == "mulhuu":
            return domain.top(self.width)
        if op in ("div", "divu"):
            return domain.divu(a, b, width)
        if op in ("mod", "remu"):
            return domain.remu(a, b, width)
        if op == "and":
            return domain.and_(a, b, width)
        if op == "or":
            return domain.or_(a, b, width)
        if op == "xor":
            return domain.xor(a, b, width)
        if op == "shl":
            return domain.shl(a, b, width)
        if op == "shr":
            return domain.shr(a, b, width)
        if op == "sar":
            return domain.sar(a, b, width)
        return _type_range(
            {"nat": NAT, "word": WORD, "byte": BYTE, "bool": BOOL}.get(ns), self.width
        )


def analyze_model(model, spec=None, width: int = 64) -> ModelRanges:
    """Per-binding and result ranges of a functional model.

    Parameters are seeded from their declared types (``initial_state``
    asserts every nat argument below ``2**width``, so nat parameters get
    that bound; arrays carry no numeric range).
    """
    walker = _ModelWalker(width)
    env: Dict[str, Optional[Range]] = {}
    for name, ty in model.params:
        seeded = _type_range(ty, width)
        env[name] = seeded
        walker.record(name, seeded)
    result = walker.eval(model.term, env)
    return ModelRanges(
        bindings=walker.bindings, result=result, widenings=walker.widenings
    )
