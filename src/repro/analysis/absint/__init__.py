"""Abstract interpretation over an interval x congruence domain.

The package analyzes value ranges at three layers and feeds three
consumers:

- :mod:`repro.analysis.absint.domain` -- the ``Range`` lattice (interval
  with optional open upper bound, times a congruence class) and sound
  transfer functions for the source and Bedrock2 operator sets;
- :mod:`repro.analysis.absint.terms` -- source-side analyses: the
  fact-derived range map behind ``range_solver`` (see
  :mod:`repro.core.solver`) and the whole-model binding ranges behind
  the soundness property suite;
- :mod:`repro.analysis.absint.bedrock` -- a CFG fixpoint with widening
  at loop heads over compiled Bedrock2 functions, behind the ``RB3xx``
  range lints and the ``RangeGuardElimination`` optimizer pass.

Everything here is *untrusted* analysis in the paper's sense: a wrong
range can only ever make the proof search or the optimizer attempt
something the trusted checkers (certificate validation, differential
testing) then reject.

Like the side-condition memo in :mod:`repro.core.engine`, the analysis
has a kill switch.  ``set_absint_enabled(False)`` (CLI ``--no-absint``)
disables the per-state caching of fact-range maps; verdicts are
recomputed from the same facts for every obligation, so all compiled
outputs are byte-identical either way -- the switch only trades speed
for a simpler-to-audit execution.
"""

from repro.analysis.absint import bedrock, domain, terms
from repro.analysis.absint.bedrock import (
    AbsintResult,
    analyze_function,
    eval_expr_range,
    function_ranges,
    range_lint,
    refine_env,
)
from repro.analysis.absint.domain import Range
from repro.analysis.absint.terms import (
    ModelRanges,
    analyze_model,
    discharge_bounds,
    fact_ranges,
    state_ranges,
)

_ABSINT_ENABLED = True


def absint_enabled() -> bool:
    return _ABSINT_ENABLED


def set_absint_enabled(enabled: bool) -> None:
    """Toggle fact-range caching (the ``--no-absint`` kill switch)."""
    global _ABSINT_ENABLED
    _ABSINT_ENABLED = bool(enabled)


__all__ = [
    "AbsintResult",
    "ModelRanges",
    "Range",
    "absint_enabled",
    "analyze_function",
    "analyze_model",
    "bedrock",
    "discharge_bounds",
    "domain",
    "eval_expr_range",
    "fact_ranges",
    "function_ranges",
    "range_lint",
    "refine_env",
    "set_absint_enabled",
    "state_ranges",
    "terms",
]
