"""Abstract interpretation of Bedrock2 functions.

A classic forward dataflow fixpoint over the :class:`repro.analysis.dataflow.CFG`:
each node carries an abstract environment (variable name -> :class:`Range`
over the word's unsigned representative; absent = the full word), edges out
of ``cond``/``while`` nodes refine the environment with what the branch
condition being true/false implies, and back edges are *widened* at loop
heads (``while`` nodes) after :data:`WIDEN_AFTER` growing visits, which
bounds every chain.

Three consumers sit on top:

- :func:`range_lint` emits the RB3xx diagnostic family (provable
  wraparound, inline-table overrun, oversized shift amounts, feasible
  division by zero);
- :class:`repro.opt.passes.RangeGuardElimination` shares
  :func:`eval_expr_range` and :func:`refine_env` for its rewriting walk;
- ``repro lint --ranges`` reports :func:`function_ranges` per program.

Transfer functions mirror :func:`repro.bedrock2.semantics.apply_op`
bit-for-bit (shift amounts mod width, RISC-V division-by-zero results);
the soundness property suite in ``tests/analysis`` co-executes the
interpreter against these environments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.analysis.dataflow import CFG, Node
from repro.analysis.diagnostics import Diagnostic
from repro.bedrock2 import ast
from repro.analysis.absint import domain
from repro.analysis.absint.domain import Range

Env = Dict[str, Range]

# Join this many times at a loop head before widening kicks in.
WIDEN_AFTER = 3

# Inline-table reads enumerate feasible offsets up to this many entries
# when computing the loaded value's range; beyond it, fall back to the
# full ``2**(8*size) - 1`` bound.
TABLE_ENUM_LIMIT = 4096


# -- Expression ranges ------------------------------------------------------


def eval_expr_range(expr: ast.Expr, env: Env, width: int) -> Range:
    """The range of ``expr``'s unsigned value under ``env``."""
    if isinstance(expr, ast.ELit):
        return domain.const(expr.value & ((1 << width) - 1))
    if isinstance(expr, ast.EVar):
        return env.get(expr.name, domain.top(width))
    if isinstance(expr, ast.ELoad):
        return domain.make(0, min((1 << (8 * expr.size)), 1 << width) - 1)
    if isinstance(expr, ast.EInlineTable):
        return _table_range(expr, eval_expr_range(expr.index, env, width), width)
    if isinstance(expr, ast.EOp):
        lhs = eval_expr_range(expr.lhs, env, width)
        rhs = eval_expr_range(expr.rhs, env, width)
        return _apply_op_range(expr.op, lhs, rhs, width)
    return domain.top(width)


def _apply_op_range(op: str, a: Range, b: Range, width: int) -> Range:
    if op == "add":
        return domain.add(a, b, width)
    if op == "sub":
        return domain.sub(a, b, width)
    if op == "mul":
        return domain.mul(a, b, width)
    if op == "mulhuu":
        if a.hi is not None and b.hi is not None:
            return domain.make((a.lo * b.lo) >> width, (a.hi * b.hi) >> width)
        return domain.top(width)
    if op == "divu":
        return domain.divu(a, b, width)
    if op == "remu":
        return domain.remu(a, b, width)
    if op == "and":
        return domain.and_(a, b, width)
    if op == "or":
        return domain.or_(a, b, width)
    if op == "xor":
        return domain.xor(a, b, width)
    if op == "slu":
        return domain.shl(a, b, width)
    if op == "sru":
        return domain.shr(a, b, width)
    if op == "srs":
        return domain.sar(a, b, width)
    if op == "ltu":
        if a.hi is not None and a.hi < b.lo:
            return domain.const(1)
        if b.hi is not None and b.hi <= a.lo:
            return domain.const(0)
        return domain.boolean()
    if op == "eq":
        if a.is_const and b.is_const:
            return domain.const(1 if a.lo == b.lo else 0)
        if (a.hi is not None and a.hi < b.lo) or (b.hi is not None and b.hi < a.lo):
            return domain.const(0)
        return domain.boolean()
    if op == "lts":
        return domain.boolean()
    return domain.top(width)


def _table_range(expr: ast.EInlineTable, index: Range, width: int) -> Range:
    """Range of the loaded value over all *feasible* in-bounds offsets."""
    full = domain.make(0, min((1 << (8 * expr.size)), 1 << width) - 1)
    limit = len(expr.data) - expr.size
    if limit < 0:
        return full
    lo = max(index.lo, 0)
    hi = limit if index.hi is None else min(index.hi, limit)
    if hi < lo or (hi - lo) // index.mod + 1 > TABLE_ENUM_LIMIT:
        return full
    values = [
        int.from_bytes(expr.data[o : o + expr.size], "little")
        for o in range(lo, hi + 1)
        if o % index.mod == index.rem
    ]
    if not values:
        return full
    return domain.make(min(values), max(values))


# -- Environment plumbing ----------------------------------------------------


def _norm(env: Env, width: int) -> Env:
    """Drop entries carrying no information (absent means the full word)."""
    t = domain.top(width)
    return {k: v for k, v in env.items() if v != t}


def join_envs(a: Env, b: Env, width: int) -> Env:
    out: Env = {}
    for name, r in a.items():
        other = b.get(name)
        if other is not None:
            out[name] = domain.join(r, other)
    return _norm(out, width)


def _widen_envs(old: Env, new: Env, width: int) -> Env:
    out: Env = {}
    maxword = (1 << width) - 1
    for name, r in new.items():
        prev = old.get(name)
        if prev is None:
            continue
        w = domain.widen(prev, r)
        if w.hi is None:
            w = domain.make(w.lo, maxword, w.mod, w.rem)
        out[name] = w
    return _norm(out, width)


def refine_env(env: Env, cond: ast.Expr, truth: bool, width: int) -> Env:
    """Refine ``env`` with ``cond`` evaluating to nonzero (``truth=True``)
    or zero.  Conservative: only variable-vs-expression comparisons are
    narrowed, and a refinement that would empty a range is skipped."""
    out = dict(env)

    def narrow(name: str, lo: Optional[int] = None, hi: Optional[int] = None):
        out[name] = domain.meet_interval(out.get(name, domain.top(width)), lo, hi)

    if isinstance(cond, ast.EVar):
        if truth:
            narrow(cond.name, lo=1)
        else:
            narrow(cond.name, lo=0, hi=0)
        return _norm(out, width)
    if not isinstance(cond, ast.EOp):
        return env
    lhs, rhs = cond.lhs, cond.rhs
    lrange = eval_expr_range(lhs, env, width)
    rrange = eval_expr_range(rhs, env, width)
    if cond.op == "ltu":
        if truth:
            if isinstance(lhs, ast.EVar) and rrange.hi is not None:
                narrow(lhs.name, hi=rrange.hi - 1)
            if isinstance(rhs, ast.EVar):
                narrow(rhs.name, lo=lrange.lo + 1)
        else:
            if isinstance(lhs, ast.EVar):
                narrow(lhs.name, lo=rrange.lo)
            if isinstance(rhs, ast.EVar) and lrange.hi is not None:
                narrow(rhs.name, hi=lrange.hi)
        return _norm(out, width)
    if cond.op == "eq" and truth:
        if isinstance(lhs, ast.EVar):
            narrow(lhs.name, lo=rrange.lo, hi=rrange.hi)
        if isinstance(rhs, ast.EVar):
            narrow(rhs.name, lo=lrange.lo, hi=lrange.hi)
        return _norm(out, width)
    return env


# -- The CFG fixpoint --------------------------------------------------------


@dataclass
class AbsintResult:
    """Per-node abstract environments plus fixpoint effort counters."""

    cfg: CFG
    width: int
    env_in: Dict[int, Env] = field(default_factory=dict)
    iterations: int = 0
    widenings: int = 0

    def stmt_envs(self) -> Dict[int, Env]:
        """``id(stmt)`` -> environment *before* that statement (joined if
        the same statement object appears at several nodes)."""
        out: Dict[int, Env] = {}
        for node in self.cfg.nodes:
            if node.stmt is None or node.id not in self.env_in:
                continue
            key = id(node.stmt)
            if key in out:
                out[key] = join_envs(out[key], self.env_in[node.id], self.width)
            else:
                out[key] = self.env_in[node.id]
        return out

    def exit_env(self) -> Env:
        return self.env_in.get(self.cfg.exit, {})


def _transfer(node: Node, env: Env, width: int) -> Env:
    if node.kind == "set":
        out = dict(env)
        out[node.stmt.lhs] = eval_expr_range(node.stmt.rhs, env, width)
        return _norm(out, width)
    if node.kind in ("unset", "stackalloc", "call", "interact"):
        defs = {node.stmt.name} if node.kind == "unset" else set(node.defs)
        if node.kind == "stackalloc":
            defs = {node.stmt.lhs}
        return {k: v for k, v in env.items() if k not in defs}
    return env


def _edge_env(node: Node, succ: Node, env: Env, width: int) -> Env:
    if node.kind == "cond":
        if succ.path.startswith(node.path + ".then"):
            return refine_env(env, node.stmt.cond, True, width)
        if succ.path.startswith(node.path + ".else"):
            return refine_env(env, node.stmt.cond, False, width)
        return env
    if node.kind == "while":
        if succ.id == node.id or succ.path.startswith(node.path + ".body"):
            return refine_env(env, node.stmt.cond, True, width)
        return refine_env(env, node.stmt.cond, False, width)
    return env


def analyze_function(
    fn: ast.Function, width: int = 64, seed_env: Optional[Env] = None
) -> AbsintResult:
    """Run the interval/congruence fixpoint over ``fn``'s CFG."""
    from repro.obs.trace import current_tracer

    cfg = CFG(fn)
    result = AbsintResult(cfg=cfg, width=width)
    result.env_in[cfg.entry] = _norm(dict(seed_env or {}), width)
    work = deque([cfg.entry])
    queued = {cfg.entry}
    updates: Dict[int, int] = {}
    cap = 1000 + 200 * len(cfg.nodes)  # backstop; widening bounds the chains
    while work:
        result.iterations += 1
        force_top = result.iterations > cap
        nid = work.popleft()
        queued.discard(nid)
        node = cfg.nodes[nid]
        out = _transfer(node, result.env_in.get(nid, {}), width)
        for succ_id in node.succs:
            succ = cfg.nodes[succ_id]
            edge = _edge_env(node, succ, out, width)
            old = result.env_in.get(succ_id)
            new = dict(edge) if old is None else join_envs(old, edge, width)
            if old is not None and new != old:
                count = updates.get(succ_id, 0)
                if force_top:
                    new = {}
                elif succ.kind == "while" and count >= WIDEN_AFTER:
                    new = _widen_envs(old, new, width)
                    result.widenings += 1
            if old is None or new != old:
                result.env_in[succ_id] = new
                updates[succ_id] = updates.get(succ_id, 0) + 1
                if succ_id not in queued:
                    work.append(succ_id)
                    queued.add(succ_id)
    tracer = current_tracer()
    tracer.inc("absint.fixpoint.iterations", result.iterations)
    if result.widenings:
        tracer.inc("absint.widenings", result.widenings)
    return result


# -- The RB3xx lint ----------------------------------------------------------


def _node_exprs(stmt: Optional[ast.Stmt]) -> Iterable[ast.Expr]:
    """The expressions evaluated *at* this node (nested statements have
    their own CFG nodes)."""
    if isinstance(stmt, ast.SSet):
        return (stmt.rhs,)
    if isinstance(stmt, ast.SStore):
        return (stmt.addr, stmt.value)
    if isinstance(stmt, (ast.SCond, ast.SWhile)):
        return (stmt.cond,)
    if isinstance(stmt, (ast.SCall, ast.SInteract)):
        return tuple(stmt.args)
    return ()


def _check_expr(
    expr: ast.Expr,
    env: Env,
    width: int,
    subject: str,
    where: str,
    diags: List[Diagnostic],
) -> None:
    maxword = (1 << width) - 1
    if isinstance(expr, ast.EOp):
        lhs = eval_expr_range(expr.lhs, env, width)
        rhs = eval_expr_range(expr.rhs, env, width)
        if expr.op == "add" and lhs.lo + rhs.lo > maxword:
            diags.append(
                Diagnostic(
                    "RB301",
                    subject,
                    where,
                    f"word add provably wraps at {width} bits: operands in "
                    f"{lhs.pretty()} and {rhs.pretty()}",
                )
            )
        elif expr.op == "sub" and lhs.hi is not None and lhs.hi < rhs.lo:
            diags.append(
                Diagnostic(
                    "RB301",
                    subject,
                    where,
                    f"word sub provably wraps at {width} bits: minuend in "
                    f"{lhs.pretty()} is below subtrahend in {rhs.pretty()}",
                )
            )
        elif expr.op == "mul" and lhs.lo * rhs.lo > maxword:
            diags.append(
                Diagnostic(
                    "RB301",
                    subject,
                    where,
                    f"word mul provably wraps at {width} bits: operands in "
                    f"{lhs.pretty()} and {rhs.pretty()}",
                )
            )
        elif expr.op in ("slu", "sru", "srs") and rhs.lo >= width:
            diags.append(
                Diagnostic(
                    "RB303",
                    subject,
                    where,
                    f"shift amount in {rhs.pretty()} is provably >= the "
                    f"{width}-bit width (Bedrock2 takes it mod {width})",
                )
            )
        elif expr.op in ("divu", "remu") and not rhs.excludes_zero():
            diags.append(
                Diagnostic(
                    "RB304",
                    subject,
                    where,
                    f"divisor of {expr.op} is not provably nonzero "
                    f"(range {rhs.pretty()})",
                )
            )
        _check_expr(expr.lhs, env, width, subject, where, diags)
        _check_expr(expr.rhs, env, width, subject, where, diags)
    elif isinstance(expr, ast.ELoad):
        _check_expr(expr.addr, env, width, subject, where, diags)
    elif isinstance(expr, ast.EInlineTable):
        index = eval_expr_range(expr.index, env, width)
        if index.lo + expr.size > len(expr.data):
            diags.append(
                Diagnostic(
                    "RB302",
                    subject,
                    where,
                    f"inline-table read of {expr.size} byte(s) at offset >= "
                    f"{index.lo} overruns the {len(expr.data)}-byte table",
                )
            )
        _check_expr(expr.index, env, width, subject, where, diags)


def range_lint(fn: ast.Function, width: int = 64) -> List[Diagnostic]:
    """RB301-RB304: word-level defects the range analysis can prove."""
    result = analyze_function(fn, width)
    diags: List[Diagnostic] = []
    for node in result.cfg.nodes:
        if node.id not in result.cfg.reachable or node.id not in result.env_in:
            continue
        env = result.env_in[node.id]
        for expr in _node_exprs(node.stmt):
            _check_expr(expr, env, width, fn.name, node.path, diags)
    return diags


def function_ranges(fn: ast.Function, width: int = 64) -> Dict[str, str]:
    """Pretty per-variable ranges at function exit (``repro lint --ranges``)."""
    result = analyze_function(fn, width)
    return {name: r.pretty() for name, r in sorted(result.exit_env().items())}
