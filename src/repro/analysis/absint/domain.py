"""The abstract domain: intervals with a congruence refinement.

One :class:`Range` approximates a set of *nonnegative* integers by the
product of two classic lattices:

- an interval ``[lo, hi]`` (``hi is None`` means unbounded above), and
- a congruence ``v = rem (mod mod)`` (``mod == 1`` means no information).

Nonnegativity is the natural choice for this compiler: source-side
``nat`` values are nonnegative by construction, and Bedrock2 machine
words are analyzed through their unsigned representative, exactly the
view :class:`repro.bedrock2.word.Word` exposes.

Every transfer function takes an optional ``width``: ``None`` means
mathematical integers (source ``nat`` arithmetic), an ``int`` means the
result wraps modulo ``2**width`` (machine words and bytes).  Wrapping is
handled by :func:`wrap`, which keeps full congruence information when
the unwrapped interval lies within a single ``2**width`` block (the
reduction is then subtraction of a constant) and otherwise falls back to
``gcd(mod, 2**width)`` (``2**width = 0 (mod g)`` keeps the residue
meaningful).

The join/widen pair is standard: join is the componentwise lattice join;
widening jumps ``lo`` to 0 and ``hi`` to unbounded as soon as a bound
moves, which makes every ascending chain finite (``mod`` can only
shrink through divisors, also finite).
"""

from __future__ import annotations

from math import gcd
from typing import Optional


class Range:
    """An interval-with-congruence over the nonnegative integers."""

    __slots__ = ("lo", "hi", "mod", "rem")

    def __init__(self, lo: int, hi: Optional[int], mod: int = 1, rem: int = 0):
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "mod", mod)
        object.__setattr__(self, "rem", rem)

    def __setattr__(self, name, value):
        raise AttributeError("Range instances are immutable")

    def __eq__(self, other):
        return (
            isinstance(other, Range)
            and self.lo == other.lo
            and self.hi == other.hi
            and self.mod == other.mod
            and self.rem == other.rem
        )

    def __hash__(self):
        return hash((self.lo, self.hi, self.mod, self.rem))

    def __repr__(self):
        return f"Range({self.lo}, {self.hi}, {self.mod}, {self.rem})"

    # -- Queries -----------------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.hi == self.lo

    def contains(self, value: int) -> bool:
        if value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return value % self.mod == self.rem

    def excludes_zero(self) -> bool:
        """True when 0 is provably not a possible value."""
        return self.lo > 0 or (self.mod > 1 and self.rem != 0)

    def pretty(self) -> str:
        hi = "+inf" if self.hi is None else str(self.hi)
        base = f"[{self.lo}, {hi}]"
        if self.mod > 1:
            base += f" = {self.rem} (mod {self.mod})"
        return base


def make(lo: int, hi: Optional[int], mod: int = 1, rem: int = 0) -> Range:
    """Normalized constructor: clamps to nonnegative, aligns the interval
    bounds to the congruence class, and drops a congruence that would
    empty the interval (conservative, never bottom)."""
    lo = max(lo, 0)
    if mod < 1:
        mod = 1
    rem %= mod
    if mod > 1:
        aligned_lo = lo + ((rem - lo) % mod)
        if hi is not None:
            aligned_hi = hi - ((hi - rem) % mod)
            if aligned_lo > aligned_hi:
                return Range(lo, max(hi, lo), 1, 0)
            return Range(aligned_lo, aligned_hi, mod, rem)
        return Range(aligned_lo, None, mod, rem)
    if hi is not None and hi < lo:
        hi = lo
    return Range(lo, hi, 1, 0)


def const(value: int) -> Range:
    return Range(max(value, 0), max(value, 0), 1, 0)


def top(width: Optional[int]) -> Range:
    """Everything representable: a full word, or all of nat."""
    if width is None:
        return Range(0, None, 1, 0)
    return Range(0, (1 << width) - 1, 1, 0)


def is_top(r: Range, width: Optional[int]) -> bool:
    return r == top(width)


def _cong(r: Range):
    """The congruence component, with constants as the exact element.

    A singleton interval is in class ``v (mod m)`` for *every* m, which
    the gcd-based lattice encodes as modulus 0 (``gcd(0, x) == x``).
    """
    return (0, r.lo) if r.is_const else (r.mod, r.rem)


def join(a: Range, b: Range) -> Range:
    lo = min(a.lo, b.lo)
    hi = None if a.hi is None or b.hi is None else max(a.hi, b.hi)
    m1, r1 = _cong(a)
    m2, r2 = _cong(b)
    mod = gcd(m1, m2, abs(r1 - r2))
    if mod == 0:  # both the same constant; the interval is already exact
        mod, rem = 1, 0
    else:
        rem = r1 % mod if mod > 1 else 0
    return make(lo, hi, mod, rem)


def widen(old: Range, new: Range) -> Range:
    """Classic interval widening with the congruence join: any bound that
    moved jumps straight to its extreme, so chains are finite."""
    joined = join(old, new)
    lo = old.lo if joined.lo >= old.lo else 0
    if old.hi is not None and (joined.hi is None or joined.hi > old.hi):
        hi: Optional[int] = None
    else:
        hi = old.hi if old.hi is not None else None
    return make(lo, hi, joined.mod, joined.rem)


def meet_interval(r: Range, lo: Optional[int] = None, hi: Optional[int] = None) -> Range:
    """Refine ``r`` with extra interval bounds (used for branch refinement).

    Never produces an empty range: an inconsistent refinement (possible
    on infeasible branches) returns ``r`` unchanged.
    """
    new_lo = r.lo if lo is None else max(r.lo, lo)
    if hi is None:
        new_hi = r.hi
    elif r.hi is None:
        new_hi = hi
    else:
        new_hi = min(r.hi, hi)
    if new_hi is not None and new_lo > new_hi:
        return r
    return make(new_lo, new_hi, r.mod, r.rem)


def wrap(r: Range, width: Optional[int]) -> Range:
    """Reduce a mathematical-integer range modulo ``2**width``."""
    if width is None:
        return r
    size = 1 << width
    if r.hi is not None and 0 <= r.lo and r.hi < size:
        return r
    if r.hi is not None and (r.lo // size) == (r.hi // size):
        # The whole interval sits in one 2**width block: reduction is
        # subtraction of the constant block base, congruence survives.
        base = (r.lo // size) * size
        return make(r.lo - base, r.hi - base, r.mod, (r.rem - base) % r.mod)
    # Straddles a block boundary: interval collapses to the full word,
    # but 2**width = 0 (mod g) keeps the residue mod g = gcd(mod, 2**width).
    g = gcd(r.mod, size)
    return make(0, size - 1, g, r.rem % g if g > 1 else 0)


# -- Arithmetic transfer functions -----------------------------------------


def add(a: Range, b: Range, width: Optional[int]) -> Range:
    lo = a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    m1, r1 = _cong(a)
    m2, r2 = _cong(b)
    mod = gcd(m1, m2)
    if mod == 0:
        mod = 1  # both constant: the interval is exact
    return wrap(make(lo, hi, mod, (r1 + r2) % mod if mod > 1 else 0), width)


def sub(a: Range, b: Range, width: Optional[int]) -> Range:
    """Word subtraction (wrapping) or nat subtraction (truncating at 0)."""
    lo = None if b.hi is None else a.lo - b.hi
    hi = None if a.hi is None else a.hi - b.lo
    m1, r1 = _cong(a)
    m2, r2 = _cong(b)
    mod = gcd(m1, m2)
    if mod == 0:
        mod = 1
    rem = (r1 - r2) % mod if mod > 1 else 0
    if width is None:
        # nat.sub truncates at zero; congruence does not survive truncation
        # unless the subtraction is provably exact (lo >= 0).
        if lo is not None and lo >= 0:
            return make(lo, hi, mod, rem)
        return make(0, hi if hi is not None and hi >= 0 else hi, 1, 0)
    size = 1 << width
    if lo is None:
        return wrap(make(0, size - 1, gcd(mod, size), rem % gcd(mod, size)), width)
    if lo >= 0:
        return wrap(make(lo, hi, mod, rem), width)
    # Negative lows: shift the whole (possibly signed) interval block-wise.
    if hi is not None and (lo // size) == (hi // size):
        base = (lo // size) * size
        return wrap(make(lo - base, hi - base, mod, (rem - base) % mod), width)
    g = gcd(mod, size)
    return make(0, size - 1, g, rem % g if g > 1 else 0)


def mul(a: Range, b: Range, width: Optional[int]) -> Range:
    lo = a.lo * b.lo
    hi = None
    if a.hi is not None and b.hi is not None:
        hi = a.hi * b.hi
    # (m1 q + r1)(m2 p + r2) = r1 r2 (mod gcd(m1 m2, m1 r2, m2 r1))
    m1, r1 = _cong(a)
    m2, r2 = _cong(b)
    mod = gcd(m1 * m2, m1 * r2, m2 * r1)
    if mod == 0:
        mod = 1  # both constant (or a zero factor): the interval is exact
    return wrap(make(lo, hi, mod, (r1 * r2) % mod if mod > 1 else 0), width)


def _pow2_bound(hi: int) -> int:
    """Smallest ``2**k - 1`` covering ``hi`` (bitwise-op interval bound)."""
    return (1 << hi.bit_length()) - 1


def and_(a: Range, b: Range, width: Optional[int]) -> Range:
    if a.is_const and b.is_const:
        return const(a.lo & b.lo)
    his = [h for h in (a.hi, b.hi) if h is not None]
    if width is not None:
        his.append((1 << width) - 1)
    hi = min(his) if his else None
    mod, rem = 1, 0
    for x, mask in ((a, b), (b, a)):
        if mask.is_const and mask.lo >= 0 and (mask.lo + 1) & mask.lo == 0:
            # Low-bit mask 2**k - 1: result = x mod 2**k.
            g = gcd(x.mod, mask.lo + 1)
            if g > mod:
                mod, rem = g, x.rem % g
    return make(0, hi, mod, rem)


def or_(a: Range, b: Range, width: Optional[int]) -> Range:
    if a.is_const and b.is_const:
        return const(a.lo | b.lo)
    lo = max(a.lo, b.lo)  # OR only sets bits
    hi = None
    if a.hi is not None and b.hi is not None:
        hi = min(_pow2_bound(max(a.hi, b.hi)), a.hi + b.hi)
    if width is not None:
        hi = (1 << width) - 1 if hi is None else min(hi, (1 << width) - 1)
    mod, rem = 1, 0
    if (a.mod % 2 == 0 and a.rem % 2 == 1) or (b.mod % 2 == 0 and b.rem % 2 == 1):
        mod, rem = 2, 1  # an odd operand forces bit 0
    elif a.mod % 2 == 0 and b.mod % 2 == 0 and a.rem % 2 == 0 and b.rem % 2 == 0:
        mod, rem = 2, 0  # both even: bit 0 stays clear
    return make(lo, hi, mod, rem)


def xor(a: Range, b: Range, width: Optional[int]) -> Range:
    if a.is_const and b.is_const:
        return const(a.lo ^ b.lo)
    hi = None
    if a.hi is not None and b.hi is not None:
        hi = _pow2_bound(max(a.hi, b.hi))
    if width is not None:
        hi = (1 << width) - 1 if hi is None else min(hi, (1 << width) - 1)
    mod, rem = 1, 0
    if a.mod % 2 == 0 and b.mod % 2 == 0:
        mod, rem = 2, (a.rem + b.rem) % 2  # parity of xor = parity of sum
    return make(0, hi, mod, rem)


def shl(a: Range, b: Range, width: Optional[int]) -> Range:
    if b.is_const:
        amount = b.lo if width is None else b.lo % width
        return mul(a, const(1 << amount), width)
    if b.hi is not None and (width is None or b.hi < width):
        lo = a.lo << b.lo
        hi = None if a.hi is None else a.hi << b.hi
        return wrap(make(lo, hi, 1, 0), width)
    return top(width)


def shr(a: Range, b: Range, width: Optional[int]) -> Range:
    if b.is_const:
        amount = b.lo if width is None else b.lo % width
        lo = a.lo >> amount
        hi = None if a.hi is None else a.hi >> amount
        return make(lo, hi, 1, 0)
    # v >> k <= v for every k (shift amounts are taken mod width).
    return make(0, a.hi, 1, 0)


def sar(a: Range, b: Range, width: Optional[int]) -> Range:
    if width is not None and a.hi is not None and a.hi < (1 << (width - 1)):
        return shr(a, b, width)  # sign bit provably clear
    return top(width)


def divu(a: Range, b: Range, width: Optional[int]) -> Range:
    if not b.excludes_zero():
        # RISC-V: division by zero yields the all-ones word.
        return top(width)
    lo = 0 if b.hi is None else a.lo // b.hi
    hi = None if a.hi is None else a.hi // max(b.lo, 1)
    return make(lo, hi, 1, 0)


def remu(a: Range, b: Range, width: Optional[int]) -> Range:
    if b.is_const and b.lo > 0:
        if a.hi is not None and a.hi < b.lo:
            return a  # provably the identity: congruence survives intact
        g = gcd(a.mod, b.lo)
        return make(0, b.lo - 1, g, a.rem % g if g > 1 else 0)
    if b.excludes_zero():
        hi = a.hi
        if b.hi is not None:
            hi = b.hi - 1 if hi is None else min(hi, b.hi - 1)
        return make(0, hi, 1, 0)
    # RISC-V: modulo zero yields the dividend, so a.hi still bounds it.
    return make(0, a.hi, 1, 0)


def boolean() -> Range:
    return Range(0, 1, 1, 0)
