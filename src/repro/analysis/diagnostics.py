"""Stable diagnostic codes shared by every ``repro.analysis`` analyzer.

The analyzers never raise on a finding -- they *report*, in the style of
a compiler front end, so that CI gates, golden fixtures, and the JSON
CLI output can key on codes that stay stable across refactors:

======  ========  ===========================================================
code    severity  meaning
======  ========  ===========================================================
RA101   warning   hint-DB overlap: two lemmas claim the same goal shape at
                  the same priority, so which one fires is decided only by
                  registration recency -- a nondeterminism hazard under the
                  paper's priority-ordered, no-backtracking search (§3.1)
RA102   warning   priority shadowing: a lemma that can never fire because an
                  earlier, shape-total lemma subsumes every goal it matches
RA103   error     duplicate lemma name inside one database
RA104   error     index mismatch: a lemma's advisory ``shapes`` claims a head
                  its load-bearing ``index_heads`` declaration excludes, so
                  the head-indexed dispatch would skip a lemma the linear
                  scan would have tried
RA201   info      coverage hole: a source ``Term`` head no lemma (and not
                  the engine) handles -- a statically predicted
                  ``no-binding-lemma`` / ``no-expr-lemma`` stall
RA202   info      liftability hole: a forward lemma has no registered
                  inverse pattern (``repro.lift``), so code whose
                  derivation used it cannot be lifted back to a
                  functional model -- a statically predicted
                  ``no-inverse-pattern`` lift stall
RB201   error     dataflow: a local may be read before assignment (or a
                  declared return variable may be unset) on some path
RB202   warning   dataflow: dead store -- the assigned value can never be
                  observed on any path
RB203   warning   dataflow: unreachable statement (constant branch/loop
                  condition)
RB204   error     dataflow: a stack-allocated pointer is read after its
                  ``SStackalloc`` scope ended (use-after-scope)
RB205   error     dataflow: a stack-allocated pointer escapes its scope
                  (stored to memory or returned)
RB206   error     dataflow: a store writes through a pointer argument the
                  ``FnSpec`` does not declare writable (footprint violation)
RB301   warning   ranges: a word operation provably overflows/wraps (the
                  abstract interpreter proves every execution wraps, e.g.
                  adding two values whose lower bounds already exceed the
                  word maximum)
RB302   error     ranges: an inline-table load whose index range provably
                  exceeds the table's length on some execution
RB303   warning   ranges: a shift whose amount is provably >= the word
                  width (Bedrock2 reduces the amount mod width, which is
                  almost never what the source author meant)
RB304   warning   ranges: a division or modulo whose divisor range cannot
                  exclude zero (RISC-V returns all-ones / the dividend --
                  well-defined but usually a latent bug)
======  ========  ===========================================================

Severity drives policy: ``error`` diagnostics reject cache entries and
fail ``repro lint``; ``warning`` diagnostics fail ``repro lint`` but are
advisory elsewhere; ``info`` diagnostics never gate anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

ERROR = "error"
WARNING = "warning"
INFO = "info"

# code -> (severity, short slug used in rendered output)
CATALOG: Dict[str, Tuple[str, str]] = {
    "RA101": (WARNING, "overlap"),
    "RA102": (WARNING, "shadowed-lemma"),
    "RA103": (ERROR, "duplicate-lemma-name"),
    "RA104": (ERROR, "index-shapes-mismatch"),
    "RA201": (INFO, "uncovered-head"),
    "RA202": (INFO, "no-inverse-pattern"),
    "RB201": (ERROR, "uninit-read"),
    "RB202": (WARNING, "dead-store"),
    "RB203": (WARNING, "unreachable"),
    "RB204": (ERROR, "stackalloc-use-after-scope"),
    "RB205": (ERROR, "stackalloc-escape"),
    "RB206": (ERROR, "footprint-violation"),
    "RB301": (WARNING, "provable-wraparound"),
    "RB302": (ERROR, "table-index-out-of-bounds"),
    "RB303": (WARNING, "shift-exceeds-width"),
    "RB304": (WARNING, "possible-division-by-zero"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, with a stable code and a stable location.

    ``subject`` names the audited object (a database, lemma, or function
    name); ``where`` is a structural path inside it (a lemma pair, an
    AST path like ``body.seq[2].then``) chosen to be deterministic so
    golden fixtures can pin exact diagnostics.
    """

    code: str
    subject: str
    where: str
    message: str

    def __post_init__(self) -> None:
        if self.code not in CATALOG:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def severity(self) -> str:
        return CATALOG[self.code][0]

    @property
    def slug(self) -> str:
        return CATALOG[self.code][1]

    def render(self) -> str:
        return (
            f"{self.code} {self.slug} [{self.severity}] "
            f"{self.subject}::{self.where}: {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "slug": self.slug,
            "severity": self.severity,
            "subject": self.subject,
            "where": self.where,
            "message": self.message,
        }


def gating(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    """The findings that should fail a lint gate (errors and warnings)."""
    return [d for d in diags if d.severity in (ERROR, WARNING)]


def errors(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diags if d.severity == ERROR]


def emit_to_tracer(diags: Iterable[Diagnostic], subject_kind: str) -> None:
    """Mirror findings to the active flight recorder (no-op when disabled)."""
    from repro.obs.trace import current_tracer

    tracer = current_tracer()
    if not tracer.enabled:
        return
    for diag in diags:
        tracer.event(
            "lint_diag",
            code=diag.code,
            severity=diag.severity,
            kind=subject_kind,
            subject=diag.subject,
            where=diag.where,
        )
        tracer.inc("analysis.diags")
        tracer.inc(f"analysis.diags.{diag.code}")
