"""CFG-based dataflow lint for Bedrock2 functions.

:mod:`repro.bedrock2.wellformed` is a *gate*: it raises on the first
definite-assignment violation.  This module is a *lint*: it builds a
control-flow graph from the structured AST and runs classical dataflow
analyses over it, reporting every finding as a stable
:class:`~repro.analysis.diagnostics.Diagnostic` (RB2xx codes):

- **RB201 uninit-read** -- forward must-defined analysis (meet =
  intersection over feasible predecessors); also covers declared return
  variables that may be unset at exit;
- **RB202 dead-store** -- backward liveness; an ``SSet`` whose target is
  dead afterwards can never be observed (memory stores and calls are
  never "dead": they have effects);
- **RB203 unreachable** -- reachability with constant-condition edge
  feasibility (``if (0)`` branches, ``while (1)`` fall-throughs);
- **RB204/RB205 stackalloc lifetime** -- a pointer taint analysis:
  every ``SStackalloc`` introduces a *region*; values derived from its
  pointer (address arithmetic, aliases) carry the region's taint.
  Dereferencing a tainted value after the allocation's lexical scope
  ended is RB204; storing a tainted value to memory or returning it is
  RB205 (the region dies with the scope, so any copy that outlives it
  is a dangling pointer).  Loads *through* a tainted pointer yield
  data, not pointers, so taint does not flow out of ``ELoad``;
- **RB206 footprint-violation** -- the same taint machinery seeded with
  the function's pointer arguments: a store whose address derives from
  a pointer argument the :class:`~repro.core.spec.FnSpec` does not
  declare writable (an ``ARRAY`` output's pointer, or the state-monad
  state pointer) writes memory the caller did not hand over.

The analyses are intraprocedural and sound for the structured statement
language (no goto); addresses whose provenance is unknown (loaded from
memory, call results) are never flagged -- the lint prefers silence to
false alarms, because CI gates on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.analysis.diagnostics import Diagnostic
from repro.bedrock2 import ast
from repro.core.spec import ArgKind, FnSpec, OutKind

# ---------------------------------------------------------------------------
# Expression classification helpers


def _pointerish_vars(expr: ast.Expr) -> Set[str]:
    """Variables whose *word value* flows into ``expr``'s result.

    Unlike :func:`ast.expr_vars` this does not descend into ``ELoad`` /
    ``EInlineTable`` subtrees: a load produces data read *through* a
    pointer, not the pointer itself, so pointer taint stops there.
    """
    if isinstance(expr, ast.EVar):
        return {expr.name}
    if isinstance(expr, ast.EOp):
        return _pointerish_vars(expr.lhs) | _pointerish_vars(expr.rhs)
    return set()


def _deref_vars(expr: ast.Expr) -> Set[str]:
    """Variables used (pointerishly) inside some dereferenced address."""
    if isinstance(expr, ast.ELoad):
        return _pointerish_vars(expr.addr) | _deref_vars(expr.addr)
    if isinstance(expr, ast.EOp):
        return _deref_vars(expr.lhs) | _deref_vars(expr.rhs)
    if isinstance(expr, ast.EInlineTable):
        return _deref_vars(expr.index)
    return set()


# ---------------------------------------------------------------------------
# Control-flow graph


@dataclass
class Node:
    """One CFG node: a primitive statement, a condition, or entry/exit."""

    id: int
    kind: str  # entry|exit|set|unset|store|stackalloc|cond|while|call|interact
    path: str  # structural path inside the function body, for diagnostics
    uses: Set[str] = field(default_factory=set)
    defs: Set[str] = field(default_factory=set)
    # Variables dereferenced here (inside a load address or as the
    # address of a store) and variables whose value is written to memory.
    deref: Set[str] = field(default_factory=set)
    stored_values: Set[str] = field(default_factory=set)
    # Stackalloc regions whose lexical scope encloses this node.
    active_regions: FrozenSet[int] = frozenset()
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    stmt: Optional[ast.Stmt] = None


class CFG:
    """Control-flow graph of one function, with feasibility-aware edges."""

    def __init__(self, fn: ast.Function):
        self.fn = fn
        self.nodes: List[Node] = []
        self.entry = self._new("entry", "entry").id
        exits = self._build(fn.body, [self.entry], "body", frozenset())
        exit_node = self._new("exit", "exit")
        exit_node.uses = set(fn.rets)
        self.exit = exit_node.id
        for pred in exits:
            self._edge(pred, self.exit)
        for node in self.nodes:
            for succ in node.succs:
                self.nodes[succ].preds.append(node.id)
        self.reachable = self._reachable()

    # -- construction ------------------------------------------------------

    def _new(self, kind: str, path: str, **attrs) -> Node:
        node = Node(id=len(self.nodes), kind=kind, path=path, **attrs)
        self.nodes.append(node)
        return node

    def _edge(self, src: int, dst: int) -> None:
        self.nodes[src].succs.append(dst)

    def _build(
        self,
        stmt: ast.Stmt,
        preds: List[int],
        path: str,
        regions: FrozenSet[int],
    ) -> List[int]:
        """Add ``stmt``'s nodes; returns the frontier flowing onward.

        ``preds`` empty means the statement is unreachable by
        construction (a dead branch); its nodes are still built so the
        reachability pass can report them.
        """
        if isinstance(stmt, ast.SSkip):
            return preds
        if isinstance(stmt, ast.SSeq):
            items = _flatten(stmt)
            frontier = preds
            for index, item in enumerate(items):
                frontier = self._build(item, frontier, f"{path}[{index}]", regions)
            return frontier
        if isinstance(stmt, ast.SSet):
            node = self._new(
                "set",
                path,
                uses=ast.expr_vars(stmt.rhs),
                defs={stmt.lhs},
                deref=_deref_vars(stmt.rhs),
                active_regions=regions,
            )
            node.stmt = stmt
            for pred in preds:
                self._edge(pred, node.id)
            return [node.id]
        if isinstance(stmt, ast.SUnset):
            node = self._new("unset", path, defs=set(), active_regions=regions)
            node.stmt = stmt
            for pred in preds:
                self._edge(pred, node.id)
            return [node.id]
        if isinstance(stmt, ast.SStore):
            node = self._new(
                "store",
                path,
                uses=ast.expr_vars(stmt.addr) | ast.expr_vars(stmt.value),
                deref=(
                    _pointerish_vars(stmt.addr)
                    | _deref_vars(stmt.addr)
                    | _deref_vars(stmt.value)
                ),
                stored_values=_pointerish_vars(stmt.value),
                active_regions=regions,
            )
            node.stmt = stmt
            for pred in preds:
                self._edge(pred, node.id)
            return [node.id]
        if isinstance(stmt, ast.SStackalloc):
            node = self._new(
                "stackalloc", path, defs={stmt.lhs}, active_regions=regions
            )
            node.stmt = stmt
            for pred in preds:
                self._edge(pred, node.id)
            inner = regions | {node.id}
            return self._build(stmt.body, [node.id], f"{path}.body", inner)
        if isinstance(stmt, ast.SCond):
            node = self._new(
                "cond",
                path,
                uses=ast.expr_vars(stmt.cond),
                deref=_deref_vars(stmt.cond),
                active_regions=regions,
            )
            node.stmt = stmt
            for pred in preds:
                self._edge(pred, node.id)
            const = stmt.cond.value if isinstance(stmt.cond, ast.ELit) else None
            then_preds = [node.id] if const is None or const != 0 else []
            else_preds = [node.id] if const is None or const == 0 else []
            then_out = self._build(stmt.then_, then_preds, f"{path}.then", regions)
            else_out = self._build(stmt.else_, else_preds, f"{path}.else", regions)
            return then_out + else_out
        if isinstance(stmt, ast.SWhile):
            node = self._new(
                "while",
                path,
                uses=ast.expr_vars(stmt.cond),
                deref=_deref_vars(stmt.cond),
                active_regions=regions,
            )
            node.stmt = stmt
            for pred in preds:
                self._edge(pred, node.id)
            const = stmt.cond.value if isinstance(stmt.cond, ast.ELit) else None
            body_preds = [node.id] if const is None or const != 0 else []
            body_out = self._build(stmt.body, body_preds, f"{path}.body", regions)
            for back in body_out:
                self._edge(back, node.id)
            # ``while (1)`` never falls through: the exit edge is infeasible.
            return [node.id] if const is None or const == 0 else []
        if isinstance(stmt, (ast.SCall, ast.SInteract)):
            kind = "call" if isinstance(stmt, ast.SCall) else "interact"
            uses: Set[str] = set()
            deref: Set[str] = set()
            for arg in stmt.args:
                uses |= ast.expr_vars(arg)
                deref |= _deref_vars(arg)
            node = self._new(
                kind,
                path,
                uses=uses,
                defs=set(stmt.lhss),
                deref=deref,
                active_regions=regions,
            )
            node.stmt = stmt
            for pred in preds:
                self._edge(pred, node.id)
            return [node.id]
        raise TypeError(f"unknown statement node {stmt!r}")

    def _reachable(self) -> Set[int]:
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            for succ in self.nodes[stack.pop()].succs:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    # -- analyses ----------------------------------------------------------

    def must_defined(self) -> Dict[int, Optional[Set[str]]]:
        """Forward must-defined-in sets (None = not yet reached / top)."""
        inn: Dict[int, Optional[Set[str]]] = {n.id: None for n in self.nodes}
        inn[self.entry] = set(self.fn.args)
        work = [self.entry]
        while work:
            node = self.nodes[work.pop(0)]
            assert inn[node.id] is not None
            out = set(inn[node.id])
            if node.kind == "unset":
                assert isinstance(node.stmt, ast.SUnset)
                out.discard(node.stmt.name)
            else:
                out |= node.defs
            for succ in node.succs:
                old = inn[succ]
                new = out if old is None else (old & out)
                if old is None or new != old:
                    inn[succ] = set(new)
                    if succ not in [w for w in work]:
                        work.append(succ)
        return inn

    def live_out(self) -> Dict[int, Set[str]]:
        """Backward liveness: variables observable after each node."""
        live_in: Dict[int, Set[str]] = {n.id: set() for n in self.nodes}
        changed = True
        while changed:
            changed = False
            for node in reversed(self.nodes):
                out: Set[str] = set()
                for succ in node.succs:
                    out |= live_in[succ]
                kill = set(node.defs)
                if node.kind == "unset":
                    assert isinstance(node.stmt, ast.SUnset)
                    kill = {node.stmt.name}
                new_in = node.uses | (out - kill)
                if new_in != live_in[node.id]:
                    live_in[node.id] = new_in
                    changed = True
        return {
            node.id: set().union(*(live_in[s] for s in node.succs)) if node.succs else set()
            for node in self.nodes
        }

    def taint(self, seeds: Dict[str, str]) -> Dict[int, Dict[str, Set[str]]]:
        """Forward may-taint: var -> region labels, per node (at entry).

        ``seeds`` maps variable names tainted at function entry to region
        labels (used for pointer arguments).  ``SStackalloc`` nodes seed
        their own region ``stack:<path>``.  Joins are unions; ``SSet`` is
        a strong update; call results are fresh (untainted).
        """
        inn: Dict[int, Dict[str, Set[str]]] = {n.id: {} for n in self.nodes}
        inn[self.entry] = {var: {label} for var, label in seeds.items()}
        # Every node is visited at least once: region-introducing nodes
        # (stackalloc) generate taint even when nothing flows in.
        work = [n.id for n in self.nodes]
        while work:
            node = self.nodes[work.pop(0)]
            env = {var: set(labels) for var, labels in inn[node.id].items()}
            if node.kind == "set":
                assert isinstance(node.stmt, ast.SSet)
                labels: Set[str] = set()
                for var in _pointerish_vars(node.stmt.rhs):
                    labels |= env.get(var, set())
                if labels:
                    env[node.stmt.lhs] = labels
                else:
                    env.pop(node.stmt.lhs, None)
            elif node.kind == "unset":
                assert isinstance(node.stmt, ast.SUnset)
                env.pop(node.stmt.name, None)
            elif node.kind == "stackalloc":
                assert isinstance(node.stmt, ast.SStackalloc)
                env[node.stmt.lhs] = {f"stack:{node.path}"}
            elif node.kind in ("call", "interact"):
                for lhs in node.defs:
                    env.pop(lhs, None)
            for succ in node.succs:
                merged = {v: set(ls) for v, ls in inn[succ].items()}
                grew = False
                for var, labels in env.items():
                    have = merged.setdefault(var, set())
                    if not labels <= have:
                        have |= labels
                        grew = True
                if grew or not inn[succ] and env:
                    inn[succ] = merged
                    if succ not in work:
                        work.append(succ)
        return inn


def _flatten(stmt: ast.Stmt) -> List[ast.Stmt]:
    if isinstance(stmt, ast.SSeq):
        return _flatten(stmt.first) + _flatten(stmt.second)
    if isinstance(stmt, ast.SSkip):
        return []
    return [stmt]


# ---------------------------------------------------------------------------
# The lint proper


def _writable_pointer_args(spec: FnSpec) -> Set[str]:
    """Bedrock2 locals through which the spec licenses memory writes."""
    writable: Set[str] = set()
    for out in spec.outputs:
        if out.kind is OutKind.ARRAY and out.param:
            arg = spec.arg_for_param(out.param, ArgKind.POINTER)
            if arg is not None:
                writable.add(arg.name)
    if spec.state_param:
        arg = spec.arg_for_param(spec.state_param, ArgKind.POINTER)
        if arg is not None:
            writable.add(arg.name)
    return writable


def lint_function(fn: ast.Function, spec: Optional[FnSpec] = None) -> List[Diagnostic]:
    """All RB2xx diagnostics for one Bedrock2 function, in node order."""
    cfg = CFG(fn)
    diags: List[Diagnostic] = []

    # RB203: unreachable statements (report each dead region once, at its
    # first node -- a node none of whose predecessors are also dead).
    for node in cfg.nodes:
        if node.id in cfg.reachable or node.kind in ("entry", "exit"):
            continue
        if any(p not in cfg.reachable for p in node.preds) and node.preds:
            continue
        diags.append(
            Diagnostic(
                code="RB203",
                subject=fn.name,
                where=node.path,
                message="statement is unreachable (constant branch or loop condition)",
            )
        )

    # RB201: may-uninitialized reads, on reachable nodes only.
    must_in = cfg.must_defined()
    for node in cfg.nodes:
        if node.id not in cfg.reachable:
            continue
        defined = must_in[node.id]
        if defined is None:
            continue
        for var in sorted(node.uses - defined):
            if node.kind == "exit":
                diags.append(
                    Diagnostic(
                        code="RB201",
                        subject=fn.name,
                        where="exit",
                        message=(
                            f"return variable {var!r} may be unset on some path"
                        ),
                    )
                )
            else:
                diags.append(
                    Diagnostic(
                        code="RB201",
                        subject=fn.name,
                        where=node.path,
                        message=f"variable {var!r} may be read before assignment",
                    )
                )

    # RB202: dead stores (SSet only -- stores/calls have effects).
    live = cfg.live_out()
    for node in cfg.nodes:
        if node.kind != "set" or node.id not in cfg.reachable:
            continue
        assert isinstance(node.stmt, ast.SSet)
        if node.stmt.lhs not in live[node.id]:
            diags.append(
                Diagnostic(
                    code="RB202",
                    subject=fn.name,
                    where=node.path,
                    message=(
                        f"value assigned to {node.stmt.lhs!r} is never used "
                        "(dead store)"
                    ),
                )
            )

    # RB204/RB205/RB206: pointer-taint checks.
    pointer_args = (
        {arg.name for arg in spec.args if arg.kind is ArgKind.POINTER}
        if spec is not None
        else set()
    )
    writable = _writable_pointer_args(spec) if spec is not None else set()
    seeds = {name: f"arg:{name}" for name in pointer_args}
    taint_in = cfg.taint(seeds)

    def regions_of(node: Node, names: Set[str]) -> Set[str]:
        env = taint_in[node.id]
        labels: Set[str] = set()
        for name in names:
            labels |= env.get(name, set())
        return labels

    for node in cfg.nodes:
        if node.id not in cfg.reachable:
            continue
        # RB204: dereference of a stack region whose scope has ended.
        active = {f"stack:{cfg.nodes[r].path}" for r in node.active_regions}
        for label in sorted(regions_of(node, node.deref)):
            if label.startswith("stack:") and label not in active:
                diags.append(
                    Diagnostic(
                        code="RB204",
                        subject=fn.name,
                        where=node.path,
                        message=(
                            "read/write through a stack-allocated pointer "
                            f"({label}) after its scope ended"
                        ),
                    )
                )
        # RB205: a stack pointer's value escapes into memory.
        if node.kind == "store":
            for label in sorted(regions_of(node, node.stored_values)):
                if label.startswith("stack:"):
                    diags.append(
                        Diagnostic(
                            code="RB205",
                            subject=fn.name,
                            where=node.path,
                            message=(
                                f"stack-allocated pointer ({label}) stored to "
                                "memory outlives its allocation"
                            ),
                        )
                    )
            # RB206: write through a pointer argument not declared writable.
            addr_labels = regions_of(node, _pointerish_vars(node.stmt.addr))
            for label in sorted(addr_labels):
                if label.startswith("arg:") and label[4:] not in writable:
                    diags.append(
                        Diagnostic(
                            code="RB206",
                            subject=fn.name,
                            where=node.path,
                            message=(
                                f"store through pointer argument {label[4:]!r}, "
                                "which the spec does not declare writable"
                            ),
                        )
                    )
        # RB205 (return form): a stack pointer escapes via a return variable.
        if node.kind == "exit":
            for ret in fn.rets:
                for label in sorted(regions_of(node, {ret})):
                    if label.startswith("stack:"):
                        diags.append(
                            Diagnostic(
                                code="RB205",
                                subject=fn.name,
                                where="exit",
                                message=(
                                    f"return variable {ret!r} carries a "
                                    f"stack-allocated pointer ({label})"
                                ),
                            )
                        )
    # RB301-RB304: word-level range lints from the abstract interpreter
    # (lazy import: repro.analysis.absint pulls in the solver machinery).
    from repro.analysis.absint import range_lint

    diags.extend(range_lint(fn))
    return diags


def lint_compiled(compiled) -> List[Diagnostic]:
    """Lint a :class:`~repro.core.spec.CompiledFunction` bundle."""
    return lint_function(compiled.bedrock_fn, spec=compiled.spec)
