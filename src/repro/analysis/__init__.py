"""Static analysis for the relational-compilation toolchain.

Two analyzers, one diagnostic vocabulary (``repro.analysis.diagnostics``):

- :mod:`repro.analysis.hintdb` audits hint *databases* -- the compiler's
  configuration -- for determinism hazards (overlapping lemmas),
  dead configuration (shadowed lemmas), and coverage holes that predict
  ``no-binding-lemma`` / ``no-expr-lemma`` stalls before any program is
  ever compiled;
- :mod:`repro.analysis.dataflow` lints compiled Bedrock2 *output* with
  CFG-based dataflow analyses (uninitialized reads, dead stores,
  unreachable code, stackalloc lifetime, spec footprint).

:mod:`repro.analysis.runner` orchestrates both behind ``repro lint``.
"""

from repro.analysis.diagnostics import CATALOG, Diagnostic
from repro.analysis.dataflow import lint_compiled, lint_function
from repro.analysis.hintdb import (
    CoverageMatrix,
    audit_hintdb,
    missing_lemma_suggestions,
)
from repro.analysis.runner import LintReport, run_lint

__all__ = [
    "CATALOG",
    "CoverageMatrix",
    "Diagnostic",
    "LintReport",
    "audit_hintdb",
    "lint_compiled",
    "lint_function",
    "missing_lemma_suggestions",
    "run_lint",
]
