"""Static auditor for hint databases (determinism + coverage).

The paper's proof search is priority-ordered and (almost) never
backtracks (§3.1): the *first* lemma whose guard accepts a goal commits.
That design makes two database-shape defects silently dangerous:

- **overlap** (RA101): two lemmas claim the same goal-head at the *same*
  priority.  Which one fires is then decided only by registration
  recency -- reordering two ``register`` calls changes the compiler's
  output, a nondeterminism hazard no test on either lemma alone catches.
- **shadowing** (RA102): a lemma registered after a *shape-total* lemma
  (one whose guard is exactly the head test) that claims a subset of its
  heads.  The earlier lemma accepts every goal the later one could, so
  the later one is dead weight -- usually a symptom of a priority typo.
- **index mismatch** (RA104): a lemma's advisory ``shapes`` claims a
  head its load-bearing ``index_heads`` declaration excludes, so the
  head-indexed dispatch (``HintDb.candidates``) would skip a lemma the
  linear scan would have tried.

The auditor also builds a **coverage matrix**: every source ``Term``
head x how the database handles it (``engine`` / ``total`` /
``guarded`` / ``none``).  ``none`` rows are statically predicted
``no-binding-lemma`` / ``no-expr-lemma`` stalls; ``total`` and
``engine`` rows are stall-*proof* claims that the test suite
cross-checks against the flight recorder's observed
``stall.<reason>.head.<Head>`` counters on the fuzz corpus.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic

# Binding-goal heads the engine handles structurally, before any lemma is
# consulted: let-chains, tuple destructuring, and monadic sequencing are
# walked by the engine's chain walker itself.
ENGINE_BINDING_HEADS = frozenset({"Let", "LetTuple", "MBind", "TupleTerm"})

# Heads that can appear as an *expression* goal after the engine's
# ``resolve`` step.  Everything else (loops, mutation, effects, ...) is a
# binding-level construct, so its absence from an expression database is
# not a coverage hole.
EXPR_RELEVANT_HEADS = frozenset(
    {"Lit", "Var", "Prim", "ArrayGet", "ArrayLen", "TableGet", "CellGet"}
)

COVER_NONE = "none"
COVER_GUARDED = "guarded"
COVER_TOTAL = "total"
COVER_ENGINE = "engine"

# Liftability levels (the repro.lift column of the coverage matrix):
# can code whose derivation went through this head's lemmas be lifted
# back to a functional model?
LIFT_FULL = "full"  # every claiming lemma has an inverse pattern
LIFT_PARTIAL = "partial"  # some claiming lemmas do, some don't
LIFT_NONE = "none"  # no claiming lemma has an inverse (or no claims)


def _lifted_lemma_names() -> Set[str]:
    """Forward lemma names with a registered inverse pattern.

    The roster is populated by the stdlib modules' own registrations, so
    the standard library must be importable; a broken import degrades to
    "nothing is liftable", which the RA202 diagnostics then surface
    loudly rather than hiding.
    """
    try:
        from repro.lift.patterns import lifted_lemma_names
        from repro.stdlib import load_extensions

        load_extensions()  # registers the inverse roster
        return set(lifted_lemma_names())
    except Exception:
        return set()


def all_term_heads() -> Tuple[str, ...]:
    """Every source ``Term`` head constructor, by introspection.

    Enumerated from :mod:`repro.source.terms` plus the extension-domain
    term modules (:mod:`repro.query.terms`), so newly added constructors
    appear in the matrix automatically (as uncovered rows, until a lemma
    claims them).  A database with the query lemmas stripped therefore
    gets honest RA201 predictions for the query heads instead of the
    auditor silently not knowing them.
    """
    from repro.query import terms as qt
    from repro.source import terms as t

    heads = {
        name
        for module in (t, qt)
        for name, obj in vars(module).items()
        if inspect.isclass(obj)
        and issubclass(obj, t.Term)
        and obj is not t.Term
        # extension modules re-import core heads; count each class once
        and obj.__module__ == module.__name__
    }
    return tuple(sorted(heads))


@dataclass
class CoverageMatrix:
    """Source-term heads x coverage level for one database.

    ``level`` per head is the *best* claim any lemma makes:

    - ``engine``: handled structurally by the engine (binding kind only);
    - ``total``: a ``shape_total`` lemma claims the head -- stall-proof;
    - ``guarded``: some lemma claims the head but its guard can refuse
      (a goal can still stall, with the lemma as a nearest miss);
    - ``none``: nothing claims the head -- a predicted
      ``NO_BINDING_LEMMA``/``NO_EXPR_LEMMA`` stall.
    """

    db_name: str
    kind: str  # "binding" | "expr"
    levels: Dict[str, str] = field(default_factory=dict)
    # head -> lemma names claiming it, in scan order
    claims: Dict[str, List[str]] = field(default_factory=dict)
    # lemma name -> family (defining module), for suggestions
    families: Dict[str, str] = field(default_factory=dict)
    # head -> LIFT_FULL / LIFT_PARTIAL / LIFT_NONE: whether code derived
    # through this head's lemmas can be lifted back (repro.lift)
    liftability: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_db(cls, db, kind: str) -> "CoverageMatrix":
        heads = (
            tuple(h for h in all_term_heads() if h in EXPR_RELEVANT_HEADS)
            if kind == "expr"
            else all_term_heads()
        )
        matrix = cls(db_name=db.name, kind=kind)
        engine_heads = ENGINE_BINDING_HEADS if kind == "binding" else frozenset()
        for head in heads:
            matrix.levels[head] = COVER_ENGINE if head in engine_heads else COVER_NONE
            matrix.claims[head] = []
        from repro.core.lemma import lemma_family

        for _priority, lemma in db.entries():
            total = bool(getattr(lemma, "shape_total", False))
            name = getattr(lemma, "name", "<unnamed>")
            matrix.families[name] = lemma_family(lemma)
            for head in getattr(lemma, "shapes", ()):
                if head not in matrix.levels:
                    continue
                matrix.claims[head].append(name)
                level = matrix.levels[head]
                if level == COVER_ENGINE:
                    continue
                if total:
                    matrix.levels[head] = COVER_TOTAL
                elif level == COVER_NONE:
                    matrix.levels[head] = COVER_GUARDED
        lifted = _lifted_lemma_names()
        for head, names in matrix.claims.items():
            inverted = sum(1 for name in names if name in lifted)
            if names and inverted == len(names):
                matrix.liftability[head] = LIFT_FULL
            elif inverted:
                matrix.liftability[head] = LIFT_PARTIAL
            else:
                matrix.liftability[head] = LIFT_NONE
        return matrix

    def stall_proof_heads(self) -> Set[str]:
        """Heads for which this matrix *guarantees* no NO_*_LEMMA stall."""
        return {
            head
            for head, level in self.levels.items()
            if level in (COVER_TOTAL, COVER_ENGINE)
        }

    def uncovered_heads(self) -> List[str]:
        return sorted(h for h, level in self.levels.items() if level == COVER_NONE)

    def to_dict(self) -> dict:
        return {
            "db": self.db_name,
            "kind": self.kind,
            "levels": dict(sorted(self.levels.items())),
            "claims": {h: list(names) for h, names in sorted(self.claims.items())},
            "liftability": dict(sorted(self.liftability.items())),
        }


def audit_hintdb(db, kind: str = "binding") -> List[Diagnostic]:
    """Audit one database; returns RA1xx/RA2xx diagnostics in stable order.

    ``kind`` selects the coverage-matrix flavour ("binding" or "expr");
    the overlap/shadow/duplicate checks are kind-independent.
    """
    diags: List[Diagnostic] = []
    entries = db.entries()

    # RA103: duplicate lemma names.  HintDb.register now rejects these,
    # but databases assembled by other means (copy surgery, pickling,
    # direct _entries edits) still flow through the auditor.
    seen: Dict[str, int] = {}
    for index, (_priority, lemma) in enumerate(entries):
        name = getattr(lemma, "name", "<unnamed>")
        if name == "<unnamed>":
            continue
        if name in seen:
            diags.append(
                Diagnostic(
                    code="RA103",
                    subject=db.name,
                    where=f"{name}#{index}",
                    message=(
                        f"lemma name {name!r} registered twice "
                        f"(scan positions {seen[name]} and {index}); stall "
                        "reports and metrics keyed on this name are ambiguous"
                    ),
                )
            )
        else:
            seen[name] = index

    # RA101: same-priority shape intersection.  Scan order within one
    # priority is registration recency, so two lemmas claiming a common
    # head at equal priority race on it.
    for i, (pri_a, lem_a) in enumerate(entries):
        shapes_a = set(getattr(lem_a, "shapes", ()))
        if not shapes_a:
            continue
        for pri_b, lem_b in entries[i + 1 :]:
            if pri_b != pri_a:
                continue
            common = shapes_a & set(getattr(lem_b, "shapes", ()))
            if not common:
                continue
            name_a = getattr(lem_a, "name", "<unnamed>")
            name_b = getattr(lem_b, "name", "<unnamed>")
            diags.append(
                Diagnostic(
                    code="RA101",
                    subject=db.name,
                    where=f"{name_a}/{name_b}",
                    message=(
                        f"lemmas {name_a!r} and {name_b!r} both claim "
                        f"head(s) {sorted(common)} at priority {pri_a}; "
                        "which fires depends only on registration order -- "
                        "separate their priorities to make the choice explicit"
                    ),
                )
            )

    # RA102: shadowing by an earlier shape-total lemma.  Once every head
    # a lemma claims is owned by earlier total lemmas, its guard is never
    # even consulted.
    totals_seen: Set[str] = set()
    for _priority, lemma in entries:
        shapes = set(getattr(lemma, "shapes", ()))
        name = getattr(lemma, "name", "<unnamed>")
        if shapes and shapes <= totals_seen:
            diags.append(
                Diagnostic(
                    code="RA102",
                    subject=db.name,
                    where=name,
                    message=(
                        f"lemma {name!r} can never fire: every head it "
                        f"claims ({sorted(shapes)}) is already accepted "
                        "unconditionally by earlier shape-total lemmas"
                    ),
                )
            )
        if getattr(lemma, "shape_total", False):
            totals_seen |= shapes

    # RA104: index/shapes mismatch.  ``index_heads`` is load-bearing --
    # the head-indexed dispatch only consults a lemma for goal heads it
    # declares (wildcard lemmas are consulted for every head) -- while
    # ``shapes`` is advisory and drives the coverage matrix and stall
    # suggestions.  A head claimed in ``shapes`` but excluded by a
    # declared ``index_heads`` means the matrix promises coverage the
    # indexed scan will never deliver: the canonical way the index could
    # silently diverge from the linear scan.
    candidates = getattr(db, "candidates", None)
    for _priority, lemma in entries:
        heads = getattr(lemma, "index_heads", None)
        if heads is None:
            continue
        head_set = set(heads)
        name = getattr(lemma, "name", "<unnamed>")
        missing = sorted(
            h
            for h in getattr(lemma, "shapes", ())
            if h not in head_set
            and (not callable(candidates) or lemma not in candidates(h))
        )
        if missing:
            diags.append(
                Diagnostic(
                    code="RA104",
                    subject=db.name,
                    where=name,
                    message=(
                        f"lemma {name!r} claims head(s) {missing} in its "
                        "advisory `shapes` but its load-bearing "
                        f"`index_heads` ({sorted(head_set)}) excludes them: "
                        "the indexed dispatch will never consult it for "
                        "those goals, diverging from the linear scan"
                    ),
                )
            )

    # RA201 (info): coverage holes predicted by the matrix.
    matrix = CoverageMatrix.from_db(db, kind)
    reason = "no-binding-lemma" if kind == "binding" else "no-expr-lemma"
    for head in matrix.uncovered_heads():
        diags.append(
            Diagnostic(
                code="RA201",
                subject=db.name,
                where=head,
                message=(
                    f"no {kind} lemma claims source head {head!r}; a goal "
                    f"with this head will stall with {reason}"
                ),
            )
        )

    # RA202 (info): liftability holes.  A forward lemma with no inverse
    # pattern is a statically predicted ``no-inverse-pattern`` lift
    # stall: any derivation that used it produces code ``repro lift``
    # cannot walk back.  Round-trip coverage should track forward
    # coverage; this names exactly the lemmas where it doesn't.
    lifted = _lifted_lemma_names()
    for _priority, lemma in entries:
        name = getattr(lemma, "name", "<unnamed>")
        if name == "<unnamed>" or name in lifted:
            continue
        diags.append(
            Diagnostic(
                code="RA202",
                subject=db.name,
                where=name,
                message=(
                    f"forward lemma {name!r} has no registered inverse "
                    "pattern (repro.lift); code derived through it lifts "
                    "only as far as a no-inverse-pattern stall"
                ),
            )
        )
    return diags


_STANDARD_MATRICES: Optional[Dict[str, CoverageMatrix]] = None


def standard_matrices() -> Dict[str, CoverageMatrix]:
    """Coverage matrices of the full standard library (cached)."""
    global _STANDARD_MATRICES
    if _STANDARD_MATRICES is None:
        from repro.stdlib import default_databases

        binding_db, expr_db = default_databases()
        _STANDARD_MATRICES = {
            "binding": CoverageMatrix.from_db(binding_db, "binding"),
            "expr": CoverageMatrix.from_db(expr_db, "expr"),
        }
    return _STANDARD_MATRICES


def missing_lemma_suggestions(head: str, present: Set[str]) -> List[str]:
    """Standard-library lemmas (as ``family.name``) claiming ``head``.

    Backs ``HintDb.nearest_misses`` when a database claims a stalled head
    not at all: instead of an empty list, the stall report names the
    stdlib lemma *family* the user should load or imitate
    (``"loops.compile_arraymap_inplace"``).  ``present`` filters out
    lemmas the database already has -- those are not *missing*, their
    guards refused the goal.
    """
    suggestions: List[str] = []
    for matrix_kind in ("binding", "expr"):
        matrix = standard_matrices()[matrix_kind]
        for name in matrix.claims.get(head, ()):
            if name in present or any(s.endswith("." + name) for s in suggestions):
                continue
            family = matrix.families.get(name, "")
            suggestions.append(f"{family}.{name}" if family else name)
    return suggestions
