"""Orchestration for ``repro lint``: run audits and lints, gate on severity.

One :func:`run_lint` call audits hint databases (RA1xx/RA2xx) and lints
compiled registry programs (RB2xx), producing a :class:`LintReport` the
CLI renders as text or JSON and CI gates on.  Findings are mirrored to
the active flight recorder as ``lint_diag`` events and
``analysis.diags.*`` counters, under a ``lint`` span per subject.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Diagnostic, emit_to_tracer, gating


@dataclass
class LintSubject:
    """One audited object and its findings."""

    kind: str  # "hintdb" | "program"
    name: str  # "bindings", "crc32@-O1", ...
    diagnostics: List[Diagnostic] = field(default_factory=list)
    # With ``--ranges``: the inferred per-variable value ranges at
    # function exit (variable -> pretty-printed Range), sorted by name.
    ranges: Optional[Dict[str, str]] = None

    def to_dict(self) -> dict:
        record = {
            "kind": self.kind,
            "name": self.name,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        if self.ranges is not None:
            record["ranges"] = dict(self.ranges)
        return record


@dataclass
class LintReport:
    subjects: List[LintSubject] = field(default_factory=list)

    @property
    def diagnostics(self) -> List[Diagnostic]:
        return [d for subject in self.subjects for d in subject.diagnostics]

    @property
    def gating(self) -> List[Diagnostic]:
        return gating(self.diagnostics)

    @property
    def ok(self) -> bool:
        """True when nothing gate-worthy (error/warning) was found."""
        return not self.gating

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "subjects": [s.to_dict() for s in self.subjects],
            "counts": self._counts(),
        }

    def _counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.code] = counts.get(diag.code, 0) + 1
        return dict(sorted(counts.items()))

    def render(self) -> str:
        lines: List[str] = []
        for subject in self.subjects:
            verdict = "clean" if not gating(subject.diagnostics) else "FINDINGS"
            lines.append(f"{subject.kind} {subject.name}: {verdict}")
            for diag in subject.diagnostics:
                lines.append(f"  {diag.render()}")
            if subject.ranges:
                for var, rng in subject.ranges.items():
                    lines.append(f"  range {var} in {rng}")
        total = self._counts()
        summary = ", ".join(f"{code}x{n}" for code, n in total.items()) or "none"
        lines.append(f"diagnostics: {summary}")
        lines.append("lint: " + ("ok" if self.ok else "FAILED"))
        return "\n".join(lines)


def run_lint(
    db_names: Optional[Sequence[str]] = None,
    program_names: Optional[Sequence[str]] = None,
    opt_levels: Sequence[int] = (0, 1),
    ranges: bool = False,
) -> LintReport:
    """Audit hint databases and lint compiled programs.

    With no arguments this is the full CI gate: both standard databases
    plus every registry program at each requested optimization level.
    ``db_names`` / ``program_names`` restrict the scope (an explicit
    empty sequence skips that half entirely).  ``ranges=True`` attaches
    the abstract interpreter's exit-point value ranges to each program
    subject (the CLI ``--ranges`` detail flag).
    """
    from repro.obs.trace import current_tracer

    tracer = current_tracer()
    report = LintReport()

    for db, kind in _selected_databases(db_names):
        from repro.analysis.hintdb import audit_hintdb

        with tracer.span("lint", name=f"hintdb:{db.name}"):
            diags = audit_hintdb(db, kind)
            emit_to_tracer(diags, "hintdb")
        report.subjects.append(LintSubject("hintdb", db.name, diags))

    for program in _selected_programs(program_names):
        for level in opt_levels:
            from repro.analysis.dataflow import lint_compiled

            label = f"{program.name}@-O{level}"
            with tracer.span("lint", name=f"program:{label}"):
                compiled = program.compile(opt_level=level)
                diags = lint_compiled(compiled)
                emit_to_tracer(diags, "program")
            subject = LintSubject("program", label, diags)
            if ranges:
                from repro.analysis.absint import function_ranges

                subject.ranges = function_ranges(compiled.bedrock_fn)
            report.subjects.append(subject)
    return report


def _selected_databases(db_names: Optional[Sequence[str]]) -> List[Tuple[object, str]]:
    if db_names is not None and not db_names:
        return []
    from repro.stdlib import default_databases

    binding_db, expr_db = default_databases()
    available = {"bindings": (binding_db, "binding"), "exprs": (expr_db, "expr")}
    if db_names is None:
        return [available["bindings"], available["exprs"]]
    selected = []
    for name in db_names:
        if name not in available:
            raise KeyError(
                f"unknown hint database {name!r}; available: "
                + ", ".join(sorted(available))
            )
        selected.append(available[name])
    return selected


def _selected_programs(program_names: Optional[Sequence[str]]) -> List[object]:
    if program_names is not None and not program_names:
        return []
    from repro.programs.registry import all_programs, get_program

    if program_names is None:
        return list(all_programs())
    selected = []
    for name in program_names:
        try:
            selected.append(get_program(name))
        except KeyError:
            raise KeyError(
                f"unknown program {name!r}; see `python -m repro list`"
            ) from None
    return selected
