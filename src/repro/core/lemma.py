"""Compilation lemmas and hint databases.

"A relational compiler is just a collection of facts connecting target
programs to source programs" (§2.3).  Here each fact is a
:class:`BindingLemma` (relating one source binding shape to a Bedrock2
statement template) or an :class:`ExprLemma` (relating a scalar term shape
to a Bedrock2 expression), and a compiler is an ordered
:class:`HintDb` of them.  Extending a compiler = registering a lemma;
overriding a default = registering at higher priority, exactly the
workflow the paper's Table 1 measures.

Lemmas are *committed* on first match: per §3.1, compilers built with
Rupicola "(almost) never backtrack", so a lemma whose side conditions fail
reports an error rather than silently trying the next lemma.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.core.goals import BindingGoal, ExprGoal

if TYPE_CHECKING:  # pragma: no cover
    from repro.bedrock2 import ast
    from repro.core.certificate import CertNode
    from repro.core.engine import Engine
    from repro.core.sepstate import SymState


def lemma_family(lemma: object) -> str:
    """The lemma's *family*: the module that defines it.

    Families are the aggregation grain of the flight recorder's metrics
    (``lemma.family.<name>`` counters, per-family time in ``repro
    profile``), matching how the paper's evaluation slices the standard
    library (Table 1: loops, mutation, monads, ...).
    """
    module = type(lemma).__module__
    return module.rsplit(".", 1)[-1]


class WrapStmt:
    """A binding whose statement *wraps* the continuation.

    ``SStackalloc`` is lexically scoped: the allocated block is only live
    inside the statement's body, so the stack-allocation lemmas cannot
    return a standalone statement -- they return a ``WrapStmt`` whose
    ``wrap`` receives the compiled continuation and nests it inside the
    allocation.  This mirrors how the paper's lemmas carry continuation
    premises (§3.3).
    """

    def __init__(self, wrap):
        self.wrap = wrap


class BindingLemma:
    """Relates one ``let/n name := <value shape>`` to a statement template.

    Subclasses implement:

    - ``matches(goal)``: cheap syntactic test on the goal's value term
      (the analogue of Coq unifying the lemma's conclusion with the goal);
    - ``apply(goal, engine)``: discharge premises (recursive compilation
      subgoals, side conditions) and return ``(stmt, state, children)``
      where ``stmt`` is the derived Bedrock2 code for the binding,
      ``state`` the updated symbolic state, and ``children`` the
      certificate nodes of the premises.

    ``apply`` must not be called unless ``matches`` returned True.

    ``shapes`` optionally names the source-term head constructors
    (``Term`` subclass names, e.g. ``("ArrayMap",)``) this lemma is
    *about*.  A lemma whose shape matches a stalled goal but whose
    ``matches`` guard refused it is a **nearest miss** -- exactly the
    "shape of the missing lemma" §3.1 says users learn from stall
    reports, so stalls list these lemmas first.

    ``shape_total`` declares that ``matches`` accepts *every* goal whose
    value's head constructor is in ``shapes`` (the guard is the
    ``isinstance`` test and nothing else).  The hint-DB auditor
    (:mod:`repro.analysis.hintdb`) relies on this: a total lemma makes
    its heads stall-proof in any database that contains it, and any
    same-shape lemma registered after it can never fire (priority
    shadowing).  Declaring totality for a guarded lemma is a soundness
    bug in the declaration, not the auditor -- leave it False when in
    doubt.
    """

    name: str = "<unnamed>"
    shapes: Tuple[str, ...] = ()
    shape_total: bool = False

    def matches(self, goal: BindingGoal) -> bool:
        raise NotImplementedError

    def apply(
        self, goal: BindingGoal, engine: "Engine"
    ) -> Tuple["ast.Stmt", "SymState", List["CertNode"]]:
        raise NotImplementedError


class ExprLemma:
    """Relates a scalar term shape to a Bedrock2 expression template.

    ``shapes`` and ``shape_total`` carry the same audit metadata as on
    :class:`BindingLemma`.
    """

    name: str = "<unnamed>"
    shapes: Tuple[str, ...] = ()
    shape_total: bool = False

    def matches(self, goal: ExprGoal) -> bool:
        raise NotImplementedError

    def apply(
        self, goal: ExprGoal, engine: "Engine"
    ) -> Tuple["ast.Expr", List["CertNode"]]:
        raise NotImplementedError


class DuplicateLemma(ValueError):
    """Two lemmas with the same registered name in one database.

    Lemma names are the identity the rest of the toolchain keys on --
    ``remove`` targets them, stall reports list them, the auditor's
    overlap/shadow diagnostics cite them, and per-lemma metrics counters
    are named after them -- so a silent duplicate would make every one of
    those reports ambiguous.  Pass ``replace=True`` to ``register`` when
    the duplication is an intentional override.
    """


class HintDb:
    """An ordered, named collection of lemmas (Coq's hint database).

    Priorities order lookup: *lower* numbers are tried first, and within a
    priority later registrations win, so user extensions (registered after
    the standard library, often at priority 0) can override defaults --
    "complete control over the compiler's output".
    """

    def __init__(self, name: str):
        self.name = name
        self._entries: List[Tuple[int, int, object]] = []
        self._counter = 0

    def register(self, lemma: object, priority: int = 10, *, replace: bool = False) -> object:
        """Add a lemma; returns it so this can be used as a decorator helper.

        Registering a second lemma under an already-taken name raises
        :class:`DuplicateLemma` unless ``replace=True``, which removes
        the existing entry first (the explicit override workflow,
        matching ``remove`` + ``register``).  Unnamed entries (no
        ``name`` attribute, or the ``"<unnamed>"`` placeholder) are
        exempt: they have no identity to collide on.
        """
        name = getattr(lemma, "name", None)
        if name is not None and name != "<unnamed>" and any(
            getattr(entry[2], "name", None) == name for entry in self._entries
        ):
            if not replace:
                raise DuplicateLemma(
                    f"database {self.name!r} already has a lemma named {name!r}; "
                    "remove it first or register with replace=True"
                )
            self.remove(name)
        self._counter += 1
        self._entries.append((priority, -self._counter, lemma))
        self._entries.sort(key=lambda e: (e[0], e[1]))
        return lemma

    def remove(self, lemma_name: str) -> bool:
        """Remove a lemma by name; returns whether something was removed."""
        before = len(self._entries)
        self._entries = [
            entry for entry in self._entries if getattr(entry[2], "name", None) != lemma_name
        ]
        return len(self._entries) != before

    def __iter__(self) -> Iterator[object]:
        return (entry[2] for entry in self._entries)

    def entries(self) -> List[Tuple[int, object]]:
        """``(priority, lemma)`` pairs in scan order.

        The auditor (:mod:`repro.analysis.hintdb`) needs priorities, not
        just the scan sequence: two lemmas claiming the same shape at the
        *same* priority are ordered only by registration recency, which
        is the nondeterminism hazard its overlap report flags.
        """
        return [(priority, lemma) for priority, _, lemma in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def lemma_names(self) -> List[str]:
        return [getattr(lemma, "name", "<unnamed>") for lemma in self]

    def fingerprint(self) -> str:
        """A short stable hash of the database's *ordered* contents.

        Proof search is deterministic and non-backtracking, so a
        derivation is a pure function of the ordered lemma sequence (and
        the model/spec/engine flags): two databases with equal
        fingerprints drive identical derivations.  The digest covers, in
        scan order, each lemma's registered name, its defining class
        (module + qualname, so a same-named replacement lemma changes
        the key), and its declared shapes.  Used by the compilation
        cache (:mod:`repro.serve`) as the lemma-DB component of its
        content-addressed keys: registering, removing, reordering, or
        reprioritizing any lemma invalidates exactly the keys derived
        from this database.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(self.name.encode("utf-8"))
        for lemma in self:
            cls = type(lemma)
            digest.update(
                "\x1f".join(
                    (
                        getattr(lemma, "name", "<unnamed>"),
                        f"{cls.__module__}.{cls.__qualname__}",
                        ",".join(getattr(lemma, "shapes", ())),
                    )
                ).encode("utf-8")
            )
            digest.update(b"\x1e")
        return digest.hexdigest()[:16]

    def nearest_misses(self, term: object) -> List[str]:
        """Lemmas whose declared shape matches ``term``'s head constructor.

        Used by stall reports: these lemmas are *about* the right source
        construct but their guards (name conventions, binding kinds,
        memory-clause requirements) refused the goal -- the closest
        existing lemmas to the one the user would need to write.

        When *no* lemma in this database claims the head at all, the
        auditor's coverage matrix over the standard library is consulted
        instead, so the suggestions name the missing lemma *family*
        (``"loops.compile_arraymap_inplace"``) rather than coming back
        empty -- the user learns which stdlib module to load or imitate.
        """
        head = type(term).__name__
        misses = [
            getattr(lemma, "name", "<unnamed>")
            for lemma in self
            if head in getattr(lemma, "shapes", ())
        ]
        if misses:
            return misses
        try:  # lazy: repro.analysis depends on this module, not vice versa
            from repro.analysis.hintdb import missing_lemma_suggestions
        except ImportError:  # pragma: no cover - partial installs
            return misses
        return missing_lemma_suggestions(head, present=set(self.lemma_names()))

    def copy(self, name: Optional[str] = None) -> "HintDb":
        clone = HintDb(name or self.name)
        clone._entries = list(self._entries)
        clone._counter = self._counter
        return clone

    def extended(self, *lemmas: object, priority: int = 0, name: Optional[str] = None) -> "HintDb":
        """A copy of this database with extra (high-priority) lemmas."""
        clone = self.copy(name)
        for lemma in lemmas:
            clone.register(lemma, priority=priority)
        return clone
