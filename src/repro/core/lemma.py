"""Compilation lemmas and hint databases.

"A relational compiler is just a collection of facts connecting target
programs to source programs" (§2.3).  Here each fact is a
:class:`BindingLemma` (relating one source binding shape to a Bedrock2
statement template) or an :class:`ExprLemma` (relating a scalar term shape
to a Bedrock2 expression), and a compiler is an ordered
:class:`HintDb` of them.  Extending a compiler = registering a lemma;
overriding a default = registering at higher priority, exactly the
workflow the paper's Table 1 measures.

Lemmas are *committed* on first match: per §3.1, compilers built with
Rupicola "(almost) never backtrack", so a lemma whose side conditions fail
reports an error rather than silently trying the next lemma.
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.core.goals import BindingGoal, ExprGoal

if TYPE_CHECKING:  # pragma: no cover
    from repro.bedrock2 import ast
    from repro.core.certificate import CertNode
    from repro.core.engine import Engine
    from repro.core.sepstate import SymState


# -- Head-indexed dispatch ----------------------------------------------------------
#
# Lemma selection is a priority-ordered scan; on the standard library that
# means ~20 ``matches`` calls per binding goal, almost all of which fail
# on the very first ``isinstance`` test.  The index below moves that test
# into the database: a lemma *declares* the goal-head constructors it can
# ever match (``index_heads``), and ``HintDb.candidates(head)`` returns
# only the plausible lemmas -- in exactly the order the linear scan would
# have tried them, so committing to the first match is unchanged.
#
# ``index_heads = None`` (the default) means *head-agnostic*: the lemma
# lands in the wildcard bucket and is consulted for every goal, so an
# undeclared (e.g. third-party) lemma can never be skipped and semantics
# cannot change.  Declaring ``index_heads`` for a lemma whose ``matches``
# accepts some other head is a soundness bug in the declaration -- the
# auditor's RA104 check and the differential equivalence harness
# (``tests/core/test_dispatch_equivalence.py``) exist to catch it.

_INDEX_ENABLED = True


def index_enabled() -> bool:
    return _INDEX_ENABLED


def set_index_enabled(enabled: bool) -> bool:
    """Toggle head-indexed dispatch globally; returns the previous setting.

    Engines snapshot this flag at construction (``Engine(use_index=...)``
    overrides it per engine), so flipping it affects engines built
    afterwards -- the CLI's ``--no-index`` flips it before any engine
    exists.
    """
    global _INDEX_ENABLED
    previous = _INDEX_ENABLED
    _INDEX_ENABLED = bool(enabled)
    return previous


def lemma_index_heads(lemma: object) -> Optional[Tuple[str, ...]]:
    """The declared head keys of ``lemma``; ``None`` means head-agnostic."""
    heads = getattr(lemma, "index_heads", None)
    if heads is None:
        return None
    return tuple(heads)


def lemma_family(lemma: object) -> str:
    """The lemma's *family*: the module that defines it.

    Families are the aggregation grain of the flight recorder's metrics
    (``lemma.family.<name>`` counters, per-family time in ``repro
    profile``), matching how the paper's evaluation slices the standard
    library (Table 1: loops, mutation, monads, ...).
    """
    module = type(lemma).__module__
    return module.rsplit(".", 1)[-1]


class WrapStmt:
    """A binding whose statement *wraps* the continuation.

    ``SStackalloc`` is lexically scoped: the allocated block is only live
    inside the statement's body, so the stack-allocation lemmas cannot
    return a standalone statement -- they return a ``WrapStmt`` whose
    ``wrap`` receives the compiled continuation and nests it inside the
    allocation.  This mirrors how the paper's lemmas carry continuation
    premises (§3.3).
    """

    def __init__(self, wrap):
        self.wrap = wrap


class BindingLemma:
    """Relates one ``let/n name := <value shape>`` to a statement template.

    Subclasses implement:

    - ``matches(goal)``: cheap syntactic test on the goal's value term
      (the analogue of Coq unifying the lemma's conclusion with the goal);
    - ``apply(goal, engine)``: discharge premises (recursive compilation
      subgoals, side conditions) and return ``(stmt, state, children)``
      where ``stmt`` is the derived Bedrock2 code for the binding,
      ``state`` the updated symbolic state, and ``children`` the
      certificate nodes of the premises.

    ``apply`` must not be called unless ``matches`` returned True.

    ``shapes`` optionally names the source-term head constructors
    (``Term`` subclass names, e.g. ``("ArrayMap",)``) this lemma is
    *about*.  A lemma whose shape matches a stalled goal but whose
    ``matches`` guard refused it is a **nearest miss** -- exactly the
    "shape of the missing lemma" §3.1 says users learn from stall
    reports, so stalls list these lemmas first.

    ``shape_total`` declares that ``matches`` accepts *every* goal whose
    value's head constructor is in ``shapes`` (the guard is the
    ``isinstance`` test and nothing else).  The hint-DB auditor
    (:mod:`repro.analysis.hintdb`) relies on this: a total lemma makes
    its heads stall-proof in any database that contains it, and any
    same-shape lemma registered after it can never fire (priority
    shadowing).  Declaring totality for a guarded lemma is a soundness
    bug in the declaration, not the auditor -- leave it False when in
    doubt.

    ``index_heads`` declares the *complete* set of goal-value head
    constructors ``matches`` can ever accept, enabling head-indexed
    dispatch (:meth:`HintDb.candidates`).  Unlike ``shapes`` (advisory,
    drives stall reporting), ``index_heads`` is load-bearing: a goal
    whose head is not listed will never be offered to this lemma.  Leave
    it ``None`` (head-agnostic, always consulted) when the guard
    inspects anything beyond the value's own constructor -- e.g. reverse
    value lookups in the symbolic state.
    """

    name: str = "<unnamed>"
    shapes: Tuple[str, ...] = ()
    shape_total: bool = False
    index_heads: Optional[Tuple[str, ...]] = None

    def matches(self, goal: BindingGoal) -> bool:
        raise NotImplementedError

    def apply(
        self, goal: BindingGoal, engine: "Engine"
    ) -> Tuple["ast.Stmt", "SymState", List["CertNode"]]:
        raise NotImplementedError


class ExprLemma:
    """Relates a scalar term shape to a Bedrock2 expression template.

    ``shapes``, ``shape_total``, and ``index_heads`` carry the same
    audit/dispatch metadata as on :class:`BindingLemma`.
    """

    name: str = "<unnamed>"
    shapes: Tuple[str, ...] = ()
    shape_total: bool = False
    index_heads: Optional[Tuple[str, ...]] = None

    def matches(self, goal: ExprGoal) -> bool:
        raise NotImplementedError

    def apply(
        self, goal: ExprGoal, engine: "Engine"
    ) -> Tuple["ast.Expr", List["CertNode"]]:
        raise NotImplementedError


class DuplicateLemma(ValueError):
    """Two lemmas with the same registered name in one database.

    Lemma names are the identity the rest of the toolchain keys on --
    ``remove`` targets them, stall reports list them, the auditor's
    overlap/shadow diagnostics cite them, and per-lemma metrics counters
    are named after them -- so a silent duplicate would make every one of
    those reports ambiguous.  Pass ``replace=True`` to ``register`` when
    the duplication is an intentional override.
    """


class HintDb:
    """An ordered, named collection of lemmas (Coq's hint database).

    Priorities order lookup: *lower* numbers are tried first, and within a
    priority later registrations win, so user extensions (registered after
    the standard library, often at priority 0) can override defaults --
    "complete control over the compiler's output".
    """

    def __init__(self, name: str):
        self.name = name
        self._entries: List[Tuple[int, int, object]] = []
        self._counter = 0
        # Head-indexed dispatch: per-head sorted entry lists plus the
        # wildcard bucket of head-agnostic lemmas (index_heads is None).
        # Both are kept in the same (priority, -counter) order as
        # _entries, so merging two buckets reproduces the scan order.
        self._head_buckets: Dict[str, List[Tuple[int, int, object]]] = {}
        self._wildcard: List[Tuple[int, int, object]] = []
        # Memoized candidates() results and fingerprint, dropped on any
        # mutation.
        self._candidate_cache: Dict[str, List[object]] = {}
        self._fingerprint_cache: Optional[str] = None

    def _invalidate(self) -> None:
        self._candidate_cache.clear()
        self._fingerprint_cache = None

    def register(self, lemma: object, priority: int = 10, *, replace: bool = False) -> object:
        """Add a lemma; returns it so this can be used as a decorator helper.

        Registering a second lemma under an already-taken name raises
        :class:`DuplicateLemma` unless ``replace=True``, which removes
        the existing entry first (the explicit override workflow,
        matching ``remove`` + ``register``).  Unnamed entries (no
        ``name`` attribute, or the ``"<unnamed>"`` placeholder) are
        exempt: they have no identity to collide on.
        """
        name = getattr(lemma, "name", None)
        if name is not None and name != "<unnamed>" and any(
            getattr(entry[2], "name", None) == name for entry in self._entries
        ):
            if not replace:
                raise DuplicateLemma(
                    f"database {self.name!r} already has a lemma named {name!r}; "
                    "remove it first or register with replace=True"
                )
            self.remove(name)
        self._counter += 1
        entry = (priority, -self._counter, lemma)
        # (priority, -counter) pairs are unique, so tuple comparison
        # never reaches the lemma object; insort keeps registration
        # O(log n) comparisons instead of the former full re-sort.
        insort(self._entries, entry)
        heads = lemma_index_heads(lemma)
        if heads is None:
            insort(self._wildcard, entry)
        else:
            for head in heads:
                insort(self._head_buckets.setdefault(head, []), entry)
        self._invalidate()
        return lemma

    def remove(self, lemma_name: str) -> bool:
        """Remove a lemma by name; returns whether something was removed."""

        def keep(entry: Tuple[int, int, object]) -> bool:
            return getattr(entry[2], "name", None) != lemma_name

        before = len(self._entries)
        self._entries = [entry for entry in self._entries if keep(entry)]
        if len(self._entries) == before:
            return False
        self._wildcard = [entry for entry in self._wildcard if keep(entry)]
        for head, bucket in list(self._head_buckets.items()):
            filtered = [entry for entry in bucket if keep(entry)]
            if filtered:
                self._head_buckets[head] = filtered
            else:
                del self._head_buckets[head]
        self._invalidate()
        return True

    def candidates(self, head: str) -> List[object]:
        """Lemmas that could match a goal whose value has head ``head``.

        Returns exactly the subsequence of the linear scan consisting of
        the lemmas indexed under ``head`` plus every wildcard lemma, in
        the scan's own (priority, registration-recency) order -- so
        committing to the first match through this list picks the same
        lemma the full scan would have picked, provided every
        ``index_heads`` declaration is sound.  Results are memoized per
        head until the next ``register``/``remove``.
        """
        cached = self._candidate_cache.get(head)
        if cached is not None:
            return cached
        bucket = self._head_buckets.get(head)
        if not bucket:
            merged = [entry[2] for entry in self._wildcard]
        elif not self._wildcard:
            merged = [entry[2] for entry in bucket]
        else:
            merged = []
            i = j = 0
            wildcard = self._wildcard
            while i < len(bucket) and j < len(wildcard):
                if bucket[i][:2] < wildcard[j][:2]:
                    merged.append(bucket[i][2])
                    i += 1
                else:
                    merged.append(wildcard[j][2])
                    j += 1
            merged.extend(entry[2] for entry in bucket[i:])
            merged.extend(entry[2] for entry in wildcard[j:])
        self._candidate_cache[head] = merged
        return merged

    def indexed_heads(self) -> List[str]:
        """Heads with a dedicated bucket (diagnostics/observability)."""
        return sorted(self._head_buckets)

    def wildcard_lemmas(self) -> List[object]:
        """The head-agnostic lemmas, in scan order (diagnostics)."""
        return [entry[2] for entry in self._wildcard]

    def __iter__(self) -> Iterator[object]:
        return (entry[2] for entry in self._entries)

    def entries(self) -> List[Tuple[int, object]]:
        """``(priority, lemma)`` pairs in scan order.

        The auditor (:mod:`repro.analysis.hintdb`) needs priorities, not
        just the scan sequence: two lemmas claiming the same shape at the
        *same* priority are ordered only by registration recency, which
        is the nondeterminism hazard its overlap report flags.
        """
        return [(priority, lemma) for priority, _, lemma in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def lemma_names(self) -> List[str]:
        return [getattr(lemma, "name", "<unnamed>") for lemma in self]

    def fingerprint(self) -> str:
        """A short stable hash of the database's *ordered* contents.

        Proof search is deterministic and non-backtracking, so a
        derivation is a pure function of the ordered lemma sequence (and
        the model/spec/engine flags): two databases with equal
        fingerprints drive identical derivations.  The digest covers, in
        scan order, each lemma's registered name, its defining class
        (module + qualname, so a same-named replacement lemma changes
        the key), and its declared shapes.  Used by the compilation
        cache (:mod:`repro.serve`) as the lemma-DB component of its
        content-addressed keys: registering, removing, reordering, or
        reprioritizing any lemma invalidates exactly the keys derived
        from this database.

        Memoized until the next ``register``/``remove``: the serve layer
        recomputes cache keys per request against long-lived databases,
        so the digest is a hot-path cost worth caching.
        """
        if self._fingerprint_cache is not None:
            return self._fingerprint_cache
        import hashlib

        digest = hashlib.sha256()
        digest.update(self.name.encode("utf-8"))
        for lemma in self:
            cls = type(lemma)
            digest.update(
                "\x1f".join(
                    (
                        getattr(lemma, "name", "<unnamed>"),
                        f"{cls.__module__}.{cls.__qualname__}",
                        ",".join(getattr(lemma, "shapes", ())),
                    )
                ).encode("utf-8")
            )
            digest.update(b"\x1e")
        self._fingerprint_cache = digest.hexdigest()[:16]
        return self._fingerprint_cache

    def nearest_misses(self, term: object) -> List[str]:
        """Lemmas whose declared shape matches ``term``'s head constructor.

        Used by stall reports: these lemmas are *about* the right source
        construct but their guards (name conventions, binding kinds,
        memory-clause requirements) refused the goal -- the closest
        existing lemmas to the one the user would need to write.

        When *no* lemma in this database claims the head at all, the
        auditor's coverage matrix over the standard library is consulted
        instead, so the suggestions name the missing lemma *family*
        (``"loops.compile_arraymap_inplace"``) rather than coming back
        empty -- the user learns which stdlib module to load or imitate.
        """
        head = type(term).__name__
        misses = [
            getattr(lemma, "name", "<unnamed>")
            for lemma in self
            if head in getattr(lemma, "shapes", ())
        ]
        if misses:
            return misses
        try:  # lazy: repro.analysis depends on this module, not vice versa
            from repro.analysis.hintdb import missing_lemma_suggestions
        except ImportError:  # pragma: no cover - partial installs
            return misses
        return missing_lemma_suggestions(head, present=set(self.lemma_names()))

    def copy(self, name: Optional[str] = None) -> "HintDb":
        clone = HintDb(name or self.name)
        clone._entries = list(self._entries)
        clone._counter = self._counter
        clone._wildcard = list(self._wildcard)
        clone._head_buckets = {
            head: list(bucket) for head, bucket in self._head_buckets.items()
        }
        return clone

    def extended(self, *lemmas: object, priority: int = 0, name: Optional[str] = None) -> "HintDb":
        """A copy of this database with extra (high-priority) lemmas."""
        clone = self.copy(name)
        for lemma in lemmas:
            clone.register(lemma, priority=priority)
        return clone
