"""Type inference over (resolved) source terms.

Lemmas need to know source types to pick representations: byte arrays use
1-byte loads, word arrays use word-size loads, bools are 0/1 words, nats
carry no-overflow obligations.  Since the source subset is simply typed
and first order, types are inferable from the term plus the symbolic
state's knowledge of ghost variables.
"""

from __future__ import annotations


from repro.core.sepstate import PointerBinding, ScalarBinding, SymState
from repro.source import terms as t
from repro.source.ops import get_op
from repro.source.types import BYTE, NAT, WORD, SourceType, TypeKind, array_of


class TypeInferenceError(Exception):
    """The term's type cannot be determined from the context."""


def infer_type(state: SymState, term: t.Term) -> SourceType:
    """Infer the source type of a term against the symbolic state."""
    if isinstance(term, t.Lit):
        return term.ty
    if isinstance(term, t.Var):
        if term.name in state.ghost_types:
            return state.ghost_types[term.name]
        binding = state.binding(term.name)
        if isinstance(binding, ScalarBinding):
            return binding.ty
        if isinstance(binding, PointerBinding):
            return binding.ty
        raise TypeInferenceError(f"unknown variable {term.name!r}")
    if isinstance(term, t.Prim):
        return get_op(term.op).result_type
    if isinstance(term, t.If):
        return infer_type(state, term.then_)
    if isinstance(term, t.ArrayLen):
        return NAT
    if isinstance(term, (t.ArrayGet,)):
        arr_ty = infer_type(state, term.arr)
        if arr_ty.kind is not TypeKind.ARRAY or arr_ty.elem is None:
            raise TypeInferenceError(f"get from non-array {t.pretty(term.arr)}")
        return arr_ty.elem
    if isinstance(term, (t.ArrayPut, t.ArrayMap)):
        return infer_type(state, term.arr)
    if isinstance(term, (t.ArrayFold, t.ArrayFoldBreak)):
        return infer_type(state, term.init)
    if isinstance(term, (t.RangedFor, t.NatIter)):
        return infer_type(state, term.init)
    if isinstance(term, (t.FirstN, t.SkipN)):
        return infer_type(state, term.arr)
    if isinstance(term, t.Append):
        return infer_type(state, term.first)
    if isinstance(term, t.TableGet):
        return term.elem_ty
    if isinstance(term, t.CellGet):
        cell_ty = infer_type(state, term.cell)
        if cell_ty.kind is not TypeKind.CELL or cell_ty.elem is None:
            raise TypeInferenceError("get from non-cell")
        return cell_ty.elem
    if isinstance(term, t.CellPut):
        return infer_type(state, term.cell)
    if isinstance(term, (t.Stack, t.Copy)):
        return infer_type(state, term.value)
    if isinstance(term, t.MRet):
        return infer_type(state, term.value)
    if isinstance(term, t.IORead):
        return WORD
    if isinstance(term, (t.IOWrite, t.WriterTell, t.StPut, t.StGet)):
        return WORD
    if isinstance(term, t.ErrGuard):
        return WORD  # unit-like; the bind result is never used
    if isinstance(term, t.NdAny):
        return term.ty
    if isinstance(term, t.NdAllocBytes):
        return array_of(BYTE)
    if isinstance(term, t.Call):
        return WORD  # external calls return machine words
    # Open extension point: Term subclasses from other packages
    # (repro.query) type themselves via ``infer_type_node``.
    hook = getattr(term, "infer_type_node", None)
    if hook is not None:
        return hook(state, infer_type)
    raise TypeInferenceError(f"cannot infer type of {term!r}")
