"""Compilation goals and stall-and-report errors.

Rupicola "makes as much progress as possible and then presents unsolved
compilation subgoals to the user, who may then plug in new lemmas ...
users never have to guess at what is happening: they can learn the shape
of missing lemmas from the goals printed by Rupicola" (§3.1).  The errors
below carry that same information: the goal being attempted (rendered in
the judgment syntax of §3.3), the databases consulted, and -- for side
conditions -- the exact obligation no solver could discharge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.source import terms as t
from repro.source.types import SourceType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.sepstate import SymState
    from repro.core.spec import FnSpec


@dataclass
class BindingGoal:
    """Compile ``let/n name := value in ...`` -- one target assignment.

    ``monadic`` distinguishes ``let/n!`` (monadic bind) from plain lets;
    most lemmas do not care, which is how "a single lemma for compiling
    (pure) addition [applies] to all monadic programs" (§3.4.1).
    """

    state: "SymState"
    name: str
    value: t.Term
    spec: "FnSpec"
    monadic: bool = False
    # Multi-target bindings (let/n (r, c) := ... -- the CAS of §3.4.2):
    # when set, `name` is names[0] and lemmas supporting tuple targets
    # consult the full list.
    names: Optional[tuple] = None

    def describe(self) -> str:
        binder = ", ".join(self.names) if self.names else self.name
        header = "{ t; m; l; sigma } ?c { pred (let/n%s %s := %s in ...) }" % (
            "!" if self.monadic else "",
            binder,
            t.pretty(self.value),
        )
        return header + "\n" + self.state.describe()


@dataclass
class ExprGoal:
    """Compile a scalar source term into a Bedrock2 expression.

    The judgment is the paper's ``EXPR m l E (value)``: find ``E`` such
    that evaluating it under the symbolic locals/memory yields the word
    encoding of ``term``.
    """

    state: "SymState"
    term: t.Term
    ty: Optional[SourceType] = None

    def describe(self) -> str:
        return f"EXPR m l ?e ({t.pretty(self.term)})\n" + self.state.describe()


class CompileError(Exception):
    """Base class of compilation failures."""


class CompilationStalled(CompileError):
    """No lemma in the hint database applies to the goal.

    This is Rupicola's designed behaviour for unexpected input: stop and
    show the unsolved subgoal so the user can plug in a new lemma.
    """

    def __init__(self, goal_description: str, advice: str = ""):
        self.goal_description = goal_description
        self.advice = advice
        message = "compilation stalled on unsolved subgoal:\n" + goal_description
        if advice:
            message += "\n\nhint: " + advice
        super().__init__(message)


class SideConditionFailed(CompileError):
    """A lemma matched but one of its side conditions could not be solved."""

    def __init__(self, lemma: str, obligation: t.Term, state_description: str):
        self.lemma = lemma
        self.obligation = obligation
        super().__init__(
            f"lemma {lemma!r} applies, but its side condition could not be "
            f"discharged:\n  {t.pretty(obligation)}\n"
            f"in context:\n{state_description}\n\n"
            "hint: prove this property at the source level and register it "
            "as a fact, or plug in a solver that recognizes it (§3.4.2, "
            "'incidental' properties)."
        )
