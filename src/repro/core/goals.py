"""Compilation goals and stall-and-report errors.

Rupicola "makes as much progress as possible and then presents unsolved
compilation subgoals to the user, who may then plug in new lemmas ...
users never have to guess at what is happening: they can learn the shape
of missing lemmas from the goals printed by Rupicola" (§3.1).  The errors
below carry that same information: the goal being attempted (rendered in
the judgment syntax of §3.3), the databases consulted, and -- for side
conditions -- the exact obligation no solver could discharge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from repro.source import terms as t
from repro.source.types import SourceType

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.sepstate import SymState
    from repro.core.spec import FnSpec


@dataclass
class BindingGoal:
    """Compile ``let/n name := value in ...`` -- one target assignment.

    ``monadic`` distinguishes ``let/n!`` (monadic bind) from plain lets;
    most lemmas do not care, which is how "a single lemma for compiling
    (pure) addition [applies] to all monadic programs" (§3.4.1).
    """

    state: "SymState"
    name: str
    value: t.Term
    spec: "FnSpec"
    monadic: bool = False
    # Multi-target bindings (let/n (r, c) := ... -- the CAS of §3.4.2):
    # when set, `name` is names[0] and lemmas supporting tuple targets
    # consult the full list.
    names: Optional[tuple] = None

    def describe(self) -> str:
        binder = ", ".join(self.names) if self.names else self.name
        header = "{ t; m; l; sigma } ?c { pred (let/n%s %s := %s in ...) }" % (
            "!" if self.monadic else "",
            binder,
            t.pretty(self.value),
        )
        return header + "\n" + self.state.describe()


@dataclass
class ExprGoal:
    """Compile a scalar source term into a Bedrock2 expression.

    The judgment is the paper's ``EXPR m l E (value)``: find ``E`` such
    that evaluating it under the symbolic locals/memory yields the word
    encoding of ``term``.
    """

    state: "SymState"
    term: t.Term
    ty: Optional[SourceType] = None

    def describe(self) -> str:
        return f"EXPR m l ?e ({t.pretty(self.term)})\n" + self.state.describe()


@dataclass
class StallReport:
    """A machine-readable stall-and-report record (§3.1, made structured).

    Every stall the pipeline emits carries one of these so that tools --
    the fuzzer, the fault campaign, the CLI's JSON output -- can consume
    stalls without parsing prose.  ``reason`` is a stable slug from the
    taxonomy below; ``goal`` is the unsolved subgoal in the judgment
    syntax of §3.3; ``databases`` names the hint databases (or solver
    bank) consulted; ``nearest_misses`` lists lemmas whose declared
    *shape* matches the goal's head constructor but whose guards refused
    it -- the "shape of missing lemmas" a user learns from.
    """

    # Taxonomy slugs (kept in one place so tools can enumerate them):
    NO_BINDING_LEMMA = "no-binding-lemma"
    NO_EXPR_LEMMA = "no-expr-lemma"
    SIDE_CONDITION = "side-condition-unsolved"
    UNSUPPORTED_SHAPE = "unsupported-shape"
    MISSING_CLAUSE = "missing-memory-clause"
    POSTCONDITION = "postcondition-mismatch"
    SPEC_MISMATCH = "spec-mismatch"
    OUT_OF_SCOPE = "out-of-scope-value"
    RESOURCE_EXHAUSTED = "resource-exhausted"
    INTERNAL = "internal-error"

    reason: str = UNSUPPORTED_SHAPE
    goal: str = ""
    family: str = ""  # which component raised: "engine", "stdlib.loops", ...
    databases: Tuple[str, ...] = ()
    hint: str = ""
    nearest_misses: Tuple[str, ...] = field(default_factory=tuple)
    # The goal term's head constructor (``Term`` subclass name) for
    # NO_*_LEMMA stalls: the row of the auditor's coverage matrix this
    # stall falls under, so predictions can be cross-checked against
    # observed stalls without re-parsing the pretty-printed goal.
    head: str = ""

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "goal": self.goal,
            "family": self.family,
            "databases": list(self.databases),
            "hint": self.hint,
            "nearest_misses": list(self.nearest_misses),
            "head": self.head,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class CompileError(Exception):
    """Base class of compilation failures."""

    @property
    def report(self) -> StallReport:
        """A structured report; subclasses refine it."""
        return StallReport(reason=StallReport.INTERNAL, goal=str(self))

    def to_json(self, indent: Optional[int] = None) -> str:
        return self.report.to_json(indent=indent)


class CompilationStalled(CompileError):
    """No lemma in the hint database applies to the goal.

    This is Rupicola's designed behaviour for unexpected input: stop and
    show the unsolved subgoal so the user can plug in a new lemma.  The
    rendered message (``str(exc)``) is unchanged from the bare-string
    era; the structured taxonomy rides along in keyword-only fields and
    is exposed as ``exc.report`` / ``exc.to_json()``.
    """

    def __init__(
        self,
        goal_description: str,
        advice: str = "",
        *,
        reason: str = StallReport.UNSUPPORTED_SHAPE,
        family: str = "",
        databases: Tuple[str, ...] = (),
        nearest_misses: Tuple[str, ...] = (),
        head: str = "",
    ):
        self.goal_description = goal_description
        self.advice = advice
        self.reason = reason
        self.family = family
        self.databases = tuple(databases)
        self.nearest_misses = tuple(nearest_misses)
        self.head = head
        message = "compilation stalled on unsolved subgoal:\n" + goal_description
        if advice:
            message += "\n\nhint: " + advice
        super().__init__(message)

    @property
    def report(self) -> StallReport:
        return StallReport(
            reason=self.reason,
            goal=self.goal_description,
            family=self.family,
            databases=self.databases,
            hint=self.advice,
            nearest_misses=self.nearest_misses,
            head=self.head,
        )


class SideConditionFailed(CompileError):
    """A lemma matched but one of its side conditions could not be solved."""

    def __init__(
        self,
        lemma: str,
        obligation: t.Term,
        state_description: str,
        solvers: Tuple[str, ...] = (),
    ):
        self.lemma = lemma
        self.obligation = obligation
        self.state_description = state_description
        self.solvers = tuple(solvers)
        super().__init__(
            f"lemma {lemma!r} applies, but its side condition could not be "
            f"discharged:\n  {t.pretty(obligation)}\n"
            f"in context:\n{state_description}\n\n"
            "hint: prove this property at the source level and register it "
            "as a fact, or plug in a solver that recognizes it (§3.4.2, "
            "'incidental' properties)."
        )

    @property
    def report(self) -> StallReport:
        return StallReport(
            reason=StallReport.SIDE_CONDITION,
            goal=t.pretty(self.obligation),
            family=f"lemma:{self.lemma}",
            databases=self.solvers,
            hint="register the property as a fact or plug in a solver",
        )


class OutOfScopeValue(CompileError):
    """A binder refers to memory that is no longer available.

    The classic trigger is a stack allocation whose lexical scope ended:
    the ``let/n`` binding still names the object, but its clause left the
    symbolic heap.  Carries the binder name and (when recorded) the
    ``let/n`` binding site so stall reports can point at the source line.
    """

    def __init__(self, name: str, binding_site: Optional[str] = None, kind: str = "variable"):
        self.name = name
        self.binding_site = binding_site
        self.kind = kind
        message = (
            f"{kind} {name!r} refers to an object whose memory is no longer "
            "available (out-of-scope stack allocation?)"
        )
        if binding_site:
            message += f"\n  bound at: let/n {name} := {binding_site}"
        super().__init__(message)

    @property
    def report(self) -> StallReport:
        return StallReport(
            reason=StallReport.OUT_OF_SCOPE,
            goal=f"resolve {self.name}",
            family="engine.resolve",
            hint=(
                f"binding site: let/n {self.name} := {self.binding_site}"
                if self.binding_site
                else "keep stack-allocated objects inside their lexical scope"
            ),
        )


class ResourceExhausted(CompileError):
    """Proof search ran out of fuel or wall-clock budget.

    Raised by the engine when a :class:`repro.resilience.budget.Budget`
    is attached and spent; a typed error (never a hang) so callers can
    fall back to degraded interpretation.
    """

    def __init__(self, resource: str, spent: float, limit: float, goal: str = ""):
        self.resource = resource  # "fuel" | "deadline"
        self.spent = spent
        self.limit = limit
        self.goal = goal
        unit = "steps" if resource == "fuel" else "s"
        message = (
            f"proof search exhausted its {resource} budget "
            f"({spent:g}/{limit:g} {unit})"
        )
        if goal:
            message += f" while attempting:\n{goal}"
        super().__init__(message)

    @property
    def report(self) -> StallReport:
        return StallReport(
            reason=StallReport.RESOURCE_EXHAUSTED,
            goal=self.goal,
            family="engine.budget",
            hint=(
                f"{self.resource} limit {self.limit:g} reached after "
                f"{self.spent:g}; raise the budget or simplify the model"
            ),
        )
