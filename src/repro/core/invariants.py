"""Predicate inference for conditionals and loops (§3.4.2).

The paper's heuristic, reproduced literally:

1. *Identify targets* of the control-flow construct from the names in the
   corresponding bindings.
2. For each target, *classify* it as scalar or pointer by inspecting the
   current locals and memory predicate: no binding / scalar binding means
   scalar; a binding to a pointer that appears in a separation-logic
   clause means pointer.
3. *Abstract* over the corresponding binding (scalars) or heap clause
   value (pointers).
4. *Close over* the results, producing a predicate template parameterized
   on the values of the variables being created or mutated.

For forward edges (conditionals) the template is instantiated with the
source conditional itself -- the merged symbolic value of a target is
literally ``if c then v_then else v_else``, which keeps later syntactic
matching working (the compiler looks for ``cell ?p (if t then ... else
...)``, "not a disjunction").

For loops, the template is instantiated at a *symbolic iteration*: a
fresh ghost counter ``i`` with closed-form partial-execution terms such
as ``map f (firstn i l) ++ skipn i l``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.sepstate import PointerBinding, PtrSym, ScalarBinding, SymState
from repro.source import terms as t
from repro.source.types import NAT, SourceType


@dataclass(frozen=True)
class Target:
    """One variable created or mutated by a control-flow construct."""

    name: str
    kind: str  # "scalar" | "pointer"
    ptr: Optional[PtrSym] = None
    ty: Optional[SourceType] = None


def classify_target(state: SymState, name: str) -> Target:
    """Step 2 of the heuristic: scalar or pointer?

    "'r' because we do not find a binding for it in the map of locals,
    and 'c' because the binding we find for it is to a pointer (p appears
    in the separation-logic predicate cell p c)."
    """
    binding = state.binding(name)
    if binding is None:
        return Target(name, "scalar")
    if isinstance(binding, PointerBinding) and binding.ptr in state.heap:
        return Target(name, "pointer", ptr=binding.ptr, ty=binding.ty)
    if isinstance(binding, ScalarBinding):
        return Target(name, "scalar", ty=binding.ty)
    return Target(name, "scalar")


@dataclass
class PredicateTemplate:
    """The closed-over template of step 4: instantiate with concrete values.

    ``scalar_targets`` and ``pointer_targets`` list, in order, the holes;
    ``instantiate`` plugs source terms into them, yielding the updated
    symbolic state (locals and heap with the holes filled).
    """

    base: SymState
    targets: List[Target]

    def instantiate(
        self,
        values: Dict[str, t.Term],
        scalar_types: Optional[Dict[str, SourceType]] = None,
    ) -> SymState:
        state = self.base.copy()
        scalar_types = scalar_types or {}
        for target in self.targets:
            value = values[target.name]
            if target.kind == "pointer":
                assert target.ptr is not None
                state.set_heap_value(target.ptr, value)
            else:
                ty = scalar_types.get(target.name) or target.ty
                if ty is None:
                    raise ValueError(
                        f"no type known for scalar target {target.name!r}"
                    )
                state.bind_scalar(target.name, value, ty)
        return state


def infer_template(state: SymState, target_names: List[str]) -> PredicateTemplate:
    """Steps 1-4 for a given set of target names."""
    targets = [classify_target(state, name) for name in target_names]
    return PredicateTemplate(base=state, targets=targets)


def merge_conditional(
    state: SymState,
    target_names: List[str],
    cond: t.Term,
    then_values: Dict[str, t.Term],
    else_values: Dict[str, t.Term],
    scalar_types: Optional[Dict[str, SourceType]] = None,
) -> SymState:
    """Join a conditional: each target's merged value is the source ``if``.

    This is precisely the paper's CAS example: the merged state maps
    ``c``'s clause to ``cell p (if t then put c x else c)`` rather than a
    disjunction of postconditions.
    """
    template = infer_template(state, target_names)
    merged: Dict[str, t.Term] = {}
    for name in target_names:
        then_v, else_v = then_values[name], else_values[name]
        merged[name] = then_v if then_v == else_v else t.If(cond, then_v, else_v)
    return template.instantiate(merged, scalar_types)


@dataclass
class LoopInvariant:
    """A loop's inferred invariant: the template plus symbolic-iteration data.

    ``counter`` is the ghost iteration variable; ``at_iteration`` maps each
    target to its closed-form value after ``counter`` iterations (§3.4.2:
    "we create a closed-form term parameterized by the (symbolic)
    iteration number").
    """

    template: PredicateTemplate
    counter: str
    at_iteration: Dict[str, t.Term]
    counter_ty: SourceType = NAT

    def state_at_symbolic_iteration(
        self, scalar_types: Optional[Dict[str, SourceType]] = None
    ) -> SymState:
        return self.template.instantiate(self.at_iteration, scalar_types)


def infer_loop_invariant(
    state: SymState,
    target_names: List[str],
    at_iteration: Dict[str, t.Term],
    counter: str,
) -> LoopInvariant:
    """Build the invariant for a loop whose targets' partial-execution
    closed forms are given by ``at_iteration`` (e.g. the map lemma passes
    ``map f (firstn i l) ++ skipn i l`` for the array target)."""
    template = infer_template(state, target_names)
    return LoopInvariant(template=template, counter=counter, at_iteration=at_iteration)
