"""Derivation certificates.

In Coq, every Rupicola run produces a proof term certifying the derived
Bedrock2 program against its functional model.  Without a proof kernel, we
keep the *architecture*: the (untrusted) proof search records every lemma
application into a :class:`Certificate`; a separate, much smaller checker
(:mod:`repro.validation`) re-validates it.  This matches the paper's own
observation (§5) that "it would not be unreasonable to classify Rupicola
as a translation-validation system, since it uses unverified Ltac scripts
to generate output programs along with 'witnesses' of correctness".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class SideCondition:
    """A discharged obligation: what was proved, and by which solver."""

    description: str
    obligation_pretty: str
    solver: str


@dataclass
class CertNode:
    """One lemma application in the derivation tree."""

    lemma: str
    conclusion: str  # rendering of the goal this node solved
    code: str  # rendering of the code fragment this node contributed
    side_conditions: List[SideCondition] = field(default_factory=list)
    children: List["CertNode"] = field(default_factory=list)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def lemmas_used(self) -> List[str]:
        names = [self.lemma]
        for child in self.children:
            names.extend(child.lemmas_used())
        return names

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}[{self.lemma}] {self.conclusion}"]
        for condition in self.side_conditions:
            lines.append(
                f"{pad}  |- {condition.description}: {condition.obligation_pretty}"
                f"  (by {condition.solver})"
            )
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


@dataclass
class Certificate:
    """The complete derivation for one compiled function."""

    function_name: str
    root: CertNode
    statements_compiled: int = 0

    def size(self) -> int:
        return self.root.size()

    def lemmas_used(self) -> List[str]:
        return self.root.lemmas_used()

    def distinct_lemmas(self) -> List[str]:
        seen: List[str] = []
        for name in self.lemmas_used():
            if name not in seen:
                seen.append(name)
        return seen

    def side_condition_count(self) -> int:
        def count(node: CertNode) -> int:
            return len(node.side_conditions) + sum(count(c) for c in node.children)

        return count(self.root)

    def render(self) -> str:
        return (
            f"Derivation for {self.function_name!r} "
            f"({self.size()} lemma applications, "
            f"{self.side_condition_count()} side conditions):\n"
            + self.root.render(1)
        )
