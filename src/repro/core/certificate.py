"""Derivation certificates.

In Coq, every Rupicola run produces a proof term certifying the derived
Bedrock2 program against its functional model.  Without a proof kernel, we
keep the *architecture*: the (untrusted) proof search records every lemma
application into a :class:`Certificate`; a separate, much smaller checker
(:mod:`repro.validation`) re-validates it.  This matches the paper's own
observation (§5) that "it would not be unreasonable to classify Rupicola
as a translation-validation system, since it uses unverified Ltac scripts
to generate output programs along with 'witnesses' of correctness".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List

# Version header of the canonical serialization.  Bump whenever the
# shape of the serialized tree changes; deserialization refuses other
# versions, and the compilation cache (repro.serve) folds this number
# into its keys so a schema change invalidates every stored entry.
CERT_SCHEMA_VERSION = 1


class CertificateDecodeError(Exception):
    """A serialized certificate is malformed or from another schema."""


@dataclass
class SideCondition:
    """A discharged obligation: what was proved, and by which solver."""

    description: str
    obligation_pretty: str
    solver: str

    def to_dict(self) -> dict:
        return {
            "description": self.description,
            "obligation": self.obligation_pretty,
            "solver": self.solver,
        }

    @staticmethod
    def from_dict(data: dict) -> "SideCondition":
        try:
            return SideCondition(
                description=data["description"],
                obligation_pretty=data["obligation"],
                solver=data["solver"],
            )
        except (KeyError, TypeError) as exc:
            raise CertificateDecodeError(f"bad side condition: {exc!r}") from None


@dataclass
class CertNode:
    """One lemma application in the derivation tree."""

    lemma: str
    conclusion: str  # rendering of the goal this node solved
    code: str  # rendering of the code fragment this node contributed
    side_conditions: List[SideCondition] = field(default_factory=list)
    children: List["CertNode"] = field(default_factory=list)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def lemmas_used(self) -> List[str]:
        names = [self.lemma]
        for child in self.children:
            names.extend(child.lemmas_used())
        return names

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}[{self.lemma}] {self.conclusion}"]
        for condition in self.side_conditions:
            lines.append(
                f"{pad}  |- {condition.description}: {condition.obligation_pretty}"
                f"  (by {condition.solver})"
            )
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "lemma": self.lemma,
            "conclusion": self.conclusion,
            "code": self.code,
            "side_conditions": [c.to_dict() for c in self.side_conditions],
            "children": [c.to_dict() for c in self.children],
        }

    @staticmethod
    def from_dict(data: dict) -> "CertNode":
        try:
            return CertNode(
                lemma=data["lemma"],
                conclusion=data["conclusion"],
                code=data["code"],
                side_conditions=[
                    SideCondition.from_dict(c) for c in data["side_conditions"]
                ],
                children=[CertNode.from_dict(c) for c in data["children"]],
            )
        except CertificateDecodeError:
            raise
        except (KeyError, TypeError) as exc:
            raise CertificateDecodeError(f"bad certificate node: {exc!r}") from None


@dataclass
class Certificate:
    """The complete derivation for one compiled function."""

    function_name: str
    root: CertNode
    statements_compiled: int = 0

    def size(self) -> int:
        return self.root.size()

    def lemmas_used(self) -> List[str]:
        return self.root.lemmas_used()

    def distinct_lemmas(self) -> List[str]:
        seen: List[str] = []
        for name in self.lemmas_used():
            if name not in seen:
                seen.append(name)
        return seen

    def side_condition_count(self) -> int:
        def count(node: CertNode) -> int:
            return len(node.side_conditions) + sum(count(c) for c in node.children)

        return count(self.root)

    def render(self) -> str:
        return (
            f"Derivation for {self.function_name!r} "
            f"({self.size()} lemma applications, "
            f"{self.side_condition_count()} side conditions):\n"
            + self.root.render(1)
        )

    # -- Canonical serialization -------------------------------------------------
    #
    # The JSON form is *canonical*: keys sorted, separators fixed, no
    # whitespace, a versioned schema header first.  Two structurally
    # equal certificates therefore serialize to identical bytes -- the
    # property the content-addressed cache (repro.serve) builds on, and
    # the round-trip stability tests/serve/test_serial.py pins.

    def to_dict(self) -> dict:
        return {
            "schema": CERT_SCHEMA_VERSION,
            "function_name": self.function_name,
            "statements_compiled": self.statements_compiled,
            "root": self.root.to_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "Certificate":
        if not isinstance(data, dict):
            raise CertificateDecodeError(
                f"certificate payload is {type(data).__name__}, not a dict"
            )
        schema = data.get("schema")
        if schema != CERT_SCHEMA_VERSION:
            raise CertificateDecodeError(
                f"certificate schema {schema!r} != {CERT_SCHEMA_VERSION} "
                "(stale or foreign serialization)"
            )
        try:
            return Certificate(
                function_name=data["function_name"],
                root=CertNode.from_dict(data["root"]),
                statements_compiled=data["statements_compiled"],
            )
        except CertificateDecodeError:
            raise
        except (KeyError, TypeError) as exc:
            raise CertificateDecodeError(f"bad certificate: {exc!r}") from None

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, compact, deterministic bytes."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_json(text: str) -> "Certificate":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise CertificateDecodeError(f"not JSON: {exc}") from None
        return Certificate.from_dict(data)
