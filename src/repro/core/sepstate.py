"""Symbolic machine state maintained during proof search.

The paper's statement judgment ``{t; m; l; sigma} c {P p}`` (§3.3) carries
the trace, memory, and locals reached after symbolically executing the
already-derived prefix of the output program.  "Rupicola's compilation
frequently matches (syntactically) against a logical context that captures
the state reached after symbolically executing the already-derived prefix"
(§3.4.2) -- this module is that logical context:

- **locals** map Bedrock2 variable names to what they hold: either a
  *scalar binding* (the value of a given source term) or a *pointer
  binding* (a pointer to a heap object);
- **heap clauses** are separation-logic points-to facts
  ``array p (term)`` / ``cell p (term)`` over symbolic pointers, with an
  implicit frame ``r`` for everything else;
- **facts** are boolean source terms (bounds, length equalities) that
  side-condition solvers may use;
- **trace** entries symbolically describe I/O performed so far.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.source import terms as t
from repro.source.types import SourceType


@dataclass(frozen=True)
class PtrSym:
    """A symbolic pointer (the unknown-but-fixed address of a heap object)."""

    name: str

    def __repr__(self) -> str:
        return f"&{self.name}"


@dataclass(frozen=True)
class ScalarBinding:
    """Local variable holds the (word-encoded) value of ``term``."""

    term: t.Term
    ty: SourceType


@dataclass(frozen=True)
class PointerBinding:
    """Local variable holds a pointer to the heap object named ``ptr``."""

    ptr: PtrSym
    ty: SourceType  # the pointed-to type (array/cell)


Binding = Union[ScalarBinding, PointerBinding]


@dataclass(frozen=True)
class Clause:
    """A separation-logic points-to clause: object of type ``ty`` holding
    the functional value ``value`` lives at ``ptr``.

    ``capacity`` (when known) is the object's element capacity -- needed
    for stack-allocated buffers whose functional length must match.
    """

    ptr: PtrSym
    ty: SourceType
    value: t.Term
    capacity: Optional[int] = None


_ghost_counter = itertools.count()


def reset_ghosts() -> None:
    """Restart the fresh-ghost supply.

    Ghost names are scoped to one derivation; the engine resets the
    supply at each ``compile_function`` entry so a derivation's names
    (and hence its trace) do not depend on what was compiled before it
    in the same process.
    """
    global _ghost_counter
    _ghost_counter = itertools.count()


class SymState:
    """The symbolic precondition of the current compilation goal."""

    def __init__(
        self,
        width: int = 64,
        locals_: Optional[Dict[str, Binding]] = None,
        heap: Optional[Dict[PtrSym, Clause]] = None,
        facts: Optional[List[t.Term]] = None,
        trace: Optional[Tuple[Tuple[str, Tuple[t.Term, ...]], ...]] = None,
        io_reads: int = 0,
        ghost_types: Optional[Dict[str, SourceType]] = None,
    ):
        self.width = width
        self.locals: Dict[str, Binding] = dict(locals_ or {})
        self.heap: Dict[PtrSym, Clause] = dict(heap or {})
        self.facts: List[t.Term] = list(facts or [])
        self.trace: Tuple[Tuple[str, Tuple[t.Term, ...]], ...] = tuple(trace or ())
        self.io_reads = io_reads  # how many io.read events happened so far
        # Types of ghost variables: model parameters and loop counters.
        self.ghost_types: Dict[str, SourceType] = dict(ghost_types or {})
        # Source positions: binder name -> rendering of the `let/n` value
        # it was bound to, recorded by the engine so out-of-scope errors
        # can point at the binding site (a "source line" stand-in).
        self.binding_sites: Dict[str, str] = {}
        # Monotone mutation counter.  The engine's per-derivation
        # subterm-compilation memo keys on (state identity, version):
        # any in-place update moves the version, so a memo entry can
        # never be served against content it was not computed from.
        self.version = 0

    # -- Construction -------------------------------------------------------------

    def copy(self) -> "SymState":
        clone = SymState(
            self.width,
            self.locals,
            self.heap,
            self.facts,
            self.trace,
            self.io_reads,
            self.ghost_types,
        )
        clone.binding_sites = dict(self.binding_sites)
        return clone

    @staticmethod
    def fresh_ghost(prefix: str = "g") -> str:
        return f"_{prefix}{next(_ghost_counter)}"

    # -- Updates -----------------------------------------------------------------

    def bind_scalar(self, name: str, term: t.Term, ty: SourceType) -> None:
        self.version += 1
        self.locals[name] = ScalarBinding(term, ty)

    def bind_pointer(self, name: str, ptr: PtrSym, ty: SourceType) -> None:
        self.version += 1
        self.locals[name] = PointerBinding(ptr, ty)

    def add_clause(self, clause: Clause) -> None:
        if clause.ptr in self.heap:
            raise ValueError(f"heap clause for {clause.ptr!r} already present")
        self.version += 1
        self.heap[clause.ptr] = clause

    def set_heap_value(self, ptr: PtrSym, value: t.Term) -> None:
        clause = self.heap[ptr]
        self.version += 1
        self.heap[ptr] = replace(clause, value=value)

    def drop_clause(self, ptr: PtrSym) -> None:
        self.version += 1
        del self.heap[ptr]

    def add_fact(self, fact: t.Term) -> None:
        if fact not in self.facts:
            self.version += 1
            self.facts.append(fact)

    def set_ghost_type(self, name: str, ty: SourceType) -> None:
        """Declare a ghost variable's type (mutates, so versioned)."""
        self.version += 1
        self.ghost_types[name] = ty

    def count_io_read(self) -> None:
        """Record one consumed ``io.read`` event (mutates, so versioned)."""
        self.version += 1
        self.io_reads += 1

    def note_binding_site(self, name: str, rendered_value: str) -> None:
        """Record where ``name`` was last bound (for stall reports)."""
        self.version += 1
        self.binding_sites[name] = rendered_value

    def binding_site(self, name: str) -> Optional[str]:
        return self.binding_sites.get(name)

    def append_trace(self, action: str, args: Tuple[t.Term, ...]) -> None:
        self.version += 1
        self.trace = self.trace + ((action, args),)

    # -- Queries --------------------------------------------------------------------

    def binding(self, name: str) -> Optional[Binding]:
        return self.locals.get(name)

    def pointer_of(self, name: str) -> Optional[PtrSym]:
        binding = self.locals.get(name)
        if isinstance(binding, PointerBinding):
            return binding.ptr
        return None

    def clause_of_local(self, name: str) -> Optional[Clause]:
        ptr = self.pointer_of(name)
        return self.heap.get(ptr) if ptr is not None else None

    def find_local_by_value(self, term: t.Term) -> Optional[str]:
        """Reverse lookup: which local currently holds the value of ``term``?

        This is the engine's analogue of Coq matching a hypothesis like
        ``map.get l v = Some x`` -- purely syntactic, as in the paper.
        """
        for name, binding in self.locals.items():
            if isinstance(binding, ScalarBinding) and binding.term == term:
                return name
        return None

    def find_pointer_local(self, ptr: PtrSym) -> Optional[str]:
        for name, binding in self.locals.items():
            if isinstance(binding, PointerBinding) and binding.ptr == ptr:
                return name
        return None

    def value_of(self, name: str) -> Optional[t.Term]:
        """The functional value currently associated with binder ``name``."""
        binding = self.locals.get(name)
        if isinstance(binding, ScalarBinding):
            return binding.term
        if isinstance(binding, PointerBinding):
            clause = self.heap.get(binding.ptr)
            return clause.value if clause is not None else None
        return None

    def used_names(self) -> set:
        return set(self.locals)

    def fresh_local(self, prefix: str) -> str:
        if prefix not in self.locals:
            return prefix
        for index in itertools.count():
            candidate = f"{prefix}_{index}"
            if candidate not in self.locals:
                return candidate
        raise AssertionError("unreachable")

    # -- Rendering (for stall messages) ----------------------------------------------

    def describe(self) -> str:
        lines = ["locals:"]
        for name, binding in sorted(self.locals.items()):
            if isinstance(binding, ScalarBinding):
                lines.append(f'  "{name}" := {t.pretty(binding.term)} : {binding.ty!r}')
            else:
                lines.append(f'  "{name}" := {binding.ptr!r} : {binding.ty!r}*')
        lines.append("memory:")
        for ptr, clause in sorted(self.heap.items(), key=lambda kv: kv[0].name):
            lines.append(f"  {clause.ty!r} {ptr!r} ({t.pretty(clause.value)}) * ...")
        if self.facts:
            lines.append("facts:")
            for fact in self.facts:
                lines.append(f"  {t.pretty(fact)}")
        return "\n".join(lines)
