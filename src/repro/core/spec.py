"""Function specifications: the binary interface (ABI) of §3.2.

A Rupicola user supplies, besides the functional model, "a binary
interface (an ABI, the collection of low-level representation choices
that are visible to other low-level code but abstracted-away in the
high-level code)" -- the ``fnspec`` of the paper's upstr example.  Our
:class:`FnSpec` carries the same information:

- how each Bedrock2 argument relates to a model parameter (a scalar
  value, a pointer to an array/cell, or the length of an array);
- how the model's result is returned (scalar return values and/or the
  final contents of pointed-to memory);
- extra *incidental* facts about the inputs that side-condition solvers
  may use (§3.4.2).

``FnSpec.initial_state`` builds the symbolic precondition the proof
search starts from, and the validation harness uses the same spec to set
up concrete memory when differentially testing compiled code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import Certificate
from repro.core.sepstate import Clause, PtrSym, SymState
from repro.source import terms as t
from repro.source.types import NAT, WORD, SourceType, TypeKind


class ArgKind(enum.Enum):
    SCALAR = "scalar"  # the argument word is the value of a scalar param
    POINTER = "pointer"  # the argument word points at an array/cell param
    LENGTH = "length"  # the argument word is of_nat (length param)


@dataclass(frozen=True)
class ArgSpec:
    """One Bedrock2 argument and its relation to a model parameter.

    For POINTER arguments, ``name`` must equal the model binder name used
    in the source's ``let/n`` bindings: that is how the compiler knows a
    rebinding of that name is an in-place mutation of this argument.
    """

    name: str
    kind: ArgKind
    param: str
    ty: SourceType  # scalar type, or the pointed-to composite type


def scalar_arg(name: str, param: Optional[str] = None, ty: SourceType = WORD) -> ArgSpec:
    return ArgSpec(name, ArgKind.SCALAR, param or name, ty)


def ptr_arg(name: str, ty: SourceType, param: Optional[str] = None) -> ArgSpec:
    if ty.kind not in (TypeKind.ARRAY, TypeKind.CELL):
        raise ValueError("pointer arguments point at arrays or cells")
    return ArgSpec(name, ArgKind.POINTER, param or name, ty)


def len_arg(name: str, param: str) -> ArgSpec:
    return ArgSpec(name, ArgKind.LENGTH, param, WORD)


class OutKind(enum.Enum):
    SCALAR = "scalar"  # returned through a Bedrock2 return variable
    ARRAY = "array"  # left in the memory pointed to by an argument
    ERROR_FLAG = "error_flag"  # 1 iff no error-monad guard failed


@dataclass(frozen=True)
class Output:
    """One component of the model's result and how the target delivers it."""

    kind: OutKind
    param: Optional[str] = None  # for ARRAY outputs: which pointer argument


def scalar_out() -> Output:
    return Output(OutKind.SCALAR)


def array_out(param: str) -> Output:
    return Output(OutKind.ARRAY, param)


def error_out() -> Output:
    """The error monad's success flag: it has no model-term component (the
    model's error state is ambient); by convention it is the first output
    and hence the first Bedrock2 return value."""
    return Output(OutKind.ERROR_FLAG)


@dataclass
class Model:
    """An annotated functional model: parameters, body term, result type."""

    name: str
    params: List[Tuple[str, SourceType]]
    term: t.Term
    result_ty: Optional[SourceType] = None

    def param_type(self, name: str) -> SourceType:
        for param, ty in self.params:
            if param == name:
                return ty
        raise KeyError(f"model {self.name!r} has no parameter {name!r}")


@dataclass
class FnSpec:
    """The ``fnspec!`` of §3.2: requires/ensures as structured data."""

    fname: str
    args: List[ArgSpec]
    outputs: List[Output] = field(default_factory=list)
    facts: List[t.Term] = field(default_factory=list)
    # For the state monad: which pointer argument holds the threaded state.
    state_param: Optional[str] = None

    def arg_names(self) -> Tuple[str, ...]:
        return tuple(arg.name for arg in self.args)

    @property
    def has_error_flag(self) -> bool:
        return any(out.kind is OutKind.ERROR_FLAG for out in self.outputs)

    def arg_for_param(self, param: str, kind: ArgKind) -> Optional[ArgSpec]:
        for arg in self.args:
            if arg.param == param and arg.kind == kind:
                return arg
        return None

    @staticmethod
    def ghost_name(param: str) -> str:
        """The ghost variable standing for a parameter's *initial* value.

        Ghosts live in a separate namespace from Bedrock2 locals (Coq
        keeps these apart automatically; we suffix with ``#in``), so that
        resolving terms against the evolving symbolic state never
        re-interprets an already-resolved occurrence.
        """
        return f"{param}#in"

    def initial_state(self, model: Model, width: int = 64) -> SymState:
        """Build the symbolic precondition (the requires clause)."""
        state = SymState(width=width)
        ghosts = {param: self.ghost_name(param) for param, _ in model.params}
        for param, ty in model.params:
            state.set_ghost_type(ghosts[param], ty)
        for arg in self.args:
            ghost = ghosts.get(arg.param, self.ghost_name(arg.param))
            state.ghost_types.setdefault(
                ghost, arg.ty if arg.kind is not ArgKind.LENGTH else arg.ty
            )
            param_term = t.Var(ghost)
            if arg.kind is ArgKind.POINTER and arg.ty.kind is TypeKind.CELL:
                # A cell's functional value is its content.
                param_term = t.CellGet(t.Var(ghost))
            if arg.kind is ArgKind.SCALAR:
                if arg.ty is NAT:
                    # A nat passed in a word: the local physically holds
                    # of_nat(param) -- the NAT-binding convention shared
                    # with compile_set_scalar -- and the param is known
                    # to fit in a word.
                    state.add_fact(
                        t.Prim("nat.ltb", (param_term, t.Lit(1 << width, NAT)))
                    )
                state.bind_scalar(arg.name, param_term, arg.ty)
            elif arg.kind is ArgKind.POINTER:
                ptr = PtrSym(f"p_{arg.name}")
                state.bind_pointer(arg.name, ptr, arg.ty)
                state.add_clause(Clause(ptr=ptr, ty=arg.ty, value=param_term))
            elif arg.kind is ArgKind.LENGTH:
                # NAT-binding convention: the local physically holds
                # of_nat (length param); the binding records the nat term.
                length = t.ArrayLen(t.Var(ghost))
                state.bind_scalar(arg.name, length, NAT)
                # wlen = of_nat (length s) implies length s fits in a word.
                state.add_fact(t.Prim("nat.ltb", (length, t.Lit(1 << width, NAT))))
        # User-supplied incidental facts are written over parameter names;
        # rewrite them over the entry ghosts.
        for fact in self.facts:
            for param, ghost in ghosts.items():
                fact = t.subst(fact, param, t.Var(ghost))
            state.add_fact(fact)
        return state


@dataclass
class CompiledFunction:
    """The result of a derivation: code + certificate + provenance.

    The Coq analogue is the pair produced by ``Derive``: the Bedrock2
    program ``upstr_br2fn`` and its correctness proof ``upstr_br2fn_ok``.
    """

    bedrock_fn: ast.Function
    certificate: Certificate
    spec: FnSpec
    model: Model
    # Set by ``optimize``: the per-pass certificates of the optimizer run
    # that produced this bundle's code (None for unoptimized output).
    opt_report: Optional[object] = None

    @property
    def name(self) -> str:
        return self.bedrock_fn.name

    def c_source(self) -> str:
        from repro.bedrock2.c_printer import print_c_function

        return print_c_function(self.bedrock_fn)

    def statement_count(self) -> int:
        return ast.statement_count(self.bedrock_fn.body)

    def optimize(
        self,
        level: int = 1,
        *,
        trials: int = 8,
        rng=None,
        input_gen=None,
        width: int = 64,
        lift_validate: bool = False,
    ) -> "CompiledFunction":
        """Run the translation-validated optimizer (``repro.opt``).

        Every pass is checked: well-formedness plus a differential test
        of the candidate against this bundle's model under its spec.  A
        failing pass is rejected and the pipeline continues from the
        pre-pass AST, so the result is never less correct than the
        input.  The returned bundle carries the per-pass certificates in
        ``opt_report``; ``level <= 0`` returns ``self`` unchanged.

        ``lift_validate=True`` adds the ``repro.lift`` end-to-end check:
        the pipeline output is lifted back to a functional model and
        cross-checked against this bundle's model; drift rejects the
        whole optimization (see
        :func:`repro.validation.passcheck.optimize_compiled`).
        """
        if level <= 0:
            return self
        from repro.validation.passcheck import optimize_compiled

        optimized, _ = optimize_compiled(
            self,
            level=level,
            trials=trials,
            rng=rng,
            input_gen=input_gen,
            width=width,
            lift_validate=lift_validate,
        )
        return optimized
