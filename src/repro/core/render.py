"""Shared rendering of code fragments and goal shapes.

Certificate nodes, stall reports, and flight-recorder events all show
the user fragments of the derivation: the statement head a lemma
emitted, the expression it compiled, the head constructor of the source
term it was looking at.  Keeping the renderers in one module guarantees
the three surfaces format identically -- a trace's ``lemma_hit`` event
and the certificate node it produced agree character-for-character on
the code fragment, and a stall report names the same head-constructor
shape a ``lemma_miss`` event does.
"""

from __future__ import annotations

from repro.bedrock2 import ast


def render_expr(expr: ast.Expr) -> str:
    """Render a Bedrock2 expression for certificates and trace events."""
    return repr(expr)


def render_stmt_head(stmt) -> str:
    """Render the head of a Bedrock2 statement (one level deep).

    ``WrapStmt`` placeholders (stack allocations awaiting their
    continuation) render with an explicit marker, and sequences show
    only their first component, so the rendering stays one line no
    matter how large the compiled fragment is.
    """
    from repro.core.lemma import WrapStmt

    if isinstance(stmt, WrapStmt):
        return "SStackalloc(..., <continuation>)"
    if isinstance(stmt, ast.SSeq):
        return f"SSeq({render_stmt_head(stmt.first)}, ...)"
    return type(stmt).__name__


def term_head(term) -> str:
    """The head-constructor shape of a source term (``Term`` class name).

    This is the shape stall reports teach users to write lemmas against
    (§3.1's "shape of the missing lemma") and the shape ``lemma_hit`` /
    ``lemma_miss`` trace events carry.
    """
    return type(term).__name__
