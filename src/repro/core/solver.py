"""Side-condition solvers.

Compilation lemmas come with logical side conditions -- array-bounds
checks, no-overflow obligations for nat arithmetic, length-preservation
facts.  The paper distinguishes (§3.4.2):

- **structural** properties, inherent to a representation choice (a
  mutated array keeps its length): here these are *normalization rules*
  on length terms, applied before linear reasoning;
- **incidental** properties, specific to one program: users prove them at
  the source level and plug them in as facts (``FnSpec.facts`` or lemma
  hints); the solvers then combine them with linear arithmetic, playing
  the role of the paper's "Coq linear-arithmetic solver" (lia).

The main solver is a small, sound (not complete) Fourier-Motzkin
entailment checker over the naturals: facts and the negated obligation are
linearized over atoms (variables, array lengths, opaque subterms); if the
combined system is infeasible over the rationals, the obligation follows.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.source import terms as t
from repro.source.types import NAT

# A linear form: mapping from atom (a canonical Term) to coefficient, plus
# a constant; represents  sum(coeff * atom) + const.  Coefficients are
# plain ints: linearization introduces only integers and Fourier-Motzkin
# eliminates by cross-multiplying with coefficient magnitudes (never
# dividing), so the system stays integral -- exact, and much cheaper
# than rational arithmetic on the discharge hot path.
LinearForm = Tuple[Dict[t.Term, int], int]

# -- Node memos over hash-consed terms ------------------------------------------------
#
# ``canonicalize``/``_linearize``/``_fact_to_inequalities`` are pure term
# walks, and the solver re-runs them for every fact on every discharge.
# Hash-consing makes them memoizable by node *identity*: a canonical node
# (``_hc_canonical``) is pinned forever by the intern table, so its
# ``id()`` is a stable key, and each entry stores ``(node, result)`` so a
# hit is re-validated by identity.  The memos are registered with
# :func:`repro.source.terms.register_node_memo` (cleared with the table)
# and gated on :func:`~repro.source.terms.interning_enabled` so that
# ``--no-intern`` disables the whole layer, not just the table.  Results
# are shared, never mutated: every consumer builds fresh dicts/lists
# (``_add``, ``_scale``, ``_fourier_motzkin_infeasible``).

_CANON_MEMO: Dict[int, tuple] = t.register_node_memo({})
_LINEARIZE_MEMO: Dict[int, tuple] = t.register_node_memo({})
_FACT_INEQ_MEMO: Dict[int, tuple] = t.register_node_memo({})


def _node_memo(memo: Dict[int, tuple]):
    """Memoize a unary pure term walk over canonical (interned) nodes."""

    def wrap(walk):
        def wrapped(term):
            if not t.interning_enabled():
                return walk(term)
            entry = memo.get(id(term))
            if entry is not None and entry[0] is term:
                return entry[1]
            result = walk(term)
            if term.__dict__.get("_hc_canonical"):
                memo[id(term)] = (term, result)
            return result

        wrapped.__name__ = walk.__name__
        wrapped.__doc__ = walk.__doc__
        return wrapped

    return wrap


# -- Structural normalization of length terms ----------------------------------------


def normalize_len(arr: t.Term) -> t.Term:
    """A canonical nat term for ``length arr``.

    Encodes the structural facts of §3.4.2: mutation preserves length,
    maps preserve length, the inferred loop-invariant shape
    ``map f (firstn i l) ++ skipn i l`` has the length of ``l``, etc.
    """
    if isinstance(arr, t.ArrayPut):
        return normalize_len(arr.arr)
    if isinstance(arr, t.ArrayMap):
        return normalize_len(arr.arr)
    if isinstance(arr, (t.Copy, t.Stack)):
        return normalize_len(arr.value)
    if isinstance(arr, t.NdAllocBytes):
        return t.Lit(arr.nbytes, NAT)
    if isinstance(arr, t.Append):
        first = normalize_len(arr.first)
        second = normalize_len(arr.second)
        # The invariant shape: firstn i l ++ skipn i l == l.
        if isinstance(first, t.FirstN) or isinstance(second, t.SkipN):
            pass  # fall through to the arithmetic below
        return t.Prim("nat.add", (first, second))
    if isinstance(arr, t.FirstN):
        # length (firstn n l) = min n (length l); exact when n <= length l,
        # which the loop invariants that produce this shape always know.
        return _MinLen(arr)
    if isinstance(arr, t.SkipN):
        # length (skipn n l) = length l - n (truncated).
        return t.Prim("nat.sub", (normalize_len(arr.arr), _as_nat(arr.count)))
    if isinstance(arr, t.If):
        then_len = normalize_len(arr.then_)
        else_len = normalize_len(arr.else_)
        if then_len == else_len:
            return then_len
        return t.ArrayLen(arr)
    if isinstance(arr, t.Lit) and isinstance(arr.value, (list, tuple)):
        return t.Lit(len(arr.value), NAT)
    # Open extension point: array-producing Term subclasses from other
    # packages (repro.query) contribute their own structural length rule
    # (e.g. a projection writes one element per element of its target).
    hook = getattr(arr, "normalize_len_node", None)
    if hook is not None:
        return hook(normalize_len)
    return t.ArrayLen(arr)


def _as_nat(term: t.Term) -> t.Term:
    return term


def _MinLen(arr: t.FirstN) -> t.Term:
    """``min n (length l)`` represented for the linearizer.

    We keep it as a FirstN-headed length atom; the linearizer treats it
    opaquely, and the special Append rule above handles the common
    invariant shape exactly.
    """
    return t.ArrayLen(arr)


def normalize_append_len(first: t.Term, second: t.Term) -> Optional[t.Term]:
    """Recognize ``anything-of-length-(firstn i l) ++ skipn i l``."""
    if isinstance(second, t.SkipN):
        inner_first = first
        if isinstance(inner_first, t.ArrayMap):
            inner_first = inner_first.arr
        else:
            # Open extension point: external loop-invariant shapes (e.g.
            # repro.query's projection) expose the prefix array whose
            # length they preserve.
            prefix = getattr(inner_first, "invariant_prefix_node", None)
            if prefix is not None:
                inner_first = prefix()
        if (
            isinstance(inner_first, t.FirstN)
            and inner_first.arr == second.arr
            and inner_first.count == second.count
        ):
            return normalize_len(second.arr)
    return None


@_node_memo(_CANON_MEMO)
def canonicalize(term: t.Term) -> t.Term:
    """Normalize length subterms so syntactic lookups see through mutation.

    ``of_nat (length (map f s))`` and ``of_nat (length s)`` denote the
    same word; canonicalizing both to the latter lets the local-lookup
    lemma find the ``len`` argument even after the array's symbolic value
    has been rewritten by mutation lemmas.
    """
    if isinstance(term, t.ArrayLen):
        special = None
        if isinstance(term.arr, t.Append):
            special = normalize_append_len(term.arr.first, term.arr.second)
        normalized = special if special is not None else normalize_len(term.arr)
        if isinstance(normalized, t.ArrayLen):
            if normalized.arr is term.arr or normalized == term:
                return t.ArrayLen(canonicalize(normalized.arr))
            return canonicalize(normalized)
        return canonicalize(normalized)
    if isinstance(term, t.Prim):
        return t.Prim(term.op, tuple(canonicalize(a) for a in term.args))
    if isinstance(term, t.If):
        return t.If(
            canonicalize(term.cond), canonicalize(term.then_), canonicalize(term.else_)
        )
    if isinstance(term, t.ArrayGet):
        return t.ArrayGet(canonicalize(term.arr), canonicalize(term.index))
    if isinstance(term, t.TableGet):
        return t.TableGet(term.data, term.elem_ty, canonicalize(term.index))
    return term


# -- Linearization --------------------------------------------------------------------


@_node_memo(_LINEARIZE_MEMO)
def _linearize(term: t.Term) -> LinearForm:
    """Linearize a nat term over atoms; unknown structure becomes an atom."""
    if isinstance(term, t.Lit) and isinstance(term.value, int):
        return {}, term.value
    if isinstance(term, t.Prim):
        if term.op == "nat.add":
            return _add(_linearize(term.args[0]), _linearize(term.args[1]), 1)
        if term.op == "nat.mul":
            lhs, rhs = term.args
            if isinstance(lhs, t.Lit) and isinstance(lhs.value, int):
                return _scale(_linearize(rhs), lhs.value)
            if isinstance(rhs, t.Lit) and isinstance(rhs.value, int):
                return _scale(_linearize(lhs), rhs.value)
            return {_canonical(term): 1}, 0
        if term.op == "cast.to_nat" or term.op == "cast.b2n":
            return {_canonical(term): 1}, 0
        # nat.sub is truncated; sound only with relational knowledge, so it
        # stays opaque (see module docstring).
    if isinstance(term, t.ArrayLen):
        normalized = normalize_len(term.arr)
        if isinstance(term.arr, t.Append):
            special = normalize_append_len(term.arr.first, term.arr.second)
            if special is not None:
                normalized = special
        if normalized != term:
            return _linearize(normalized)
        return {_canonical(term): 1}, 0
    if isinstance(term, t.Append):
        return _linearize(t.ArrayLen(term))  # pragma: no cover - defensive
    return {_canonical(term): 1}, 0


def _canonical(term: t.Term) -> t.Term:
    if isinstance(term, t.ArrayLen):
        inner = normalize_len(term.arr)
        if isinstance(inner, t.ArrayLen):
            return inner
        return term
    return term


def _add(a: LinearForm, b: LinearForm, sign: int) -> LinearForm:
    coeffs = dict(a[0])
    for atom, coeff in b[0].items():
        coeffs[atom] = coeffs.get(atom, 0) + sign * coeff
        if coeffs[atom] == 0:
            del coeffs[atom]
    return coeffs, a[1] + sign * b[1]


def _scale(a: LinearForm, factor: int) -> LinearForm:
    return {k: v * factor for k, v in a[0].items() if v * factor != 0}, a[1] * factor


# -- Inequality systems and Fourier-Motzkin --------------------------------------------


@_node_memo(_FACT_INEQ_MEMO)
def _fact_to_inequalities(fact: t.Term) -> List[LinearForm]:
    """Turn a boolean fact into 0 or more ``expr <= 0`` forms."""
    if isinstance(fact, t.Prim):
        if fact.op in ("nat.ltb", "word.ltu", "byte.ltu"):
            lhs, rhs = (_linearize(a) for a in fact.args)
            # a < b  ~>  a - b + 1 <= 0 (integers)
            combined = _add(lhs, rhs, -1)
            return [(combined[0], combined[1] + 1)]
        if fact.op == "nat.leb":
            lhs, rhs = (_linearize(a) for a in fact.args)
            return [_add(lhs, rhs, -1)]
        if fact.op in ("nat.eqb", "word.eq"):
            lhs, rhs = (_linearize(a) for a in fact.args)
            le = _add(lhs, rhs, -1)
            ge = _add(rhs, lhs, -1)
            return [le, ge]
    return []


def _negate_obligation(obligation: t.Term) -> Optional[List[LinearForm]]:
    """Inequalities equivalent to the *negation* of the obligation."""
    if isinstance(obligation, t.Lit) and obligation.value is True:
        return None  # trivially true; nothing to refute
    if isinstance(obligation, t.Prim):
        if obligation.op in ("nat.ltb", "word.ltu", "byte.ltu"):
            lhs, rhs = (_linearize(a) for a in obligation.args)
            # not (a < b)  ~>  b <= a  ~>  b - a <= 0
            return [_add(rhs, lhs, -1)]
        if obligation.op == "nat.leb":
            lhs, rhs = (_linearize(a) for a in obligation.args)
            # not (a <= b)  ~>  b + 1 <= a
            combined = _add(rhs, lhs, -1)
            return [(combined[0], combined[1] + 1)]
        if obligation.op == "nat.eqb":
            # Disequality needs a disjunction; handled by trying both sides.
            return []  # signal: use equality-specific handling
    return []


def _fourier_motzkin_infeasible(system: List[LinearForm]) -> bool:
    """Is the conjunction of ``expr <= 0`` constraints infeasible (rationals)?"""
    constraints = [c for c in system]
    variables: List[t.Term] = []
    for coeffs, _ in constraints:
        for atom in coeffs:
            if atom not in variables:
                variables.append(atom)
    for var in variables:
        positive, negative, others = [], [], []
        for coeffs, const in constraints:
            coeff = coeffs.get(var, 0)
            if coeff > 0:
                positive.append((coeffs, const))
            elif coeff < 0:
                negative.append((coeffs, const))
            else:
                others.append((coeffs, const))
        combined = list(others)
        for pos_coeffs, pos_const in positive:
            for neg_coeffs, neg_const in negative:
                scale_pos = -neg_coeffs[var]
                scale_neg = pos_coeffs[var]
                merged: Dict[t.Term, int] = {}
                for atom, coeff in pos_coeffs.items():
                    merged[atom] = merged.get(atom, 0) + scale_pos * coeff
                for atom, coeff in neg_coeffs.items():
                    merged[atom] = merged.get(atom, 0) + scale_neg * coeff
                merged = {k: v for k, v in merged.items() if v != 0}
                merged.pop(var, None)
                combined.append((merged, scale_pos * pos_const + scale_neg * neg_const))
        constraints = combined
        if len(constraints) > 2000:  # defensive blow-up guard
            return False
    return any(not coeffs and const > 0 for coeffs, const in constraints)


# -- Solvers ------------------------------------------------------------------------------


SolverFn = Callable[[t.Term, "object"], bool]  # (obligation, state) -> solved?


def ground_eval_solver(obligation: t.Term, state) -> bool:
    """Discharge closed obligations by evaluation (Coq's ``vm_compute``)."""
    from repro.source.evaluator import EvalError, eval_term

    if t.free_vars(obligation):
        return False
    try:
        return bool(eval_term(obligation, {}, width=getattr(state, "width", 64)))
    except EvalError:
        return False


def _collect_atoms(system: List[LinearForm]) -> set:
    atoms = set()
    for coeffs, _ in system:
        atoms.update(coeffs)
    return atoms


def _saturate_subtractions(system: List[LinearForm], state, depth: int) -> None:
    """Make truncated ``nat.sub`` atoms precise where possible.

    ``nat.sub a b`` always satisfies ``s >= a - b`` and ``s >= 0``; when
    the context proves ``b <= a`` (checked by a depth-limited recursive
    call), it additionally equals ``a - b``.  This is what lets
    ``s[len - 1 - i]`` bounds checks go through from ``i < len``.
    """
    if depth <= 0:
        return
    saturated = set()
    while True:
        fresh = [
            atom
            for atom in _collect_atoms(system)
            if isinstance(atom, t.Prim)
            and atom.op == "nat.sub"
            and atom not in saturated
        ]
        if not fresh:
            return
        for atom in fresh:
            saturated.add(atom)
            lhs, rhs = atom.args
            lhs_form, rhs_form = _linearize(lhs), _linearize(rhs)
            atom_form: LinearForm = ({atom: 1}, 0)
            # s >= a - b  ~>  a - b - s <= 0  (holds unconditionally).
            lower = _add(_add(lhs_form, rhs_form, -1), atom_form, -1)
            system.append(lower)
            # s <= a  ~>  s - a <= 0  (holds unconditionally).
            system.append(_add(atom_form, lhs_form, -1))
            # When b <= a is provable, the subtraction is exact: s <= a - b.
            if _entails(t.Prim("nat.leb", (rhs, lhs)), state, depth - 1):
                upper = _add(atom_form, _add(lhs_form, rhs_form, -1), -1)
                system.append(upper)


def _entails(obligation: t.Term, state, depth: int) -> bool:
    """Depth-limited entailment used by the subtraction saturation."""
    negated = _negate_obligation(obligation)
    if negated is None:
        return True
    if not negated:
        return False
    system: List[LinearForm] = list(negated)
    for fact in getattr(state, "facts", []):
        system.extend(_fact_to_inequalities(fact))
    _saturate_subtractions(system, state, depth)
    for atom in _collect_atoms(system):
        system.append(({atom: -1}, 0))
    return _fourier_motzkin_infeasible(system)


def linear_arithmetic_solver(obligation: t.Term, state) -> bool:
    """The lia-style solver: facts + nat nonnegativity |= obligation?"""
    negated = _negate_obligation(obligation)
    if negated is None:
        return True
    if isinstance(obligation, t.Prim) and obligation.op == "nat.eqb":
        # a = b iff a <= b and b <= a.
        lhs, rhs = obligation.args
        le = t.Prim("nat.leb", (lhs, rhs))
        ge = t.Prim("nat.leb", (rhs, lhs))
        return linear_arithmetic_solver(le, state) and linear_arithmetic_solver(
            ge, state
        )
    if not negated:
        return False
    system: List[LinearForm] = list(negated)
    for fact in getattr(state, "facts", []):
        system.extend(_fact_to_inequalities(fact))
    _saturate_subtractions(system, state, depth=2)
    # Saturate with division semantics: for every atom D = X / k (k a
    # positive literal), add  k*D <= X  and  X <= k*D + (k-1).  This is
    # what lets e.g. ``2*i + 1 < len`` follow from ``i < (len+1)/2``.
    atoms = set()
    for coeffs, _ in system:
        atoms.update(coeffs)
    for atom in list(atoms):
        if (
            isinstance(atom, t.Prim)
            and atom.op in ("nat.div", "word.divu")
            and isinstance(atom.args[1], t.Lit)
            and isinstance(atom.args[1].value, int)
            and atom.args[1].value > 0
        ):
            k = atom.args[1].value
            numerator = _linearize(atom.args[0])
            atoms.update(numerator[0])
            d_form: LinearForm = ({atom: k}, 0)
            # k*D - X <= 0
            system.append(_add(d_form, numerator, -1))
            # X - k*D - (k-1) <= 0
            low = _add(numerator, d_form, -1)
            system.append((low[0], low[1] - (k - 1)))
    # Nat atoms are nonnegative: -atom <= 0.  Atoms with structural upper
    # bounds (masks, remainders, byte-typed values) also get  atom <= ub,
    # which lets linear facts and interval reasoning combine (e.g. a
    # masked index against a table whose length is only known as a fact).
    full = 1 << getattr(state, "width", 64)
    for atom in atoms:
        system.append(({atom: -1}, 0))
        bound = upper_bound(atom, getattr(state, "width", 64), state)
        if bound < full - 1:
            system.append(({atom: 1}, -bound))
    return _fourier_motzkin_infeasible(system)


def upper_bound(term: t.Term, width: int, state=None) -> int:
    """A sound (inclusive) upper bound on a scalar term's value.

    This is the interval reasoning a human applies when indexing a
    256-entry table with ``(crc ^ b) & 0xff``: whatever the operands, the
    mask bounds the result.  Unknown structure falls back to the type's
    maximum.
    """
    full = (1 << width) - 1
    if isinstance(term, t.Lit) and isinstance(term.value, int):
        return term.value
    if state is not None:
        # Type-level bounds: bytes are < 256, booleans < 2.
        with contextlib.suppress(Exception):
            from repro.core.typecheck import infer_type
            from repro.source.types import BOOL as _BOOL, BYTE as _BYTE

            ty = infer_type(state, term)
            if ty is _BYTE:
                full = 0xFF
            elif ty is _BOOL:
                full = 1
    if isinstance(term, t.TableGet):
        return max(term.data) if term.data else 0
    if isinstance(term, t.Prim):
        op = term.op
        if op in ("cast.to_nat", "cast.b2w", "cast.b2n", "cast.of_nat", "cast.w2b"):
            inner = upper_bound(term.args[0], width, state)
            return min(inner, 0xFF) if op in ("cast.w2b",) else inner
        if op.endswith(".and"):
            return min(upper_bound(term.args[0], width, state), upper_bound(term.args[1], width, state))
        if op in ("word.remu", "nat.mod"):
            divisor = upper_bound(term.args[1], width, state)
            return max(0, divisor - 1) if divisor > 0 else full
        if op in ("word.shr", "byte.shr"):
            shift = term.args[1]
            if isinstance(shift, t.Lit) and isinstance(shift.value, int):
                return upper_bound(term.args[0], width, state) >> shift.value
        if op in ("nat.add",):
            return upper_bound(term.args[0], width, state) + upper_bound(term.args[1], width, state)
        if op in ("nat.mul",):
            return upper_bound(term.args[0], width, state) * upper_bound(term.args[1], width, state)
        if op.startswith("byte.") or op in ("cast.w2b",):
            return 0xFF
        if op.startswith("bool."):
            return 1
        if op.endswith(".ltu") or op.endswith(".lts") or op.endswith(".eq"):
            return 1
    if isinstance(term, t.If):
        return max(upper_bound(term.then_, width, state), upper_bound(term.else_, width, state))
    if isinstance(term, t.ArrayGet):
        return full  # element bound handled by element type at use sites
    return full


def lower_bound(term: t.Term, width: int, state=None) -> int:
    """A sound (inclusive) lower bound on a scalar term's value.

    The dual of :func:`upper_bound`, used for the mirrored obligation
    shape ``k < x``.  Only rules that cannot wrap are applied; unknown
    structure falls back to 0 (every value here is a natural).
    """
    if isinstance(term, t.Lit) and isinstance(term.value, int):
        return term.value
    if isinstance(term, t.TableGet):
        return min(term.data) if term.data else 0
    if isinstance(term, t.Prim):
        op = term.op
        if op in ("cast.to_nat", "cast.b2n", "cast.b2w"):
            return lower_bound(term.args[0], width, state)
        if op == "cast.of_nat":
            # of_nat wraps; the inner bound survives only if it provably fits.
            if upper_bound(term.args[0], width, state) < (1 << width):
                return lower_bound(term.args[0], width, state)
            return 0
        if op == "nat.add":
            return lower_bound(term.args[0], width, state) + lower_bound(
                term.args[1], width, state
            )
        if op == "nat.mul":
            return lower_bound(term.args[0], width, state) * lower_bound(
                term.args[1], width, state
            )
        if op.endswith(".or"):
            # OR can only set bits.
            return max(
                lower_bound(term.args[0], width, state),
                lower_bound(term.args[1], width, state),
            )
    if isinstance(term, t.If):
        return min(
            lower_bound(term.then_, width, state),
            lower_bound(term.else_, width, state),
        )
    return 0


def bitmask_bounds_solver(obligation: t.Term, state) -> bool:
    """Discharge ``a < k`` / ``a <= k`` obligations by interval reasoning.

    Both orientations are handled: a literal on the right compares the
    other side's :func:`upper_bound`, a literal on the left (``k < x``)
    its :func:`lower_bound`.
    """
    width = getattr(state, "width", 64)
    if isinstance(obligation, t.Prim) and obligation.op in (
        "nat.ltb",
        "word.ltu",
        "byte.ltu",
        "nat.leb",
    ):
        lhs, rhs = obligation.args
        if isinstance(rhs, t.Lit) and isinstance(rhs.value, int):
            bound = upper_bound(lhs, width, state)
            if obligation.op == "nat.leb":
                return bound <= rhs.value
            return bound < rhs.value
        if isinstance(lhs, t.Lit) and isinstance(lhs.value, int):
            bound = lower_bound(rhs, width, state)
            if obligation.op == "nat.leb":
                return lhs.value <= bound
            return lhs.value < bound
    return False


# The obligation heads range_solver understands: exactly those the
# linearizer can turn into ``expr <= 0`` forms (the coverage-matrix
# crosscheck pins observed hits to this set).
RANGE_SOLVER_OPS = frozenset(
    {"nat.ltb", "nat.leb", "nat.eqb", "word.ltu", "byte.ltu", "word.eq"}
)


def range_solver(obligation: t.Term, state) -> bool:
    """Discharge bounds obligations from the precomputed fact-range map.

    The abstract interpreter (:mod:`repro.analysis.absint`) propagates
    the state's facts to an interval per linear atom once per state
    version; an obligation is accepted when each of its linearized
    inequalities is subsumed by a fact or holds at the interval bounds.
    Runs after the structural solvers and before the Fourier-Motzkin
    eliminator, which it exists to short-circuit.
    """
    if not (isinstance(obligation, t.Prim) and obligation.op in RANGE_SOLVER_OPS):
        return False
    from repro.analysis.absint import discharge_bounds

    return discharge_bounds(obligation, state, getattr(state, "width", 64))


DEFAULT_SOLVERS: List[SolverFn] = [
    ground_eval_solver,
    bitmask_bounds_solver,
    range_solver,
    linear_arithmetic_solver,
]


class SolverBank:
    """The registered side-condition solvers, tried in order.

    Solvers are *untrusted*: a lying solver can only cause the engine to
    accept an obligation that later differential validation refutes (the
    fault-injection campaign in :mod:`repro.resilience.faults` exercises
    exactly this), never to change what code a matched lemma emits.
    """

    def __init__(self, solvers: Optional[List[SolverFn]] = None):
        self.solvers: List[SolverFn] = list(
            DEFAULT_SOLVERS if solvers is None else solvers
        )

    def register(self, solver: SolverFn, front: bool = False) -> None:
        if front:
            self.solvers.insert(0, solver)
        else:
            self.solvers.append(solver)

    def names(self) -> List[str]:
        """The registered solvers' names (for structured stall reports)."""
        return [getattr(s, "__name__", repr(s)) for s in self.solvers]

    def solve_with_name(self, obligation: t.Term, state) -> Optional[str]:
        """Try solvers in order; return the winning solver's name, or None.

        This is what lets ``SideCondition`` records, stall reports, and
        the ``absint.solver.*`` obs counters attribute each discharged
        obligation to the solver that actually proved it.
        """
        for solver in self.solvers:
            if solver(obligation, state):
                return getattr(solver, "__name__", repr(solver))
        return None

    def solve(self, obligation: t.Term, state) -> bool:
        return self.solve_with_name(obligation, state) is not None
