"""The relational-compilation engine (the paper's primary contribution).

Relational compilation (§2) recasts a compiler as a database of
correctness lemmas plus a proof-search driver: compiling ``s`` means
proving ``exists t, t ~ s`` and reading the witness ``t`` out of the
derivation.  This package provides the pieces Rupicola builds that idea
from:

- :mod:`repro.core.sepstate` -- the symbolic machine state the search
  maintains (locals bindings, separation-logic heap clauses, facts);
- :mod:`repro.core.goals` -- statement/expression compilation goals and
  the stall-and-report errors (§3.1: "the default reaction to unexpected
  input is to stop and ask for user guidance");
- :mod:`repro.core.lemma` -- the compilation-lemma interface and ordered
  hint databases (Coq's hint databases, §2.3);
- :mod:`repro.core.solver` -- side-condition solvers (linear arithmetic
  over bounds, structural length facts);
- :mod:`repro.core.invariants` -- the predicate-inference heuristic for
  conditionals and loops (§3.4.2);
- :mod:`repro.core.certificate` -- derivation trees recording every lemma
  application (our stand-in for Coq proof terms; checked by
  :mod:`repro.validation`);
- :mod:`repro.core.spec` -- function specifications (the ``fnspec`` ABI
  of §3.2) and compiled-function bundles;
- :mod:`repro.core.engine` -- the deterministic, non-backtracking proof
  search driver (the ``compile.`` tactic).
"""

from repro.core.goals import (
    CompilationStalled,
    CompileError,
    OutOfScopeValue,
    ResourceExhausted,
    SideConditionFailed,
    StallReport,
)
from repro.core.lemma import BindingLemma, ExprLemma, HintDb
from repro.core.sepstate import (
    Clause,
    PointerBinding,
    PtrSym,
    ScalarBinding,
    SymState,
)
from repro.core.certificate import Certificate, CertNode
from repro.core.spec import ArgKind, ArgSpec, CompiledFunction, FnSpec, Model
from repro.core.engine import Engine

__all__ = [
    "CompilationStalled",
    "CompileError",
    "OutOfScopeValue",
    "ResourceExhausted",
    "SideConditionFailed",
    "StallReport",
    "BindingLemma",
    "ExprLemma",
    "HintDb",
    "Clause",
    "PointerBinding",
    "PtrSym",
    "ScalarBinding",
    "SymState",
    "Certificate",
    "CertNode",
    "ArgKind",
    "ArgSpec",
    "CompiledFunction",
    "FnSpec",
    "Model",
    "Engine",
]
