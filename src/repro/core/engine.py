"""The proof-search driver: deterministic, non-backtracking compilation.

This is the Python counterpart of Rupicola's ``compile.`` tactic.  The
engine walks the source program's ``let/n`` spine; for each binding it
consults the *binding* hint database, commits to the first matching lemma
(no backtracking, §3.1), and lets the lemma discharge its premises --
recursive statement subgoals, expression subgoals (via the *expression*
hint database), and logical side conditions (via the solver bank).  Every
application is recorded in a certificate.

A central device is :func:`resolve`: the symbolic state maps binder names
to their functional values *as terms over the model's parameters*, and
resolving a source term against the state rewrites binder references into
those values.  This keeps every recorded value in "ghost" variables only,
so that later syntactic matching (the essence of Rupicola's goal
manipulation) works: after compiling a conditional, an array's symbolic
content really is ``if t then ... else ...``, and the loop lemmas can
search the state for a local holding ``of_nat (length s)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import Certificate, CertNode, SideCondition
from repro.core.goals import (
    BindingGoal,
    CompilationStalled,
    ExprGoal,
    OutOfScopeValue,
    SideConditionFailed,
    StallReport,
)
from repro.core.lemma import HintDb, WrapStmt, index_enabled, lemma_family
from repro.core.render import render_expr, render_stmt_head, term_head
from repro.core.sepstate import PointerBinding, SymState
from repro.core.solver import SolverBank
from repro.core.spec import ArgKind, CompiledFunction, FnSpec, Model, OutKind
from repro.core.typecheck import TypeInferenceError, infer_type
from repro.obs.trace import NULL_SPAN, current_tracer
from repro.source import terms as t
from repro.source.types import BOOL, WORD, SourceType


# Process-wide default for the per-derivation subterm-compilation memo
# (tentpole layer 3).  Like the dispatch index, engines snapshot the flag
# at construction; the CLI's ``--no-memo`` flips it before engines are
# built.  The memo only ever short-circuits *repeat* expression goals
# against an identical symbolic state (same object, same version), so the
# compiled output is the one the un-memoized path would produce -- only
# the work (and the trace counters) shrink.
_MEMO_ENABLED = True


def memo_enabled() -> bool:
    return _MEMO_ENABLED


def set_memo_enabled(enabled: bool) -> bool:
    """Toggle the process-wide subterm-memo default; returns the previous
    value.  Engines snapshot this flag at construction
    (``Engine(memo_subterms=...)`` overrides it per engine)."""
    global _MEMO_ENABLED
    previous = _MEMO_ENABLED
    _MEMO_ENABLED = bool(enabled)
    return previous


def resolve(state: SymState, term: t.Term, shadowed: frozenset = frozenset()) -> t.Term:
    """Rewrite binder references into their symbolic (ghost-level) values."""
    if isinstance(term, t.Var):
        if term.name in shadowed:
            return term
        binding = state.binding(term.name)
        if binding is None:
            return term  # a ghost (model parameter or loop counter)
        value = state.value_of(term.name)
        if value is None:
            raise OutOfScopeValue(
                term.name, binding_site=state.binding_site(term.name)
            )
        tracer = current_tracer()
        if tracer.enabled:
            tracer.inc("resolve.rewrites")
        return value
    if isinstance(term, t.Let):
        inner = shadowed | {term.name}
        return t.Let(
            term.name,
            resolve(state, term.value, shadowed),
            resolve(state, term.body, inner),
        )
    if isinstance(term, t.LetTuple):
        inner = shadowed | set(term.names)
        return t.LetTuple(
            term.names,
            resolve(state, term.value, shadowed),
            resolve(state, term.body, inner),
        )
    if isinstance(term, t.MBind):
        inner = shadowed | {term.name}
        return t.MBind(
            term.name,
            resolve(state, term.ma, shadowed),
            resolve(state, term.body, inner),
        )
    if isinstance(term, t.ArrayMap):
        inner = shadowed | {term.elem_name}
        return t.ArrayMap(
            term.elem_name,
            resolve(state, term.body, inner),
            resolve(state, term.arr, shadowed),
        )
    if isinstance(term, t.ArrayFold):
        inner = shadowed | {term.acc_name, term.elem_name}
        return t.ArrayFold(
            term.acc_name,
            term.elem_name,
            resolve(state, term.body, inner),
            resolve(state, term.init, shadowed),
            resolve(state, term.arr, shadowed),
        )
    if isinstance(term, t.ArrayFoldBreak):
        inner = shadowed | {term.acc_name, term.elem_name}
        pred_shadow = shadowed | {term.acc_name}
        return t.ArrayFoldBreak(
            term.acc_name,
            term.elem_name,
            resolve(state, term.body, inner),
            resolve(state, term.init, shadowed),
            resolve(state, term.arr, shadowed),
            resolve(state, term.break_pred, pred_shadow),
        )
    if isinstance(term, t.RangedFor):
        inner = shadowed | {term.idx_name, term.acc_name}
        return t.RangedFor(
            resolve(state, term.lo, shadowed),
            resolve(state, term.hi, shadowed),
            term.idx_name,
            term.acc_name,
            resolve(state, term.body, inner),
            resolve(state, term.init, shadowed),
        )
    if isinstance(term, t.NatIter):
        inner = shadowed | {term.acc_name}
        return t.NatIter(
            resolve(state, term.count, shadowed),
            term.acc_name,
            resolve(state, term.body, inner),
            resolve(state, term.init, shadowed),
        )
    if isinstance(term, t.CellGet):
        # A cell binder's functional value *is* its content (see FnSpec:
        # cell clauses store content terms), so ``get c`` resolves to the
        # clause value directly and the CellGet node disappears.
        if (
            isinstance(term.cell, t.Var)
            and term.cell.name not in shadowed
            and isinstance(state.binding(term.cell.name), PointerBinding)
        ):
            value = state.value_of(term.cell.name)
            if value is None:
                raise OutOfScopeValue(
                    term.cell.name,
                    binding_site=state.binding_site(term.cell.name),
                    kind="cell",
                )
            tracer = current_tracer()
            if tracer.enabled:
                tracer.inc("resolve.rewrites")
            return value
        return t.CellGet(resolve(state, term.cell, shadowed))
    # Open extension point: Term subclasses from other packages (e.g.
    # repro.query) resolve themselves, respecting their own binders.
    # Without this an unknown node with binders would fall through to the
    # binder-free congruence below and _rebuild would drop its resolved
    # children entirely.
    hook = getattr(term, "resolve_node", None)
    if hook is not None:
        return hook(state, shadowed, resolve)
    # Congruence over nodes without binders, via subst-free reconstruction.
    rebuilt = _rebuild(term, [resolve(state, c, shadowed) for c in term.children()])
    return rebuilt


def _rebuild(term: t.Term, children: List[t.Term]) -> t.Term:
    """Reconstruct a binder-free node with new children (same shapes)."""
    if isinstance(term, t.Prim):
        return t.Prim(term.op, tuple(children))
    if isinstance(term, t.If):
        return t.If(children[0], children[1], children[2])
    if isinstance(term, t.TupleTerm):
        return t.TupleTerm(tuple(children))
    if isinstance(term, t.ArrayLen):
        return t.ArrayLen(children[0])
    if isinstance(term, t.ArrayGet):
        return t.ArrayGet(children[0], children[1])
    if isinstance(term, t.ArrayPut):
        return t.ArrayPut(children[0], children[1], children[2])
    if isinstance(term, t.FirstN):
        return t.FirstN(children[0], children[1])
    if isinstance(term, t.SkipN):
        return t.SkipN(children[0], children[1])
    if isinstance(term, t.Append):
        return t.Append(children[0], children[1])
    if isinstance(term, t.TableGet):
        return t.TableGet(term.data, term.elem_ty, children[0])
    if isinstance(term, t.CellGet):
        return t.CellGet(children[0])
    if isinstance(term, t.CellPut):
        return t.CellPut(children[0], children[1])
    if isinstance(term, t.Stack):
        return t.Stack(children[0])
    if isinstance(term, t.Copy):
        return t.Copy(children[0])
    if isinstance(term, t.Call):
        return t.Call(term.func, tuple(children))
    if isinstance(term, t.MRet):
        return t.MRet(children[0])
    if isinstance(term, t.IOWrite):
        return t.IOWrite(children[0])
    if isinstance(term, t.WriterTell):
        return t.WriterTell(children[0])
    if isinstance(term, t.StPut):
        return t.StPut(children[0])
    if isinstance(term, t.ErrGuard):
        return t.ErrGuard(children[0])
    return term  # leaves: Lit, IORead, NdAny, NdAllocBytes, StGet


class Engine:
    """A relational compiler: hint databases + solvers + the driver."""

    def __init__(
        self,
        binding_db: HintDb,
        expr_db: HintDb,
        solvers: Optional[SolverBank] = None,
        width: int = 64,
        budget=None,
        tracer=None,
        use_index: Optional[bool] = None,
        memo_subterms: Optional[bool] = None,
    ):
        self.binding_db = binding_db
        self.expr_db = expr_db
        self.solvers = solvers or SolverBank()
        self.width = width
        self.budget = budget  # Optional[repro.resilience.budget.Budget]
        # Fast-path switches, snapshotted at construction so one engine's
        # behavior cannot flip mid-derivation.  Both are pure
        # optimizations: the lemma that commits, the emitted code, and the
        # certificate are identical either way (the differential harness
        # in tests/core/test_dispatch_equivalence.py enforces this).
        self.use_index = index_enabled() if use_index is None else bool(use_index)
        self.memo_subterms = (
            memo_enabled() if memo_subterms is None else bool(memo_subterms)
        )
        # Per-derivation memo for repeated pure subterm compilations,
        # keyed (state object, state.version, term, ty) and cleared at
        # every compile_function entry.  The state object keeps a strong
        # reference (no id() reuse) and identity equality; the monotone
        # version counter rules out stale hits after in-place mutation.
        self._expr_memo: dict = {}
        # Same contract for discharged side conditions: the winning
        # solver for (state, version, obligation) is deterministic, so a
        # repeat discharge replays the certificate record without
        # re-running the solver bank.
        self._side_memo: dict = {}
        # An explicit tracer pins the engine to it; otherwise the engine
        # re-reads the process-wide active tracer at every entry point,
        # so CLI commands can install one around cached builders.
        self._explicit_tracer = tracer
        self.tracer = tracer if tracer is not None else current_tracer()
        self._condition_stack: List[List[SideCondition]] = []
        # Memoized (family, counter-key, counter-key) tuples per lemma /
        # solver: building the dotted counter names with f-strings on
        # every hit is a measurable share of enabled-tracer overhead.
        self._lemma_keys: dict = {}
        self._solver_keys: dict = {}

    def _lemma_trace_keys(self, lemma) -> Tuple[str, str, str]:
        keys = self._lemma_keys.get(lemma.name)
        if keys is None:
            family = lemma_family(lemma)
            keys = (family, f"lemma.family.{family}", f"lemma.hits.{lemma.name}")
            self._lemma_keys[lemma.name] = keys
        return keys

    def _solver_trace_keys(self, solver) -> Tuple[str, str, str]:
        keys = self._solver_keys.get(solver)
        if keys is None:
            name = getattr(solver, "__name__", repr(solver))
            keys = (name, f"solver.calls.{name}", f"solver.hits.{name}")
            self._solver_keys[solver] = keys
        return keys

    @staticmethod
    def _absint_counters(tracer, obligation: t.Term, solver_name: str) -> None:
        """Attribute a discharged obligation to the range analysis.

        ``absint.solver.hit`` (plus a per-head breakdown) counts wins by
        ``range_solver``; ``absint.solver.miss`` counts range-eligible
        obligations that fell through to the Fourier-Motzkin solver --
        the quantity the E17 benchmark and the coverage-matrix
        crosscheck both read.
        """
        from repro.core.solver import RANGE_SOLVER_OPS

        if solver_name == "range_solver":
            tracer.inc("absint.solver.hit")
            if isinstance(obligation, t.Prim):
                tracer.inc(f"absint.solver.hit.op.{obligation.op}")
        elif (
            solver_name == "linear_arithmetic_solver"
            and isinstance(obligation, t.Prim)
            and obligation.op in RANGE_SOLVER_OPS
        ):
            tracer.inc("absint.solver.miss")

    def _charge(self, goal_description) -> None:
        # Descriptions may be callables: rendering the pretty-printed goal
        # eagerly on every fuel tick costs a full term walk that is thrown
        # away whenever no budget is attached (the common case).
        if self.budget is not None:
            if callable(goal_description):
                goal_description = goal_description()
            self.budget.charge(1, goal=goal_description)

    def fingerprint(self) -> str:
        """A stable hash of everything engine-side that determines output.

        Because proof search never backtracks and hint databases are
        ordered, the derived code and certificate are a pure function of
        (model, spec, this fingerprint): the ordered contents of both
        hint databases, the solver bank (in scan order -- solvers decide
        which side conditions discharge), and the target word width.
        The compilation cache (:mod:`repro.serve`) folds this into its
        content-addressed keys, so swapping a lemma, reordering solvers,
        or retargeting the width invalidates exactly the affected
        entries.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(self.binding_db.fingerprint().encode("ascii"))
        digest.update(self.expr_db.fingerprint().encode("ascii"))
        digest.update("\x1f".join(self.solvers.names()).encode("utf-8"))
        digest.update(str(self.width).encode("ascii"))
        return digest.hexdigest()[:16]

    # -- Side conditions -----------------------------------------------------------

    def discharge(self, obligation: t.Term, state: SymState, description: str) -> None:
        """Discharge a logical side condition or fail loudly (no backtracking)."""
        self._charge(lambda: f"side condition: {t.pretty(obligation)}")
        tracer = self.tracer
        trace = tracer.enabled
        # Per-obligation spans, solver_call events, and the pretty-printed
        # goal are debug-tier payloads; standard detail keeps the solver
        # counters (which identify the winning solver) and nothing per-goal.
        debug = trace and tracer.debug
        memo_key = None
        if self.memo_subterms:
            try:
                hit = self._side_memo.get((state, state.version, obligation))
            except TypeError:
                hit = None
            else:
                memo_key = (state, state.version, obligation)
            if hit is not None:
                # Replay: the record is built exactly as a re-run would
                # build it (the winning solver is deterministic), only the
                # solver bank itself is skipped.
                if trace:
                    tracer.inc("memo.side.hits")
                if self._condition_stack:
                    self._condition_stack[-1].append(
                        SideCondition(
                            description=description,
                            obligation_pretty=t.pretty(obligation),
                            solver=hit,
                        )
                    )
                return
        pretty = t.pretty(obligation) if debug else None
        span = tracer.span("side_condition", name=description) if debug else NULL_SPAN
        with span:
            for solver in self.solvers.solvers:
                solved = bool(solver(obligation, state))
                if trace:
                    solver_name, calls_key, hits_key = self._solver_trace_keys(solver)
                    if debug:
                        tracer.event(
                            "solver_call", solver=solver_name, solved=solved, goal=pretty
                        )
                    tracer.inc("solver.calls")
                    tracer.inc(calls_key)
                    if solved:
                        tracer.inc(hits_key)
                if solved:
                    solver_name = getattr(solver, "__name__", repr(solver))
                    if trace:
                        self._absint_counters(tracer, obligation, solver_name)
                    if memo_key is not None:
                        self._side_memo[memo_key] = solver_name
                        if trace:
                            tracer.inc("memo.side.misses")
                    if self._condition_stack:
                        self._condition_stack[-1].append(
                            SideCondition(
                                description=description,
                                obligation_pretty=t.pretty(obligation),
                                solver=solver_name,
                            )
                        )
                    return
            if trace:
                tracer.inc(f"stall.{StallReport.SIDE_CONDITION}")
            raise SideConditionFailed(
                "<current>",
                obligation,
                state.describe(),
                solvers=tuple(self.solvers.names()),
            )

    # -- Expression compilation ------------------------------------------------------

    def compile_expr_term(
        self, state: SymState, term: t.Term, ty: Optional[SourceType] = None
    ) -> Tuple[ast.Expr, CertNode]:
        goal = ExprGoal(state=state, term=term, ty=ty)
        self._charge(lambda: f"expr goal: {t.pretty(term)}")
        tracer = self.tracer
        trace = tracer.enabled
        debug = trace and tracer.debug
        memo_key = None
        if self.memo_subterms:
            try:
                cached = self._expr_memo.get((state, state.version, term, ty))
            except TypeError:
                cached = None  # unhashable payload (e.g. list-valued Lit)
            else:
                memo_key = (state, state.version, term, ty)
            if cached is not None:
                if trace:
                    tracer.inc("goals.expr")
                    tracer.inc("memo.expr.hits")
                return cached
        head = term_head(term) if (trace or self.use_index) else ""
        outer = tracer.span("compile_expr", head=head) if debug else NULL_SPAN
        with outer:
            emit = tracer.event
            db_name = self.expr_db.name
            if trace:
                tracer.inc("goals.expr")
            if self.use_index:
                lemma_seq = self.expr_db.candidates(head)
                if trace:
                    tracer.inc("dispatch.index.lookups")
                    tracer.inc(
                        "dispatch.index.pruned", len(self.expr_db) - len(lemma_seq)
                    )
            else:
                lemma_seq = self.expr_db
            scanned = 0
            for lemma in lemma_seq:
                scanned += 1
                if not lemma.matches(goal):
                    if debug:
                        emit("lemma_miss", db=db_name, lemma=lemma.name, head=head)
                    continue
                if trace:
                    family, family_key, hits_key = self._lemma_trace_keys(lemma)
                    emit(
                        "lemma_hit",
                        db=db_name,
                        lemma=lemma.name,
                        head=head,
                        family=family,
                        scanned=scanned,
                    )
                    tracer.inc("lemma.hits")
                    tracer.inc("lemma.misses", scanned - 1)
                    tracer.inc("lemma.attempts", scanned)
                    tracer.inc(family_key)
                    tracer.inc(hits_key)
                    tracer.observe("lemma.scan_length", scanned)
                    span = (
                        tracer.span("lemma_apply", name=lemma.name, family=family)
                        if debug
                        else NULL_SPAN
                    )
                else:
                    span = NULL_SPAN
                self._condition_stack.append([])
                try:
                    with span:
                        expr, children = lemma.apply(goal, self)
                except SideConditionFailed as failure:
                    failure.lemma = lemma.name
                    raise
                finally:
                    conditions = self._condition_stack.pop()
                node = CertNode(
                    lemma=lemma.name,
                    conclusion=f"EXPR |- {t.pretty(term)}",
                    code=render_expr(expr),
                    side_conditions=conditions,
                    children=children,
                )
                if trace:
                    tracer.inc("cert.nodes")
                    if debug:
                        tracer.event(
                            "cert_node", lemma=lemma.name, kind="expr",
                            conditions=len(conditions),
                        )
                if memo_key is not None:
                    self._expr_memo[memo_key] = (expr, node)
                    if trace:
                        tracer.inc("memo.expr.misses")
                return expr, node
            stall_head = head if trace else term_head(term)
            if trace:
                tracer.inc("lemma.attempts", scanned)
                tracer.inc("lemma.misses", scanned)
                tracer.inc(f"stall.{StallReport.NO_EXPR_LEMMA}")
                tracer.inc(f"stall.{StallReport.NO_EXPR_LEMMA}.head.{stall_head}")
            raise CompilationStalled(
                goal.describe(),
                advice=(
                    "no expression-compilation lemma matches this term; "
                    f"known lemmas: {', '.join(self.expr_db.lemma_names())}"
                ),
                reason=StallReport.NO_EXPR_LEMMA,
                family="engine",
                databases=(self.expr_db.name,),
                nearest_misses=tuple(self.expr_db.nearest_misses(term)),
                head=stall_head,
            )

    # -- Binding compilation -----------------------------------------------------------

    def compile_binding(
        self,
        state: SymState,
        name: str,
        value: t.Term,
        spec: FnSpec,
        monadic: bool = False,
        names: Optional[Tuple[str, ...]] = None,
    ) -> Tuple[ast.Stmt, SymState, CertNode]:
        goal = BindingGoal(
            state=state, name=name, value=value, spec=spec, monadic=monadic, names=names
        )
        self._charge(lambda: f"binding goal: let/n {name} := {t.pretty(value)}")
        tracer = self.tracer
        trace = tracer.enabled
        debug = trace and tracer.debug
        head = term_head(value) if (trace or self.use_index) else ""
        outer = (
            tracer.span("compile_binding", name=name, head=head, monadic=monadic)
            if debug
            else NULL_SPAN
        )
        with outer:
            emit = tracer.event
            db_name = self.binding_db.name
            if trace:
                tracer.inc("goals.binding")
            if self.use_index:
                lemma_seq = self.binding_db.candidates(head)
                if trace:
                    tracer.inc("dispatch.index.lookups")
                    tracer.inc(
                        "dispatch.index.pruned", len(self.binding_db) - len(lemma_seq)
                    )
            else:
                lemma_seq = self.binding_db
            scanned = 0
            for lemma in lemma_seq:
                scanned += 1
                if not lemma.matches(goal):
                    if debug:
                        emit("lemma_miss", db=db_name, lemma=lemma.name, head=head)
                    continue
                if trace:
                    family, family_key, hits_key = self._lemma_trace_keys(lemma)
                    emit(
                        "lemma_hit",
                        db=db_name,
                        lemma=lemma.name,
                        head=head,
                        family=family,
                        scanned=scanned,
                    )
                    tracer.inc("lemma.hits")
                    tracer.inc("lemma.misses", scanned - 1)
                    tracer.inc("lemma.attempts", scanned)
                    tracer.inc(family_key)
                    tracer.inc(hits_key)
                    tracer.observe("lemma.scan_length", scanned)
                    span = (
                        tracer.span("lemma_apply", name=lemma.name, family=family)
                        if debug
                        else NULL_SPAN
                    )
                else:
                    span = NULL_SPAN
                self._condition_stack.append([])
                try:
                    with span:
                        stmt, new_state, children = lemma.apply(goal, self)
                except SideConditionFailed as failure:
                    failure.lemma = lemma.name
                    raise
                finally:
                    conditions = self._condition_stack.pop()
                new_state.note_binding_site(name, t.pretty(value))
                node = CertNode(
                    lemma=lemma.name,
                    conclusion=f"let/n {name} := {t.pretty(value)}",
                    code=render_stmt_head(stmt),
                    side_conditions=conditions,
                    children=children,
                )
                if trace:
                    tracer.inc("cert.nodes")
                    if debug:
                        tracer.event(
                            "cert_node", lemma=lemma.name, kind="binding",
                            conditions=len(conditions),
                        )
                return stmt, new_state, node
            stall_head = head if trace else term_head(value)
            if trace:
                tracer.inc("lemma.attempts", scanned)
                tracer.inc("lemma.misses", scanned)
                tracer.inc(f"stall.{StallReport.NO_BINDING_LEMMA}")
                tracer.inc(f"stall.{StallReport.NO_BINDING_LEMMA}.head.{stall_head}")
            raise CompilationStalled(
                goal.describe(),
                advice=(
                    "no binding-compilation lemma matches this value shape; "
                    f"known lemmas: {', '.join(self.binding_db.lemma_names())}"
                ),
                reason=StallReport.NO_BINDING_LEMMA,
                family="engine",
                databases=(self.binding_db.name,),
                nearest_misses=tuple(self.binding_db.nearest_misses(value)),
                head=stall_head,
            )

    def compile_value_into(
        self, state: SymState, target: str, term: t.Term, spec: FnSpec
    ) -> Tuple[ast.Stmt, SymState, List[CertNode]]:
        """Compile an arbitrary value-producing term into the local ``target``.

        Handles nested let-chains (flattening them into sequenced
        bindings), then dispatches the final value through the binding
        database.  This is the engine primitive loop/conditional lemmas
        use for their bodies and branches.
        """
        if isinstance(term, t.Let):
            first, mid_state, node = self.compile_binding(state, term.name, term.value, spec)
            rest, final_state, nodes = self.compile_value_into(
                mid_state, target, term.body, spec
            )
            if isinstance(first, WrapStmt):
                return first.wrap(rest), final_state, [node] + nodes
            return ast.seq_of(first, rest), final_state, [node] + nodes
        stmt, final_state, node = self.compile_binding(state, target, term, spec)
        if isinstance(stmt, WrapStmt):
            stmt = stmt.wrap(ast.SSkip())
        return stmt, final_state, [node]

    # -- Chains and whole functions -----------------------------------------------------

    def compile_chain(
        self, state: SymState, term: t.Term, spec: FnSpec
    ) -> Tuple[ast.Stmt, SymState, List[CertNode], Tuple[str, ...]]:
        """Compile a (possibly monadic) let-chain down to its terminal."""
        if isinstance(term, (t.Let, t.MBind)):
            monadic = isinstance(term, t.MBind)
            value = term.ma if monadic else term.value
            stmt, mid_state, node = self.compile_binding(
                state, term.name, value, spec, monadic=monadic
            )
            rest, final_state, nodes, rets = self.compile_chain(mid_state, term.body, spec)
            if isinstance(stmt, WrapStmt):
                return stmt.wrap(rest), final_state, [node] + nodes, rets
            return ast.seq_of(stmt, rest), final_state, [node] + nodes, rets
        if isinstance(term, t.LetTuple):
            stmt, mid_state, node = self.compile_binding(
                state, term.names[0], term.value, spec, names=term.names
            )
            rest, final_state, nodes, rets = self.compile_chain(mid_state, term.body, spec)
            if isinstance(stmt, WrapStmt):
                return stmt.wrap(rest), final_state, [node] + nodes, rets
            return ast.seq_of(stmt, rest), final_state, [node] + nodes, rets
        return self._compile_terminal(state, term, spec)

    def _compile_terminal(
        self, state: SymState, term: t.Term, spec: FnSpec
    ) -> Tuple[ast.Stmt, SymState, List[CertNode], Tuple[str, ...]]:
        """Check the postcondition: results are delivered per the spec."""
        inner = term.value if isinstance(term, t.MRet) else term
        components = list(inner.items) if isinstance(inner, t.TupleTerm) else [inner]
        value_outputs = [o for o in spec.outputs if o.kind is not OutKind.ERROR_FLAG]
        if len(components) != len(value_outputs):
            raise CompilationStalled(
                f"terminal {t.pretty(term)} has {len(components)} component(s) "
                f"but the spec declares {len(value_outputs)} value output(s)",
                reason=StallReport.SPEC_MISMATCH,
                family="engine",
            )
        if spec.has_error_flag:
            if any(o.kind is OutKind.ARRAY for o in spec.outputs):
                raise CompilationStalled(
                    "error-monad functions deliver results through return "
                    "values only (a failed guard leaves memory partially "
                    "updated, so an array postcondition cannot hold on the "
                    "failure path)",
                    reason=StallReport.SPEC_MISMATCH,
                    family="engine",
                )
            if sum(1 for o in spec.outputs if o.kind is OutKind.SCALAR) > 1:
                raise CompilationStalled(
                    "error-monad functions support one value output "
                    "alongside the error flag",
                    reason=StallReport.SPEC_MISMATCH,
                    family="engine",
                )
        rets: List[str] = []
        descriptions: List[str] = []
        epilogue: List[ast.Stmt] = []
        children: List[CertNode] = []
        component_iter = iter(components)
        for output in spec.outputs:
            if output.kind is OutKind.ERROR_FLAG:
                if state.binding(self.ERROR_FLAG_LOCAL) is None:
                    raise CompilationStalled(
                        "spec declares an error flag but no guard prologue "
                        "was emitted (is the spec's outputs list right?)",
                        reason=StallReport.SPEC_MISMATCH,
                        family="engine",
                    )
                rets.append(self.ERROR_FLAG_LOCAL)
                descriptions.append("ret _ok = no guard failed")
                continue
            component = next(component_iter)
            resolved = resolve(state, component)
            if output.kind is OutKind.SCALAR:
                local = state.find_local_by_value(resolved)
                if local is None:
                    # The result is a computed value: emit one final
                    # assignment into a fresh return variable.
                    try:
                        ty = infer_type(state, resolved)
                    except TypeInferenceError as error:
                        raise CompilationStalled(
                            "cannot compile the function's result\n"
                            f"  result: {t.pretty(resolved)} ({error})\n"
                            + state.describe(),
                            advice="bind the result with let/n before returning it",
                            reason=StallReport.UNSUPPORTED_SHAPE,
                            family="engine",
                        ) from None
                    expr_term = resolved
                    if ty.kind.value == "nat":
                        expr_term = t.Prim("cast.of_nat", (resolved,))
                    expr, node = self.compile_expr_term(state, expr_term, ty)
                    children.append(node)
                    local = state.fresh_local("_ret")
                    state = state.copy()
                    state.bind_scalar(local, resolved, ty)
                    epilogue.append(ast.SSet(local, expr))
                if spec.has_error_flag:
                    # Route the value through the pre-initialized forward
                    # local so the failure path also defines the return
                    # variable (the guard prologue set it to zero).
                    epilogue.append(ast.SSet(self.ERROR_VALUE_LOCAL, ast.EVar(local)))
                    local = self.ERROR_VALUE_LOCAL
                rets.append(local)
                descriptions.append(f"ret {local} = {t.pretty(resolved)}")
            else:
                assert output.param is not None
                arg = spec.arg_for_param(output.param, ArgKind.POINTER)
                if arg is None:
                    raise CompilationStalled(
                        f"spec output references pointer param {output.param!r} "
                        "but no pointer argument carries it",
                        reason=StallReport.SPEC_MISMATCH,
                        family="engine",
                    )
                clause = state.clause_of_local(arg.name)
                if clause is None:
                    raise CompilationStalled(
                        f"no memory clause for output argument {arg.name!r}\n"
                        + state.describe(),
                        reason=StallReport.MISSING_CLAUSE,
                        family="engine",
                    )
                if clause.value != resolved:
                    raise CompilationStalled(
                        "final memory does not match the declared output:\n"
                        f"  memory holds: {t.pretty(clause.value)}\n"
                        f"  spec expects: {t.pretty(resolved)}",
                        advice=(
                            "the model's result must be exactly the final "
                            "mutated value of the output array"
                        ),
                        reason=StallReport.POSTCONDITION,
                        family="engine",
                    )
                descriptions.append(f"memory({arg.name}) = {t.pretty(resolved)}")
        node = CertNode(
            lemma="compile_done",
            conclusion="; ".join(descriptions) or "no outputs",
            code="/* postcondition check */",
            children=children,
        )
        if self.tracer.enabled:
            self.tracer.inc("cert.nodes")
            if self.tracer.debug:
                self.tracer.event("cert_node", lemma="compile_done", kind="terminal")
        return ast.seq_of(*epilogue), state, [node], tuple(rets)

    ERROR_FLAG_LOCAL = "_ok"
    ERROR_VALUE_LOCAL = "_errv"

    def compile_function(self, model: Model, spec: FnSpec) -> CompiledFunction:
        """The ``Derive ... SuchThat ... As`` entry point (§3.2)."""
        from repro.core.sepstate import reset_ghosts

        # Ghost names are scoped to this derivation: resetting the supply
        # makes the derivation (and its trace) independent of compile
        # history in the process.
        reset_ghosts()
        # The subterm memo is scoped to one derivation, exactly like
        # ghost names: entries from a previous function must never be
        # visible (their states are dead), and clearing also releases the
        # strong references the keys hold on SymState objects.
        self._expr_memo.clear()
        self._side_memo.clear()
        # Late-bind the flight recorder: engines are often built before a
        # CLI command installs its tracer.
        if self._explicit_tracer is None:
            self.tracer = current_tracer()
        tracer = self.tracer
        trace = tracer.enabled
        span = (
            tracer.span("compile_function", name=spec.fname, program=model.name)
            if trace
            else NULL_SPAN
        )
        with span as handle:
            rewrites_before = tracer.metrics.get("resolve.rewrites") if trace else 0
            state = spec.initial_state(model, self.width)
            prologue: List[ast.Stmt] = []
            if spec.has_error_flag:
                # Error-monad functions: the success flag starts true and the
                # forwarded result starts zero, so both return variables are
                # defined on every path (a failed guard only clears the flag).
                prologue.append(ast.SSet(self.ERROR_FLAG_LOCAL, ast.ELit(1)))
                prologue.append(ast.SSet(self.ERROR_VALUE_LOCAL, ast.ELit(0)))
                state.bind_scalar(self.ERROR_FLAG_LOCAL, t.Lit(True, BOOL), BOOL)
                state.bind_scalar(self.ERROR_VALUE_LOCAL, t.Lit(0, WORD), WORD)
            body, final_state, nodes, rets = self.compile_chain(state, model.term, spec)
            if prologue:
                body = ast.seq_of(*prologue, body)
            root = CertNode(
                lemma="derive",
                conclusion=(
                    f'defn! "{spec.fname}" ({", ".join(spec.arg_names())}) '
                    f"implements {model.name}"
                ),
                code="<function body>",
                children=nodes,
            )
            fn = ast.Function(spec.fname, spec.arg_names(), tuple(rets), body)
            certificate = Certificate(
                function_name=spec.fname,
                root=root,
                statements_compiled=ast.statement_count(body),
            )
            if trace:
                tracer.inc("cert.nodes")
                if tracer.debug:
                    tracer.event("cert_node", lemma="derive", kind="root")
                rewrites = tracer.metrics.get("resolve.rewrites") - rewrites_before
                tracer.event("resolve_stats", rewrites=rewrites)
                # Interning counters are process-global (the intern table
                # outlives derivations), so they ride in a *volatile*
                # event: visible in dumped traces and profiles, stripped
                # from golden comparisons like wall-clock timings.
                tracer.event("interning", **t.intern_stats())
                tracer.inc("functions.compiled")
                tracer.observe("certificate.size", certificate.size())
                tracer.observe("function.statements", certificate.statements_compiled)
                handle.note(rewrites=rewrites)
            self._expr_memo.clear()
            self._side_memo.clear()
            return CompiledFunction(
                bedrock_fn=fn, certificate=certificate, spec=spec, model=model
            )

    # -- Representation helpers used by lemmas --------------------------------------------

    def elem_byte_size(self, composite: SourceType) -> int:
        return composite.elem_size(self.width // 8)

    def scalar_byte_size(self, scalar: SourceType) -> int:
        return scalar.scalar_size(self.width // 8)
