"""The step-by-step example of §2: compiling arithmetic to a stack machine.

Language ``S`` is a simple arithmetic expression language; language ``T``
is a stack machine.  The section develops, in order:

1. a traditional *functional* compiler ``StoT`` (:mod:`compiler_fn`);
2. the same compiler as a *relation* whose constructors mirror the
   recursion (:mod:`relational`), run by proof search over an evar;
3. *open-ended* compilation: no fixed relation, just a hint database of
   facts (:mod:`relational`);
4. compilation of *shallowly embedded* programs -- Python arithmetic over
   symbolic values, which "would not even be expressible as a regular
   Gallina function" (:mod:`shallow`).

The equivalence ``t ~ s`` (running ``t`` pushes ``eval(s)`` on any stack)
is checked by :func:`repro.stackmachine.lang.equivalent`.
"""

from repro.stackmachine.lang import (
    SAdd,
    SExpr,
    SInt,
    TOp,
    TPopAdd,
    TPush,
    eval_s,
    eval_t,
    equivalent,
)
from repro.stackmachine.compiler_fn import s_to_t
from repro.stackmachine.relational import (
    Derivation,
    RelationalCompiler,
    STOT_RULES,
    SHALLOW_RULES,
)
from repro.stackmachine.shallow import SymInt, compile_shallow

__all__ = [
    "SExpr",
    "SInt",
    "SAdd",
    "TOp",
    "TPush",
    "TPopAdd",
    "eval_s",
    "eval_t",
    "equivalent",
    "s_to_t",
    "Derivation",
    "RelationalCompiler",
    "STOT_RULES",
    "SHALLOW_RULES",
    "SymInt",
    "compile_shallow",
]
