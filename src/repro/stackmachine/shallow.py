"""Shallow embedding for §2.4.

In Coq, ``3 + 4`` is a Gallina term the proof engine can match on
syntactically.  Python evaluates eagerly, so the shallow embedding uses
:class:`SymInt`: a number that *is* usable as a value (it knows what it
evaluates to) while also remembering how it was built -- the Python
analogue of a shallowly embedded program that the compiler inspects.
"""

from __future__ import annotations

from typing import Union

from repro.stackmachine.relational import Derivation, RelationalCompiler, SHALLOW_RULES

IntLike = Union[int, "SymInt"]


class SymInt:
    """An integer-valued symbolic expression over constants and +."""

    __slots__ = ("op", "value", "lhs", "rhs")

    def __init__(self, value: int, op: str = "const", lhs=None, rhs=None):
        self.op = op
        self.value = value
        self.lhs = lhs
        self.rhs = rhs

    @staticmethod
    def lift(value: IntLike) -> "SymInt":
        if isinstance(value, SymInt):
            return value
        return SymInt(int(value))

    def __add__(self, other: IntLike) -> "SymInt":
        rhs = SymInt.lift(other)
        return SymInt(self.value + rhs.value, "add", self, rhs)

    def __radd__(self, other: IntLike) -> "SymInt":
        return SymInt.lift(other) + self

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        if self.op == "const":
            return f"{self.value}"
        return f"({self.lhs!r} + {self.rhs!r})"


def compile_shallow(source: IntLike) -> Derivation:
    """The §2.4 example: ``{ t7 | t7 ≈ 3 + 4 }`` by ``typeclasses eauto``."""
    compiler = RelationalCompiler(SHALLOW_RULES)
    return compiler.compile(source if isinstance(source, SymInt) else int(source))
