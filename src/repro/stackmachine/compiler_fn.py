"""The traditional functional compiler of §2.1.

    Fixpoint StoT (s: S) := match s with
    | SInt z => [TPush z]
    | SAdd s1 s2 => StoT s1 ++ StoT s2 ++ [TPopAdd]
    end.
"""

from __future__ import annotations

from typing import Tuple

from repro.stackmachine.lang import SAdd, SExpr, SInt, TOp, TPopAdd, TPush


def s_to_t(expr: SExpr) -> Tuple[TOp, ...]:
    if isinstance(expr, SInt):
        return (TPush(expr.value),)
    if isinstance(expr, SAdd):
        return s_to_t(expr.lhs) + s_to_t(expr.rhs) + (TPopAdd(),)
    raise TypeError(f"not an S expression: {expr!r}")
