"""Languages S and T of §2.1, with their semantics.

S has constants and addition; T is a list of stack operations (push a
constant, or pop two values and push their sum).  The equivalence
``t ~ s`` is: for all stacks ``zs``, running ``t`` on ``zs`` yields
``eval(s) :: zs``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


class SExpr:
    """Base class of source expressions (Coq's ``Inductive S``)."""

    __slots__ = ()


@dataclass(frozen=True)
class SInt(SExpr):
    value: int

    def __repr__(self) -> str:
        return f"SInt({self.value})"


@dataclass(frozen=True)
class SAdd(SExpr):
    lhs: SExpr
    rhs: SExpr

    def __repr__(self) -> str:
        return f"SAdd({self.lhs!r}, {self.rhs!r})"


class TOp:
    """Base class of stack operations (Coq's ``Inductive T_Op``)."""

    __slots__ = ()


@dataclass(frozen=True)
class TPush(TOp):
    value: int

    def __repr__(self) -> str:
        return f"TPush({self.value})"


@dataclass(frozen=True)
class TPopAdd(TOp):
    def __repr__(self) -> str:
        return "TPopAdd"


TProgram = Tuple[TOp, ...]


def eval_s(expr: SExpr) -> int:
    """``Fixpoint 𝜎S``."""
    if isinstance(expr, SInt):
        return expr.value
    if isinstance(expr, SAdd):
        return eval_s(expr.lhs) + eval_s(expr.rhs)
    raise TypeError(f"not an S expression: {expr!r}")


def eval_op(stack: List[int], op: TOp) -> List[int]:
    """``Definition 𝜎Op``: invalid pops are no-ops, as in the paper."""
    if isinstance(op, TPush):
        return [op.value] + stack
    if isinstance(op, TPopAdd):
        if len(stack) >= 2:
            z2, z1, *rest = stack
            return [z1 + z2] + rest
        return stack  # Invalid: no-op
    raise TypeError(f"not a T operation: {op!r}")


def eval_t(program: Sequence[TOp], stack: Sequence[int] = ()) -> List[int]:
    """``Definition 𝜎T``: fold the operation semantics over the program."""
    current = list(stack)
    for op in program:
        current = eval_op(current, op)
    return current


def equivalent(program: Sequence[TOp], expr: SExpr, probe_stacks=((), (1,), (5, 7))) -> bool:
    """``t ~ s``: running ``t`` pushes ``eval s`` onto any stack.

    The universal quantification over stacks is checked on probe stacks
    plus the structural observation that T programs built from push/add
    only touch what they push (tested separately with hypothesis).
    """
    expected = eval_s(expr)
    return all(
        eval_t(program, stack) == [expected] + list(stack) for stack in probe_stacks
    )
