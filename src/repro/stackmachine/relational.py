"""Relational compilation of §2.2-2.3, in miniature.

Instead of a function ``S -> T`` we have *rules* -- facts connecting
target programs to source programs -- and a proof-search driver that
solves goals of the form ``?t ~ s``: the placeholder ``?t`` (the paper's
existential variable) is refined as rules are applied, and the finished
derivation's witness is the compiled program.

``STOT_RULES`` mirrors the two constructors of ``StoT_rel``:

    | StoT_RInt : forall z, [TPush z] ℜ SInt z
    | StoT_RAdd : forall t1 s1 t2 s2,
        t1 ℜ s1 -> t2 ℜ s2 -> t1 ++ t2 ++ [TPopAdd] ℜ SAdd s1 s2

``SHALLOW_RULES`` are the §2.4 lemmas over shallowly embedded sources
(``GallinatoT_Z`` and ``GallinatoT_Zadd``); they match on the symbolic
values of :mod:`repro.stackmachine.shallow` instead of S syntax.

There is deliberately no fixed relation datatype: "a relational compiler
is just a collection of facts", and :class:`RelationalCompiler` is just
an ordered hint database plus logic-programming search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.stackmachine.lang import SAdd, SInt, TOp, TPopAdd, TPush


@dataclass
class Rule:
    """One correctness fact: a partial relation between T and S.

    ``match`` returns None (rule inapplicable) or a pair
    ``(subsources, combine)``: the sources of the premise subgoals and
    the function assembling the conclusion's witness from their
    witnesses.
    """

    name: str
    match: Callable[[object], Optional[Tuple[Sequence[object], Callable]]]


@dataclass
class Derivation:
    """A proof tree for ``t ~ s``; the paper prints these as proof terms."""

    rule: str
    source: object
    program: Tuple[TOp, ...]
    children: List["Derivation"] = field(default_factory=list)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}({self.rule}) ?t := {list(self.program)} ~ {self.source!r}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class CompilationFailed(Exception):
    """No rule applies: the relational compiler is (by design) partial."""


class RelationalCompiler:
    """Proof search over an ordered collection of rules (a hint database)."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules = list(rules)

    def extended(self, *rules: Rule) -> "RelationalCompiler":
        """User extension: new facts take priority over existing ones."""
        return RelationalCompiler(list(rules) + self.rules)

    def compile(self, source: object) -> Derivation:
        """Prove ``exists t, t ~ source``; the witness is the program."""
        for rule in self.rules:
            matched = rule.match(source)
            if matched is None:
                continue
            subsources, combine = matched
            children = [self.compile(sub) for sub in subsources]
            program = tuple(combine(*[child.program for child in children]))
            return Derivation(rule.name, source, program, children)
        raise CompilationFailed(
            f"no rule applies to {source!r} "
            f"(knows: {', '.join(rule.name for rule in self.rules)})"
        )


# -- The deep rules (§2.2): one per constructor of StoT_rel ---------------------


def _match_int(source: object):
    if isinstance(source, SInt):
        return (), lambda: (TPush(source.value),)
    return None


def _match_add(source: object):
    if isinstance(source, SAdd):
        return (source.lhs, source.rhs), lambda t1, t2: t1 + t2 + (TPopAdd(),)
    return None


STOT_RULES = [
    Rule("StoT_RInt", _match_int),
    Rule("StoT_RAdd", _match_add),
]


# -- The shallow rules (§2.4): plain values on the right of ~ --------------------


def _match_shallow_const(source: object):
    from repro.stackmachine.shallow import SymInt

    if isinstance(source, int):
        return (), lambda: (TPush(source),)
    if isinstance(source, SymInt) and source.op == "const":
        return (), lambda: (TPush(source.value),)
    return None


def _match_shallow_add(source: object):
    from repro.stackmachine.shallow import SymInt

    if isinstance(source, SymInt) and source.op == "add":
        return (source.lhs, source.rhs), lambda t1, t2: t1 + t2 + (TPopAdd(),)
    return None


SHALLOW_RULES = [
    Rule("GallinatoT_Z", _match_shallow_const),
    Rule("GallinatoT_Zadd", _match_shallow_add),
]
