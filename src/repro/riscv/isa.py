"""The RV64IM instruction subset used by the Bedrock2 backend.

Instructions are represented symbolically (mnemonic + operands); the
:func:`encode`/:func:`decode` pair maps them to and from their standard
32-bit encodings so the binary path is exercised too (the simulator can
run either representation).  Branch and jump offsets are in bytes,
relative to the instruction's own address, exactly as in the ISA manual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

# Register ABI names (index = register number).
REG_NAMES = (
    "zero ra sp gp tp t0 t1 t2 s0 s1 a0 a1 a2 a3 a4 a5 "
    "a6 a7 s2 s3 s4 s5 s6 s7 s8 s9 s10 s11 t3 t4 t5 t6"
).split()
REG_NUM: Dict[str, int] = {name: index for index, name in enumerate(REG_NAMES)}

R_TYPE = {
    # name: (opcode, funct3, funct7)
    "add": (0b0110011, 0b000, 0b0000000),
    "sub": (0b0110011, 0b000, 0b0100000),
    "sll": (0b0110011, 0b001, 0b0000000),
    "slt": (0b0110011, 0b010, 0b0000000),
    "sltu": (0b0110011, 0b011, 0b0000000),
    "xor": (0b0110011, 0b100, 0b0000000),
    "srl": (0b0110011, 0b101, 0b0000000),
    "sra": (0b0110011, 0b101, 0b0100000),
    "or": (0b0110011, 0b110, 0b0000000),
    "and": (0b0110011, 0b111, 0b0000000),
    "mul": (0b0110011, 0b000, 0b0000001),
    "mulhu": (0b0110011, 0b011, 0b0000001),
    "divu": (0b0110011, 0b101, 0b0000001),
    "remu": (0b0110011, 0b111, 0b0000001),
}

I_TYPE = {
    "addi": (0b0010011, 0b000),
    "slti": (0b0010011, 0b010),
    "sltiu": (0b0010011, 0b011),
    "xori": (0b0010011, 0b100),
    "ori": (0b0010011, 0b110),
    "andi": (0b0010011, 0b111),
    "slli": (0b0010011, 0b001),
    "srli": (0b0010011, 0b101),
    "srai": (0b0010011, 0b101),
    "jalr": (0b1100111, 0b000),
    "lb": (0b0000011, 0b000),
    "lh": (0b0000011, 0b001),
    "lw": (0b0000011, 0b010),
    "ld": (0b0000011, 0b011),
    "lbu": (0b0000011, 0b100),
    "lhu": (0b0000011, 0b101),
    "lwu": (0b0000011, 0b110),
}

S_TYPE = {
    "sb": (0b0100011, 0b000),
    "sh": (0b0100011, 0b001),
    "sw": (0b0100011, 0b010),
    "sd": (0b0100011, 0b011),
}

B_TYPE = {
    "beq": (0b1100011, 0b000),
    "bne": (0b1100011, 0b001),
    "blt": (0b1100011, 0b100),
    "bge": (0b1100011, 0b101),
    "bltu": (0b1100011, 0b110),
    "bgeu": (0b1100011, 0b111),
}

U_TYPE = {"lui": 0b0110111, "auipc": 0b0010111}
J_TYPE = {"jal": 0b1101111}
SYSTEM = {"ecall": 0x00000073}

LOAD_SIZES = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4, "lwu": 4, "ld": 8}
STORE_SIZES = {"sb": 1, "sh": 2, "sw": 4, "sd": 8}
SIGNED_LOADS = {"lb", "lh", "lw"}


@dataclass(frozen=True)
class Instr:
    """One symbolic instruction: mnemonic plus up to three operands.

    Operand meaning by format:
      R: rd, rs1, rs2        I: rd, rs1, imm       S: rs2, rs1, imm
      B: rs1, rs2, imm       U/J: rd, imm          ecall: none
    """

    name: str
    a: int = 0
    b: int = 0
    c: int = 0

    def __repr__(self) -> str:
        return f"Instr({self.name!r}, {self.a}, {self.b}, {self.c})"


def _check_imm(value: int, bits: int, name: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise ValueError(f"immediate {value} out of range for {name}")
    return value & ((1 << bits) - 1)


def encode(instr: Instr) -> int:
    """Encode one instruction into its 32-bit representation."""
    name = instr.name
    if name in R_TYPE:
        opcode, funct3, funct7 = R_TYPE[name]
        return (
            (funct7 << 25)
            | (instr.c << 20)
            | (instr.b << 15)
            | (funct3 << 12)
            | (instr.a << 7)
            | opcode
        )
    if name in I_TYPE:
        opcode, funct3 = I_TYPE[name]
        imm = instr.c
        if name in ("slli", "srli", "srai"):
            if not 0 <= imm < 64:
                raise ValueError(f"shift amount {imm} out of range")
            if name == "srai":
                imm |= 0b010000 << 6
        else:
            imm = _check_imm(imm, 12, name)
        return (
            (imm << 20) | (instr.b << 15) | (funct3 << 12) | (instr.a << 7) | opcode
        )
    if name in S_TYPE:
        opcode, funct3 = S_TYPE[name]
        imm = _check_imm(instr.c, 12, name)
        return (
            ((imm >> 5) << 25)
            | (instr.a << 20)
            | (instr.b << 15)
            | (funct3 << 12)
            | ((imm & 0x1F) << 7)
            | opcode
        )
    if name in B_TYPE:
        opcode, funct3 = B_TYPE[name]
        imm = _check_imm(instr.c, 13, name)
        if imm & 1:
            raise ValueError("branch offsets are even")
        return (
            ((imm >> 12 & 1) << 31)
            | ((imm >> 5 & 0x3F) << 25)
            | (instr.b << 20)
            | (instr.a << 15)
            | (funct3 << 12)
            | ((imm >> 1 & 0xF) << 8)
            | ((imm >> 11 & 1) << 7)
            | opcode
        )
    if name in U_TYPE:
        imm = instr.b & 0xFFFFF
        return (imm << 12) | (instr.a << 7) | U_TYPE[name]
    if name in J_TYPE:
        imm = _check_imm(instr.b, 21, name)
        return (
            ((imm >> 20 & 1) << 31)
            | ((imm >> 1 & 0x3FF) << 21)
            | ((imm >> 11 & 1) << 20)
            | ((imm >> 12 & 0xFF) << 12)
            | (instr.a << 7)
            | J_TYPE[name]
        )
    if name in SYSTEM:
        return SYSTEM[name]
    raise ValueError(f"unknown mnemonic {name!r}")


def _sext(value: int, bits: int) -> int:
    return value - (1 << bits) if value >> (bits - 1) else value


def decode(word: int) -> Instr:
    """Decode a 32-bit instruction word (of the supported subset)."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F
    if word == SYSTEM["ecall"]:
        return Instr("ecall")
    if opcode == 0b0110011:
        for name, (_op, f3, f7) in R_TYPE.items():
            if funct3 == f3 and funct7 == f7:
                return Instr(name, rd, rs1, rs2)
    if opcode in (0b0010011, 0b0000011, 0b1100111):
        imm = _sext(word >> 20, 12)
        for name, (op, f3) in I_TYPE.items():
            if op == opcode and funct3 == f3:
                if name in ("slli", "srli", "srai"):
                    shamt = (word >> 20) & 0x3F
                    if name == "srli" and (word >> 26) == 0b010000:
                        return Instr("srai", rd, rs1, shamt)
                    return Instr(name, rd, rs1, shamt)
                return Instr(name, rd, rs1, imm)
    if opcode == 0b0100011:
        imm = _sext((funct7 << 5) | rd, 12)
        for name, (_op, f3) in S_TYPE.items():
            if funct3 == f3:
                return Instr(name, rs2, rs1, imm)
    if opcode == 0b1100011:
        imm = (
            ((word >> 31 & 1) << 12)
            | ((word >> 7 & 1) << 11)
            | ((word >> 25 & 0x3F) << 5)
            | ((word >> 8 & 0xF) << 1)
        )
        imm = _sext(imm, 13)
        for name, (_op, f3) in B_TYPE.items():
            if funct3 == f3:
                return Instr(name, rs1, rs2, imm)
    if opcode == U_TYPE["lui"]:
        return Instr("lui", rd, (word >> 12) & 0xFFFFF)
    if opcode == U_TYPE["auipc"]:
        return Instr("auipc", rd, (word >> 12) & 0xFFFFF)
    if opcode == J_TYPE["jal"]:
        imm = (
            ((word >> 31 & 1) << 20)
            | ((word >> 12 & 0xFF) << 12)
            | ((word >> 20 & 1) << 11)
            | ((word >> 21 & 0x3FF) << 1)
        )
        return Instr("jal", rd, _sext(imm, 21))
    raise ValueError(f"cannot decode {word:#010x}")
