"""An RV64IM simulator.

Executes the symbolic instruction stream produced by the compiler (the
binary encoding is tested separately for fidelity).  Retired-instruction
counts are the "riscv" cost model of the Figure 2 reproduction.

Memory is the same byte-addressed :class:`repro.bedrock2.memory.Memory`
used by the Bedrock2 interpreter, so out-of-footprint accesses fault the
same way.  ``ecall`` dispatches to a host handler through the compiled
program's action table (``a7`` holds the action index).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.bedrock2.memory import Memory, MemoryError_
from repro.riscv.compiler import CompiledProgram
from repro.riscv.isa import (
    B_TYPE,
    Instr,
    LOAD_SIZES,
    REG_NUM,
    SIGNED_LOADS,
    STORE_SIZES,
)

MASK64 = (1 << 64) - 1
CODE_BASE = 0x10000


class MachineFault(Exception):
    """Illegal execution: bad pc, bad memory access, missing handler."""


def _signed(value: int) -> int:
    return value - (1 << 64) if value >> 63 else value


class Machine:
    """One RV64IM hart running a compiled Bedrock2 program."""

    def __init__(
        self,
        program: CompiledProgram,
        memory: Optional[Memory] = None,
        stack_size: int = 1 << 16,
        ecall_handler: Optional[Callable[[str, "Machine"], None]] = None,
    ):
        self.program = program
        self.memory = memory if memory is not None else Memory(64)
        self.regs: List[int] = [0] * 32
        self.pc = 0
        self.instret = 0
        self.ecall_handler = ecall_handler
        if program.data:
            self.memory.store_bytes_at(program.data_base, program.data)
        stack_top = (1 << 40) - 0x1000
        self.memory.allocate(stack_size, label="machine-stack", base=stack_top - stack_size)
        self.regs[REG_NUM["sp"]] = stack_top

    # -- Register access --------------------------------------------------------

    def get(self, reg: int) -> int:
        return 0 if reg == 0 else self.regs[reg]

    def set(self, reg: int, value: int) -> None:
        if reg != 0:
            self.regs[reg] = value & MASK64

    # -- Execution ----------------------------------------------------------------

    def load_binary(self) -> None:
        """Encode the program into memory at ``CODE_BASE`` and switch the
        machine to fetch-decode execution (the full binary path)."""
        from repro.riscv.isa import encode

        image = bytearray()
        for instr in self.program.instrs:
            image.extend(encode(instr).to_bytes(4, "little"))
        self.memory.store_bytes_at(CODE_BASE, bytes(image))
        self._binary = True

    def fetch(self) -> Instr:
        """Fetch and decode the instruction at the current pc (binary mode)."""
        from repro.riscv.isa import decode

        word = self.memory.load(CODE_BASE + 4 * self.pc, 4)
        return decode(word)

    def run_function(
        self,
        name: str,
        args: Sequence[int],
        max_instructions: int = 50_000_000,
    ) -> List[int]:
        """Call a compiled function; returns [a0, a1] on return."""
        entry = self.program.entry_points[name]
        halt_pc = (0xDEAD0000 - CODE_BASE) // 4  # where the sentinel ra lands
        self.pc = entry
        for index, arg in enumerate(args):
            self.set(REG_NUM[f"a{index}"], arg)
        self.regs[REG_NUM["ra"]] = 0xDEAD0000  # recognizable return address
        budget = max_instructions
        binary = getattr(self, "_binary", False)
        while self.pc != halt_pc:
            if budget <= 0:
                raise MachineFault("instruction budget exhausted")
            if not 0 <= self.pc < len(self.program.instrs):
                raise MachineFault(f"pc out of range: {self.pc}")
            instr = self.fetch() if binary else self.program.instrs[self.pc]
            self.step(instr)
            budget -= 1
        return [self.get(REG_NUM["a0"]), self.get(REG_NUM["a1"])]

    def step(self, instr: Instr) -> None:
        self.instret += 1
        name = instr.name
        next_pc = self.pc + 1
        if name in ("add", "sub", "mul", "and", "or", "xor", "sll", "srl", "sra",
                    "sltu", "slt", "mulhu", "divu", "remu"):
            lhs, rhs = self.get(instr.b), self.get(instr.c)
            self.set(instr.a, self._alu(name, lhs, rhs))
        elif name == "addi":
            self.set(instr.a, self.get(instr.b) + instr.c)
        elif name == "andi":
            self.set(instr.a, self.get(instr.b) & instr.c)
        elif name == "ori":
            self.set(instr.a, self.get(instr.b) | instr.c)
        elif name == "xori":
            self.set(instr.a, self.get(instr.b) ^ instr.c)
        elif name == "slti":
            self.set(instr.a, 1 if _signed(self.get(instr.b)) < instr.c else 0)
        elif name == "sltiu":
            self.set(instr.a, 1 if self.get(instr.b) < (instr.c & MASK64) else 0)
        elif name == "slli":
            self.set(instr.a, self.get(instr.b) << instr.c)
        elif name == "srli":
            self.set(instr.a, self.get(instr.b) >> instr.c)
        elif name == "srai":
            self.set(instr.a, _signed(self.get(instr.b)) >> instr.c)
        elif name == "lui":
            value = instr.b << 12
            if value >> 31:
                value -= 1 << 32
            self.set(instr.a, value)
        elif name == "auipc":
            self.set(instr.a, CODE_BASE + 4 * self.pc + (instr.b << 12))
        elif name in LOAD_SIZES:
            addr = (self.get(instr.b) + instr.c) & MASK64
            try:
                raw = self.memory.load(addr, LOAD_SIZES[name])
            except MemoryError_ as exc:
                raise MachineFault(str(exc)) from None
            if name in SIGNED_LOADS:
                bits = 8 * LOAD_SIZES[name]
                if raw >> (bits - 1):
                    raw -= 1 << bits
            self.set(instr.a, raw)
        elif name in STORE_SIZES:
            addr = (self.get(instr.b) + instr.c) & MASK64
            try:
                self.memory.store(addr, STORE_SIZES[name], self.get(instr.a))
            except MemoryError_ as exc:
                raise MachineFault(str(exc)) from None
        elif name in B_TYPE:
            if self._branch_taken(name, self.get(instr.a), self.get(instr.b)):
                next_pc = self.pc + instr.c // 4
        elif name == "jal":
            self.set(instr.a, 4 * (self.pc + 1) + CODE_BASE)
            next_pc = self.pc + instr.b // 4
        elif name == "jalr":
            target = (self.get(instr.b) + instr.c) & ~1 & MASK64
            self.set(instr.a, 4 * (self.pc + 1) + CODE_BASE)
            # 0xDEAD0000 is the return sentinel.
            sentinel = target == 0xDEAD0000
            next_pc = ((0xDEAD0000 if sentinel else target) - CODE_BASE) // 4
        elif name == "ecall":
            action_id = self.get(REG_NUM["a7"])
            if self.ecall_handler is None:
                raise MachineFault("ecall without a handler")
            if not 0 <= action_id < len(self.program.actions):
                raise MachineFault(f"unknown ecall action {action_id}")
            self.ecall_handler(self.program.actions[action_id], self)
        else:
            raise MachineFault(f"unimplemented instruction {name!r}")
        self.pc = next_pc

    def _alu(self, name: str, lhs: int, rhs: int) -> int:
        if name == "add":
            return lhs + rhs
        if name == "sub":
            return lhs - rhs
        if name == "mul":
            return lhs * rhs
        if name == "mulhu":
            return (lhs * rhs) >> 64
        if name == "divu":
            return MASK64 if rhs == 0 else lhs // rhs
        if name == "remu":
            return lhs if rhs == 0 else lhs % rhs
        if name == "and":
            return lhs & rhs
        if name == "or":
            return lhs | rhs
        if name == "xor":
            return lhs ^ rhs
        if name == "sll":
            return lhs << (rhs % 64)
        if name == "srl":
            return lhs >> (rhs % 64)
        if name == "sra":
            return _signed(lhs) >> (rhs % 64)
        if name == "sltu":
            return 1 if lhs < rhs else 0
        if name == "slt":
            return 1 if _signed(lhs) < _signed(rhs) else 0
        raise MachineFault(f"unknown ALU op {name!r}")

    def _branch_taken(self, name: str, lhs: int, rhs: int) -> bool:
        if name == "beq":
            return lhs == rhs
        if name == "bne":
            return lhs != rhs
        if name == "blt":
            return _signed(lhs) < _signed(rhs)
        if name == "bge":
            return _signed(lhs) >= _signed(rhs)
        if name == "bltu":
            return lhs < rhs
        if name == "bgeu":
            return lhs >= rhs
        raise MachineFault(f"unknown branch {name!r}")
