"""A RISC-V (RV64IM) backend for Bedrock2.

The real Bedrock2 development ships a *verified* compiler to RISC-V; the
paper's pipeline optionally uses it instead of the C pretty-printer for
end-to-end assurance (Figure 1).  This package reproduces that pipeline
stage, unverified but differentially tested against the Bedrock2
interpreter:

- :mod:`repro.riscv.isa` -- the RV64IM instruction subset, with binary
  encoding and decoding;
- :mod:`repro.riscv.compiler` -- a syntax-directed Bedrock2-to-RISC-V
  compiler (locals in stack slots, expression stack in temporaries);
- :mod:`repro.riscv.machine` -- an RV64IM simulator whose retired
  instruction counts serve as the second cost model of the Figure 2
  reproduction.
"""

from repro.riscv.isa import Instr, encode, decode
from repro.riscv.compiler import CompileError, compile_function, compile_program
from repro.riscv.machine import Machine, MachineFault

__all__ = [
    "Instr",
    "encode",
    "decode",
    "CompileError",
    "compile_function",
    "compile_program",
    "Machine",
    "MachineFault",
]
