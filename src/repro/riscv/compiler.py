"""A syntax-directed Bedrock2-to-RV64IM compiler.

This plays the role of Bedrock2's verified RISC-V backend in the paper's
pipeline (unverified here; differentially tested against the Bedrock2
interpreter).  The code generator is deliberately simple and predictable,
like the real one:

- locals live in stack slots addressed off a frame pointer (``s0``);
- expressions evaluate on a register stack ``t0..t6`` (deeply nested
  expressions beyond seven levels are rejected -- Bedrock2 programs are
  sequences of small assignments, so this never triggers in practice);
- inline tables are laid out in a read-only data segment and indexed
  like ordinary memory;
- ``SInteract`` becomes an ``ecall`` with the action number in ``a7``.

Calling convention: arguments in ``a0..a7``, results in ``a0``/``a1``,
``ra`` saved in the prologue; everything is 64-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.bedrock2 import ast
from repro.riscv.isa import Instr, REG_NUM

ZERO = REG_NUM["zero"]
RA = REG_NUM["ra"]
SP = REG_NUM["sp"]
FP = REG_NUM["s0"]
A_REGS = [REG_NUM[f"a{i}"] for i in range(8)]
T_REGS = [REG_NUM[name] for name in ("t0", "t1", "t2", "t3", "t4", "t5", "t6")]
# Callee-saved registers used as a per-function constant pool (saved and
# restored in the prologue/epilogue).
POOL_REGS = [REG_NUM[name] for name in ("s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9")]

_BINOPS = {
    "add": "add",
    "sub": "sub",
    "mul": "mul",
    "mulhuu": "mulhu",
    "divu": "divu",
    "remu": "remu",
    "and": "and",
    "or": "or",
    "xor": "xor",
    "sru": "srl",
    "slu": "sll",
    "srs": "sra",
    "ltu": "sltu",
    "lts": "slt",
}

_LOADS = {1: "lbu", 2: "lhu", 4: "lwu", 8: "ld"}
_STORES = {1: "sb", 2: "sh", 4: "sw", 8: "sd"}


class CompileError(Exception):
    """The Bedrock2 program does not fit this backend's restrictions."""


# Pseudo-instructions resolved by the layout pass.
@dataclass
class Label:
    id: int


@dataclass
class Branch:  # conditional branch to a label
    name: str
    rs1: int
    rs2: int
    target: int


@dataclass
class Jump:  # unconditional jump to a label
    target: int


@dataclass
class CallFixup:  # jal to another function, resolved at link time
    func: str


Emitted = Union[Instr, Label, Branch, Jump, CallFixup]


@dataclass
class CompiledProgram:
    """Linked RV64 code plus its data segment and action table."""

    instrs: List[Instr]
    entry_points: Dict[str, int]  # function name -> instruction index
    data: bytes
    data_base: int
    actions: List[str]  # index = a7 value for SInteract ecalls

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.instrs)


class _FunctionCompiler:
    def __init__(self, fn: ast.Function, tables: Dict[int, int], actions: List[str]):
        self.fn = fn
        self.tables = tables  # id(table bytes) -> absolute data address
        self.actions = actions
        self.out: List[Emitted] = []
        self.slots: Dict[str, int] = {}
        self._label_counter = 0
        for name in fn.args:
            self._slot(name)
        self._collect_locals(fn.body)
        for name in fn.rets:
            self._slot(name)
        # Constant pool: wide literals are materialized once into saved
        # registers (what a C compiler's loop-invariant hoisting does),
        # instead of byte-by-byte at every use.
        self.pool: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        self._count_constants(fn.body, counts)
        widest = sorted(counts, key=lambda v: (-counts[v], v))
        for value in widest[: len(POOL_REGS)]:
            self.pool[value] = POOL_REGS[len(self.pool)]

    def _count_constants(self, stmt: ast.Stmt, counts: Dict[int, int]) -> None:
        def visit_expr(expr: ast.Expr) -> None:
            if isinstance(expr, ast.ELit):
                value = expr.value & ((1 << 64) - 1)
                signed = value - (1 << 64) if value >> 63 else value
                if not -2048 <= signed <= 2047:
                    counts[value] = counts.get(value, 0) + 1
            elif isinstance(expr, ast.EOp):
                visit_expr(expr.lhs)
                visit_expr(expr.rhs)
            elif isinstance(expr, ast.ELoad):
                visit_expr(expr.addr)
            elif isinstance(expr, ast.EInlineTable):
                visit_expr(expr.index)

        if isinstance(stmt, ast.SSet):
            visit_expr(stmt.rhs)
        elif isinstance(stmt, ast.SStore):
            visit_expr(stmt.addr)
            visit_expr(stmt.value)
        elif isinstance(stmt, ast.SSeq):
            self._count_constants(stmt.first, counts)
            self._count_constants(stmt.second, counts)
        elif isinstance(stmt, ast.SCond):
            visit_expr(stmt.cond)
            self._count_constants(stmt.then_, counts)
            self._count_constants(stmt.else_, counts)
        elif isinstance(stmt, ast.SWhile):
            visit_expr(stmt.cond)
            self._count_constants(stmt.body, counts)
        elif isinstance(stmt, ast.SStackalloc):
            self._count_constants(stmt.body, counts)
        elif isinstance(stmt, (ast.SCall, ast.SInteract)):
            for arg in stmt.args:
                visit_expr(arg)

    # -- Bookkeeping -----------------------------------------------------------

    def _slot(self, name: str) -> int:
        if name not in self.slots:
            self.slots[name] = len(self.slots)
        return self.slots[name]

    def _collect_locals(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.SSet):
            self._slot(stmt.lhs)
        elif isinstance(stmt, ast.SStackalloc):
            self._slot(stmt.lhs)
            self._collect_locals(stmt.body)
        elif isinstance(stmt, ast.SSeq):
            self._collect_locals(stmt.first)
            self._collect_locals(stmt.second)
        elif isinstance(stmt, ast.SCond):
            self._collect_locals(stmt.then_)
            self._collect_locals(stmt.else_)
        elif isinstance(stmt, ast.SWhile):
            self._collect_locals(stmt.body)
        elif isinstance(stmt, (ast.SCall, ast.SInteract)):
            for lhs in stmt.lhss:
                self._slot(lhs)

    def _fresh_label(self) -> int:
        self._label_counter += 1
        return self._label_counter

    def _slot_offset(self, name: str) -> int:
        # fp-8/fp-16 hold the saved ra/s0, then the pool saves, then locals.
        return -8 * (self.slots[name] + 3 + len(self.pool))

    @property
    def frame_size(self) -> int:
        # Locals + saved ra + saved s0 + saved pool registers, aligned.
        raw = 8 * len(self.slots) + 16 + 8 * len(self.pool)
        return (raw + 15) & ~15

    def _pool_save_offset(self, index: int) -> int:
        # Pool saves sit between ra/s0 and the local slots.
        return self.frame_size - 24 - 8 * index

    # -- Emission helpers ---------------------------------------------------------

    def emit(self, instr: Emitted) -> None:
        self.out.append(instr)

    def li(self, reg: int, value: int) -> None:
        """Materialize a 64-bit constant."""
        value &= (1 << 64) - 1
        signed = value - (1 << 64) if value >> 63 else value
        if -2048 <= signed <= 2047:
            self.emit(Instr("addi", reg, ZERO, signed))
            return
        # Build byte-by-byte from the most significant nonzero byte.
        started = False
        for index in range(7, -1, -1):
            byte = (value >> (8 * index)) & 0xFF
            if not started:
                if byte == 0:
                    continue
                self.emit(Instr("addi", reg, ZERO, byte))
                started = True
            else:
                self.emit(Instr("slli", reg, reg, 8))
                if byte:
                    self.emit(Instr("ori", reg, reg, byte))
        if not started:
            self.emit(Instr("addi", reg, ZERO, 0))

    def load_local(self, reg: int, name: str) -> None:
        if name not in self.slots:
            raise CompileError(f"unbound Bedrock2 local {name!r}")
        self.emit(Instr("ld", reg, FP, self._slot_offset(name)))

    def store_local(self, reg: int, name: str) -> None:
        self.emit(Instr("sd", reg, FP, self._slot_offset(name)))

    # -- Expressions -----------------------------------------------------------------

    def expr(self, node: ast.Expr, depth: int) -> int:
        """Evaluate ``node`` into a temporary; returns the register."""
        if depth >= len(T_REGS) - 1:
            raise CompileError("expression too deep for the register stack")
        reg = T_REGS[depth]
        if isinstance(node, ast.ELit):
            pooled = self.pool.get(node.value & ((1 << 64) - 1))
            if pooled is not None:
                return pooled
            self.li(reg, node.value)
            return reg
        if isinstance(node, ast.EVar):
            self.load_local(reg, node.name)
            return reg
        if isinstance(node, ast.ELoad):
            addr = self.expr(node.addr, depth)
            self.emit(Instr(_LOADS[node.size], reg, addr, 0))
            return reg
        if isinstance(node, ast.EInlineTable):
            index = self.expr(node.index, depth)
            base_reg = T_REGS[depth + 1]
            self.li(base_reg, self.tables[id(node.data)])
            self.emit(Instr("add", reg, index, base_reg))
            self.emit(Instr(_LOADS[node.size], reg, reg, 0))
            return reg
        if isinstance(node, ast.EOp):
            lhs = self.expr(node.lhs, depth)
            rhs = self.expr(node.rhs, depth + 1)
            if node.op in _BINOPS:
                self.emit(Instr(_BINOPS[node.op], reg, lhs, rhs))
            elif node.op == "eq":
                self.emit(Instr("xor", reg, lhs, rhs))
                self.emit(Instr("sltiu", reg, reg, 1))
            else:
                raise CompileError(f"operator {node.op!r} not supported")
            return reg
        raise CompileError(f"cannot compile expression {node!r}")

    # -- Statements --------------------------------------------------------------------

    def stmt(self, node: ast.Stmt) -> None:
        if isinstance(node, ast.SSkip):
            return
        if isinstance(node, ast.SUnset):
            return
        if isinstance(node, ast.SSet):
            reg = self.expr(node.rhs, 0)
            self.store_local(reg, node.lhs)
            return
        if isinstance(node, ast.SStore):
            addr = self.expr(node.addr, 0)
            value = self.expr(node.value, 1)
            self.emit(Instr(_STORES[node.size], value, addr, 0))
            return
        if isinstance(node, ast.SSeq):
            self.stmt(node.first)
            self.stmt(node.second)
            return
        if isinstance(node, ast.SCond):
            cond = self.expr(node.cond, 0)
            else_label = self._fresh_label()
            end_label = self._fresh_label()
            self.emit(Branch("beq", cond, ZERO, else_label))
            self.stmt(node.then_)
            self.emit(Jump(end_label))
            self.emit(Label(else_label))
            self.stmt(node.else_)
            self.emit(Label(end_label))
            return
        if isinstance(node, ast.SWhile):
            head_label = self._fresh_label()
            end_label = self._fresh_label()
            self.emit(Label(head_label))
            cond = self.expr(node.cond, 0)
            self.emit(Branch("beq", cond, ZERO, end_label))
            self.stmt(node.body)
            self.emit(Jump(head_label))
            self.emit(Label(end_label))
            return
        if isinstance(node, ast.SStackalloc):
            aligned = (node.nbytes + 15) & ~15
            self.emit(Instr("addi", SP, SP, -aligned))
            self.emit(Instr("addi", T_REGS[0], SP, 0))
            self.store_local(T_REGS[0], node.lhs)
            self.stmt(node.body)
            self.emit(Instr("addi", SP, SP, aligned))
            return
        if isinstance(node, ast.SCall):
            if len(node.args) > len(A_REGS):
                raise CompileError("too many call arguments")
            for index, arg in enumerate(node.args):
                reg = self.expr(arg, index)
                if index >= len(T_REGS) - 1:
                    raise CompileError("too many call arguments for temporaries")
            for index in range(len(node.args)):
                self.emit(Instr("add", A_REGS[index], T_REGS[index], ZERO))
            self.emit(CallFixup(node.func))
            for index, lhs in enumerate(node.lhss[:2]):
                self.store_local(A_REGS[index], lhs)
            if len(node.lhss) > 2:
                raise CompileError("at most two call results supported")
            return
        if isinstance(node, ast.SInteract):
            if node.action not in self.actions:
                self.actions.append(node.action)
            action_id = self.actions.index(node.action)
            for index, arg in enumerate(node.args):
                reg = self.expr(arg, index)
            for index in range(len(node.args)):
                self.emit(Instr("add", A_REGS[index], T_REGS[index], ZERO))
            self.li(REG_NUM["a7"], action_id)
            self.emit(Instr("ecall"))
            for index, lhs in enumerate(node.lhss[:2]):
                self.store_local(A_REGS[index], lhs)
            return
        raise CompileError(f"cannot compile statement {node!r}")

    # -- Whole function -----------------------------------------------------------------

    def compile(self) -> List[Emitted]:
        frame = self.frame_size
        self.emit(Instr("addi", SP, SP, -frame))
        self.emit(Instr("sd", RA, SP, frame - 8))
        self.emit(Instr("sd", FP, SP, frame - 16))
        self.emit(Instr("addi", FP, SP, frame))
        for index, (value, reg) in enumerate(self.pool.items()):
            self.emit(Instr("sd", reg, SP, frame - 24 - 8 * index))
            self.li(reg, value)
        for index, name in enumerate(self.fn.args):
            if index >= len(A_REGS):
                raise CompileError("too many function arguments")
            self.store_local(A_REGS[index], name)
        self.stmt(self.fn.body)
        for index, name in enumerate(self.fn.rets[:2]):
            self.load_local(T_REGS[0], name)
            self.emit(Instr("add", A_REGS[index], T_REGS[0], ZERO))
        if len(self.fn.rets) > 2:
            raise CompileError("at most two results supported")
        for index, (_value, reg) in enumerate(self.pool.items()):
            self.emit(Instr("ld", reg, SP, frame - 24 - 8 * index))
        self.emit(Instr("ld", RA, SP, frame - 8))
        self.emit(Instr("ld", FP, SP, frame - 16))
        self.emit(Instr("addi", SP, SP, frame))
        self.emit(Instr("jalr", ZERO, RA, 0))
        return self.out


def _collect_tables(stmt: ast.Stmt, found: Dict[int, bytes]) -> None:
    def visit_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.EInlineTable):
            found.setdefault(id(expr.data), expr.data)
            visit_expr(expr.index)
        elif isinstance(expr, ast.EOp):
            visit_expr(expr.lhs)
            visit_expr(expr.rhs)
        elif isinstance(expr, ast.ELoad):
            visit_expr(expr.addr)

    if isinstance(stmt, ast.SSet):
        visit_expr(stmt.rhs)
    elif isinstance(stmt, ast.SStore):
        visit_expr(stmt.addr)
        visit_expr(stmt.value)
    elif isinstance(stmt, ast.SSeq):
        _collect_tables(stmt.first, found)
        _collect_tables(stmt.second, found)
    elif isinstance(stmt, ast.SCond):
        visit_expr(stmt.cond)
        _collect_tables(stmt.then_, found)
        _collect_tables(stmt.else_, found)
    elif isinstance(stmt, ast.SWhile):
        visit_expr(stmt.cond)
        _collect_tables(stmt.body, found)
    elif isinstance(stmt, ast.SStackalloc):
        _collect_tables(stmt.body, found)
    elif isinstance(stmt, (ast.SCall, ast.SInteract)):
        for arg in stmt.args:
            visit_expr(arg)


def compile_program(
    program: ast.Program, data_base: int = 0x4000
) -> CompiledProgram:
    """Compile and link a whole Bedrock2 program."""
    tables_raw: Dict[int, bytes] = {}
    for fn in program.functions:
        _collect_tables(fn.body, tables_raw)
    data = bytearray()
    table_addrs: Dict[int, int] = {}
    for key, contents in tables_raw.items():
        table_addrs[key] = data_base + len(data)
        data.extend(contents)
        while len(data) % 8:
            data.append(0)

    actions: List[str] = []
    chunks: List[Tuple[str, List[Emitted]]] = []
    for fn in program.functions:
        compiler = _FunctionCompiler(fn, table_addrs, actions)
        chunks.append((fn.name, compiler.compile()))

    # Layout pass: assign instruction indices, resolve labels per function.
    instrs: List[Instr] = []
    entry_points: Dict[str, int] = {}
    fixups: List[Tuple[int, str]] = []  # (instruction index, callee)
    for name, emitted in chunks:
        entry_points[name] = len(instrs)
        label_at: Dict[int, int] = {}
        position = len(instrs)
        pending: List[Tuple[int, Emitted]] = []
        # First sub-pass: compute label addresses.
        cursor = position
        for item in emitted:
            if isinstance(item, Label):
                label_at[item.id] = cursor
            else:
                cursor += 1
        # Second sub-pass: emit with offsets.
        cursor = position
        for item in emitted:
            if isinstance(item, Label):
                continue
            if isinstance(item, Branch):
                offset = 4 * (label_at[item.target] - cursor)
                instrs.append(Instr(item.name, item.rs1, item.rs2, offset))
            elif isinstance(item, Jump):
                offset = 4 * (label_at[item.target] - cursor)
                instrs.append(Instr("jal", ZERO, offset))
            elif isinstance(item, CallFixup):
                fixups.append((cursor, item.func))
                instrs.append(Instr("jal", RA, 0))  # patched below
            else:
                instrs.append(item)
            cursor += 1
    for index, callee in fixups:
        if callee not in entry_points:
            raise CompileError(f"call to unknown function {callee!r}")
        offset = 4 * (entry_points[callee] - index)
        instrs[index] = Instr("jal", RA, offset)
    return CompiledProgram(
        instrs=instrs,
        entry_points=entry_points,
        data=bytes(data),
        data_base=data_base,
        actions=actions,
    )


def compile_function(fn: ast.Function, **kwargs) -> CompiledProgram:
    return compile_program(ast.Program((fn,)), **kwargs)
