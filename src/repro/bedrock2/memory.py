"""Bedrock2's flat, byte-addressed memory model.

Bedrock2 gives programs a partial map from word addresses to bytes; a load
or store at an unmapped address is undefined behaviour and the semantics
reject the execution.  We model this as a set of disjoint allocated
*regions* over a sparse byte store, which gives us:

- precise out-of-bounds detection (accesses must fall inside one region);
- cheap stack allocation/deallocation for ``SStackalloc``;
- the footprint bookkeeping the differential tester uses to check that a
  compiled function only writes memory its separation-logic precondition
  owns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class MemoryError_(Exception):
    """An undefined-behaviour memory access (out of bounds or unaligned region)."""


@dataclass(frozen=True)
class Region:
    """A contiguous allocated block ``[base, base + size)``."""

    base: int
    size: int
    label: str = ""

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, nbytes: int = 1) -> bool:
        return self.base <= addr and addr + nbytes <= self.end


class Memory:
    """Sparse byte-addressed memory with explicit allocated regions.

    Addresses are plain unsigned ints (the interpreter truncates word
    addresses to the target width before calling in here).
    """

    def __init__(self, width: int = 64):
        self.width = width
        self._bytes: Dict[int, int] = {}
        self._regions: List[Region] = []
        # Bump allocator state for tests/benchmarks that want "fresh" blocks.
        self._next_base = 0x1000
        # Stack allocations grow downward from high memory.
        self._stack_top = (1 << min(width, 47)) - 0x1000
        self.write_count = 0
        self.read_count = 0

    # -- Allocation ---------------------------------------------------------

    def allocate(self, size: int, label: str = "", base: Optional[int] = None) -> int:
        """Allocate a fresh region of ``size`` bytes; returns its base address."""
        if size < 0:
            raise ValueError("allocation size must be nonnegative")
        if base is None:
            base = self._next_base
            self._next_base = base + size + 0x40  # red zone between blocks
        region = Region(base, size, label)
        for other in self._regions:
            if region.base < other.end and other.base < region.end:
                raise MemoryError_(
                    f"allocation [{base:#x},{base + size:#x}) overlaps {other}"
                )
        self._regions.append(region)
        for offset in range(size):
            self._bytes.setdefault(base + offset, 0)
        return base

    def allocate_stack(self, size: int) -> int:
        """Allocate a stack block (grows downward); used by ``SStackalloc``."""
        self._stack_top -= size + 0x20
        base = self._stack_top
        return self.allocate(size, label="stack", base=base)

    def free(self, base: int) -> None:
        """Free the region starting exactly at ``base``."""
        for index, region in enumerate(self._regions):
            if region.base == base:
                del self._regions[index]
                for offset in range(region.size):
                    self._bytes.pop(base + offset, None)
                return
        raise MemoryError_(f"free of unallocated address {base:#x}")

    def store_bytes_at(self, base: int, data: bytes, label: str = "") -> int:
        """Allocate a region at ``base`` and initialize it with ``data``."""
        self.allocate(len(data), label=label, base=base)
        for offset, byte in enumerate(data):
            self._bytes[base + offset] = byte
        return base

    def place_bytes(self, data: bytes, label: str = "") -> int:
        """Allocate a fresh region initialized with ``data``; returns its base."""
        base = self.allocate(len(data), label=label)
        for offset, byte in enumerate(data):
            self._bytes[base + offset] = byte
        return base

    # -- Access -------------------------------------------------------------

    def _region_for(self, addr: int, nbytes: int) -> Region:
        for region in self._regions:
            if region.contains(addr, nbytes):
                return region
        raise MemoryError_(f"access of {nbytes} byte(s) at {addr:#x} is out of bounds")

    def load(self, addr: int, nbytes: int) -> int:
        """Load ``nbytes`` little-endian bytes; raises on unmapped access."""
        self._region_for(addr, nbytes)
        self.read_count += 1
        value = 0
        for offset in range(nbytes):
            value |= self._bytes.get(addr + offset, 0) << (8 * offset)
        return value

    def store(self, addr: int, nbytes: int, value: int) -> None:
        """Store ``nbytes`` little-endian bytes; raises on unmapped access."""
        self._region_for(addr, nbytes)
        self.write_count += 1
        for offset in range(nbytes):
            self._bytes[addr + offset] = (value >> (8 * offset)) & 0xFF

    def load_bytes(self, addr: int, nbytes: int) -> bytes:
        self._region_for(addr, nbytes)
        return bytes(self._bytes.get(addr + offset, 0) for offset in range(nbytes))

    def store_bytes(self, addr: int, data: bytes) -> None:
        if data:
            self._region_for(addr, len(data))
        for offset, byte in enumerate(data):
            self._bytes[addr + offset] = byte

    # -- Introspection --------------------------------------------------------

    @property
    def regions(self) -> Tuple[Region, ...]:
        return tuple(self._regions)

    def region_at(self, base: int) -> Region:
        for region in self._regions:
            if region.base == base:
                return region
        raise MemoryError_(f"no region based at {base:#x}")

    def snapshot(self) -> Dict[int, int]:
        """A copy of all mapped bytes, for differential comparison."""
        return dict(self._bytes)

    def copy(self) -> "Memory":
        clone = Memory(self.width)
        clone._bytes = dict(self._bytes)
        clone._regions = list(self._regions)
        clone._next_base = self._next_base
        clone._stack_top = self._stack_top
        return clone
