"""Pretty-printing Bedrock2 to C.

The paper (§4.3) emphasizes that Bedrock2's C pretty-printer is a ~200-line
program "essentially implementing an identity function", and that keeping
it small keeps the trusted base small.  This module plays the same role:
a direct, syntax-directed rendering of the Bedrock2 AST into C, with no
optimization whatsoever.  Everything is rendered over ``uintptr_t``
(Bedrock2 is untyped; all locals are machine words), like the real
pretty-printer.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bedrock2 import ast

_PRELUDE = """\
#include <stdint.h>
#include <string.h>

// Bedrock2 memory accessors (little-endian, any alignment).
static inline uintptr_t _br2_load(uintptr_t a, int sz) {
  uintptr_t r = 0; memcpy(&r, (void*)a, sz); return r;
}
static inline void _br2_store(uintptr_t a, uintptr_t v, int sz) {
  memcpy((void*)a, &v, sz);
}
static inline uintptr_t _br2_mulhuu(uintptr_t a, uintptr_t b) {
  return (uintptr_t)(((__uint128_t)a * b) >> (8 * sizeof(uintptr_t)));
}
"""

_INFIX_OPS: Dict[str, str] = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "divu": "/",
    "remu": "%",
    "and": "&",
    "or": "|",
    "xor": "^",
    "sru": ">>",
    "slu": "<<",
    "ltu": "<",
    "eq": "==",
}


def _print_expr(expr: ast.Expr, tables: Dict[int, str]) -> str:
    if isinstance(expr, ast.ELit):
        if expr.value < 0:
            return f"(uintptr_t)({expr.value}LL)"
        return f"(uintptr_t)({expr.value}ULL)"
    if isinstance(expr, ast.EVar):
        return expr.name
    if isinstance(expr, ast.ELoad):
        return f"_br2_load({_print_expr(expr.addr, tables)}, {expr.size})"
    if isinstance(expr, ast.EInlineTable):
        name = tables[id(expr.data)]
        index = _print_expr(expr.index, tables)
        return f"_br2_load((uintptr_t)&{name}[{index}], {expr.size})"
    if isinstance(expr, ast.EOp):
        lhs = _print_expr(expr.lhs, tables)
        rhs = _print_expr(expr.rhs, tables)
        if expr.op in _INFIX_OPS:
            return f"({lhs} {_INFIX_OPS[expr.op]} {rhs})"
        if expr.op == "lts":
            return f"((intptr_t){lhs} < (intptr_t){rhs})"
        if expr.op == "srs":
            return f"((uintptr_t)((intptr_t){lhs} >> {rhs}))"
        if expr.op == "mulhuu":
            return f"_br2_mulhuu({lhs}, {rhs})"
        raise ValueError(f"cannot print operator {expr.op!r}")
    raise ValueError(f"cannot print expression {expr!r}")


def _collect_tables(stmt: ast.Stmt, tables: Dict[int, bytes]) -> None:
    def visit_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.EInlineTable):
            tables.setdefault(id(expr.data), expr.data)
            visit_expr(expr.index)
        elif isinstance(expr, ast.EOp):
            visit_expr(expr.lhs)
            visit_expr(expr.rhs)
        elif isinstance(expr, ast.ELoad):
            visit_expr(expr.addr)

    if isinstance(stmt, ast.SSet):
        visit_expr(stmt.rhs)
    elif isinstance(stmt, ast.SStore):
        visit_expr(stmt.addr)
        visit_expr(stmt.value)
    elif isinstance(stmt, ast.SSeq):
        _collect_tables(stmt.first, tables)
        _collect_tables(stmt.second, tables)
    elif isinstance(stmt, ast.SCond):
        visit_expr(stmt.cond)
        _collect_tables(stmt.then_, tables)
        _collect_tables(stmt.else_, tables)
    elif isinstance(stmt, ast.SWhile):
        visit_expr(stmt.cond)
        _collect_tables(stmt.body, tables)
    elif isinstance(stmt, ast.SStackalloc):
        _collect_tables(stmt.body, tables)
    elif isinstance(stmt, (ast.SCall, ast.SInteract)):
        for arg in stmt.args:
            visit_expr(arg)


def _locals_of(stmt: ast.Stmt, bound: set) -> List[str]:
    """Variables assigned in ``stmt`` that need a declaration."""
    out: List[str] = []

    def visit(node: ast.Stmt) -> None:
        if isinstance(node, ast.SSet) and node.lhs not in bound:
            bound.add(node.lhs)
            out.append(node.lhs)
        elif isinstance(node, ast.SStackalloc):
            if node.lhs not in bound:
                bound.add(node.lhs)
                out.append(node.lhs)
            visit(node.body)
        elif isinstance(node, ast.SSeq):
            visit(node.first)
            visit(node.second)
        elif isinstance(node, ast.SCond):
            visit(node.then_)
            visit(node.else_)
        elif isinstance(node, ast.SWhile):
            visit(node.body)
        elif isinstance(node, (ast.SCall, ast.SInteract)):
            for lhs in node.lhss:
                if lhs not in bound:
                    bound.add(lhs)
                    out.append(lhs)

    visit(stmt)
    return out


def _print_stmt(stmt: ast.Stmt, tables: Dict[int, str], indent: int) -> List[str]:
    pad = "  " * indent
    if isinstance(stmt, ast.SSkip):
        return [f"{pad}/* skip */;"]
    if isinstance(stmt, ast.SSet):
        return [f"{pad}{stmt.lhs} = {_print_expr(stmt.rhs, tables)};"]
    if isinstance(stmt, ast.SUnset):
        return [f"{pad}/* unset {stmt.name} */;"]
    if isinstance(stmt, ast.SStore):
        addr = _print_expr(stmt.addr, tables)
        value = _print_expr(stmt.value, tables)
        return [f"{pad}_br2_store({addr}, {value}, {stmt.size});"]
    if isinstance(stmt, ast.SStackalloc):
        lines = [f"{pad}{{ uint8_t _stack_{stmt.lhs}[{stmt.nbytes}];"]
        lines.append(f"{pad}  {stmt.lhs} = (uintptr_t)&_stack_{stmt.lhs}[0];")
        lines.extend(_print_stmt(stmt.body, tables, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.SCond):
        lines = [f"{pad}if ({_print_expr(stmt.cond, tables)}) {{"]
        lines.extend(_print_stmt(stmt.then_, tables, indent + 1))
        if not isinstance(stmt.else_, ast.SSkip):
            lines.append(f"{pad}}} else {{")
            lines.extend(_print_stmt(stmt.else_, tables, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.SSeq):
        return _print_stmt(stmt.first, tables, indent) + _print_stmt(
            stmt.second, tables, indent
        )
    if isinstance(stmt, ast.SWhile):
        lines = [f"{pad}while ({_print_expr(stmt.cond, tables)}) {{"]
        lines.extend(_print_stmt(stmt.body, tables, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.SCall):
        args = ", ".join(_print_expr(a, tables) for a in stmt.args)
        if len(stmt.lhss) == 0:
            return [f"{pad}{stmt.func}({args});"]
        if len(stmt.lhss) == 1:
            return [f"{pad}{stmt.lhss[0]} = {stmt.func}({args});"]
        outs = ", ".join(f"&{name}" for name in stmt.lhss)
        return [f"{pad}{stmt.func}({args}, {outs});"]
    if isinstance(stmt, ast.SInteract):
        args = ", ".join(_print_expr(a, tables) for a in stmt.args)
        lhss = "".join(f"{name} = " for name in stmt.lhss)
        return [f"{pad}{lhss}_br2_interact_{stmt.action}({args});"]
    raise ValueError(f"cannot print statement {stmt!r}")


def print_c_function(fn: ast.Function) -> str:
    """Render one Bedrock2 function as C text."""
    tables_raw: Dict[int, bytes] = {}
    _collect_tables(fn.body, tables_raw)
    tables: Dict[int, str] = {}
    table_decls: List[str] = []
    for index, (key, data) in enumerate(tables_raw.items()):
        name = f"_{fn.name}_table{index}"
        tables[key] = name
        contents = ", ".join(str(b) for b in data)
        table_decls.append(
            f"static const uint8_t {name}[{len(data)}] = {{{contents}}};"
        )

    if len(fn.rets) == 0:
        ret_type, epilogue = "void", []
    elif len(fn.rets) == 1:
        ret_type, epilogue = "uintptr_t", [f"  return {fn.rets[0]};"]
    else:
        ret_type = "void"
        epilogue = [f"  *_out{i} = {name};" for i, name in enumerate(fn.rets)]

    params = [f"uintptr_t {name}" for name in fn.args]
    if len(fn.rets) > 1:
        params += [f"uintptr_t *_out{i}" for i in range(len(fn.rets))]
    signature = f"{ret_type} {fn.name}({', '.join(params) or 'void'})"

    bound = set(fn.args)
    decls = _locals_of(fn.body, bound)
    ret_decls = [r for r in fn.rets if r not in bound]

    lines = table_decls + [signature + " {"]
    for name in decls + ret_decls:
        lines.append(f"  uintptr_t {name} = 0;")
    lines.extend(_print_stmt(fn.body, tables, 1))
    lines.extend(epilogue)
    lines.append("}")
    return "\n".join(lines)


def print_c_program(program: ast.Program, include_prelude: bool = True) -> str:
    """Render a whole Bedrock2 program as a single C translation unit."""
    parts = [_PRELUDE] if include_prelude else []
    parts.extend(print_c_function(fn) for fn in program.functions)
    return "\n\n".join(parts) + "\n"
