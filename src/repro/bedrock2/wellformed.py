"""Static well-formedness checking for Bedrock2 functions.

A lightweight definite-assignment and shape analysis, run by the
validation layer before executing anything:

- every variable is assigned before it is read, on every path;
- every declared return variable is assigned on every path;
- ``while`` bodies only rely on variables defined before the loop or
  (re)defined unconditionally inside it on every earlier path;
- access sizes and operator names are legal (the AST constructors check
  these too; re-checked here for certificates whose ASTs were built
  elsewhere).

The analysis is a may/must dataflow over the structured AST: for each
statement we compute the set of variables *definitely* assigned after it,
joining branches by intersection.  This is exactly the class of bug the
error-monad work surfaced (a return variable only set on the success
path), so it runs as part of ``validate``.
"""

from __future__ import annotations

from typing import Set

from repro.bedrock2 import ast


class IllFormed(Exception):
    """The function reads undefined variables or misses a return."""


def _expr_check(expr: ast.Expr, defined: Set[str], where: str) -> None:
    for name in ast.expr_vars(expr):
        if name not in defined:
            raise IllFormed(
                f"{where}: variable {name!r} may be read before assignment"
            )


def _stmt_defs(stmt: ast.Stmt, defined: Set[str]) -> Set[str]:
    """Definitely-assigned set after ``stmt``; raises on undefined reads."""
    if isinstance(stmt, (ast.SSkip,)):
        return defined
    if isinstance(stmt, ast.SUnset):
        return defined - {stmt.name}
    if isinstance(stmt, ast.SSet):
        _expr_check(stmt.rhs, defined, f"assignment to {stmt.lhs!r}")
        return defined | {stmt.lhs}
    if isinstance(stmt, ast.SStore):
        _expr_check(stmt.addr, defined, "store address")
        _expr_check(stmt.value, defined, "store value")
        return defined
    if isinstance(stmt, ast.SSeq):
        return _stmt_defs(stmt.second, _stmt_defs(stmt.first, defined))
    if isinstance(stmt, ast.SCond):
        _expr_check(stmt.cond, defined, "if condition")
        then_defs = _stmt_defs(stmt.then_, set(defined))
        else_defs = _stmt_defs(stmt.else_, set(defined))
        return then_defs & else_defs
    if isinstance(stmt, ast.SWhile):
        _expr_check(stmt.cond, defined, "while condition")
        # The body may not run at all: its definitions don't survive.
        # It must itself be well-formed starting from the pre-loop set
        # (plus its own earlier definitions, handled by recursion).
        _stmt_defs(stmt.body, set(defined))
        return defined
    if isinstance(stmt, ast.SStackalloc):
        # Only the *memory* is lexically scoped; the locals map is flat,
        # so assignments made inside the body persist after it (reads
        # through the stale pointer are runtime errors the interpreter
        # catches).
        return _stmt_defs(stmt.body, defined | {stmt.lhs})
    if isinstance(stmt, ast.SCall):
        for arg in stmt.args:
            _expr_check(arg, defined, f"argument of call to {stmt.func!r}")
        return defined | set(stmt.lhss)
    if isinstance(stmt, ast.SInteract):
        for arg in stmt.args:
            _expr_check(arg, defined, f"argument of action {stmt.action!r}")
        return defined | set(stmt.lhss)
    raise IllFormed(f"unknown statement node {stmt!r}")


def check_function(fn: ast.Function) -> None:
    """Raise :class:`IllFormed` unless ``fn`` is definitely-assigned clean."""
    defined = _stmt_defs(fn.body, set(fn.args))
    for ret in fn.rets:
        if ret not in defined:
            raise IllFormed(
                f"return variable {ret!r} of {fn.name!r} may be unset on "
                "some path"
            )


def check_program(program: ast.Program) -> None:
    for fn in program.functions:
        check_function(fn)
