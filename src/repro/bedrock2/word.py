"""Fixed-width two's-complement machine words.

Bedrock2 locals hold machine words; all arithmetic is modular.  The paper's
examples run on 32- and 64-bit targets; Rupicola additionally manipulates
bytes (width 8) when reading from and writing to memory.  The :class:`Word`
type here mirrors Coq's ``word`` interface from the Bedrock2 development:
unsigned representative, modular ring operations, signed views for the
arithmetic comparisons and shifts that need them.

Words are immutable and hashable so they can be used as dictionary keys
(e.g. in sparse memory maps) and stored in event traces.
"""

from __future__ import annotations

from typing import Iterator, Union

BitWidth = int

_VALID_WIDTHS = (8, 16, 32, 64)

IntLike = Union[int, "Word"]


class Word:
    """An unsigned ``width``-bit machine word with modular arithmetic.

    >>> Word(32, 7) + Word(32, 8)
    Word(32, 0xf)
    >>> -Word(32, 1)
    Word(32, 0xffffffff)
    """

    __slots__ = ("width", "unsigned")

    def __init__(self, width: BitWidth, value: IntLike):
        if width not in _VALID_WIDTHS:
            raise ValueError(f"unsupported word width: {width}")
        if isinstance(value, Word):
            value = value.unsigned
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "unsigned", value & ((1 << width) - 1))

    # Words are conceptually immutable.
    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Word instances are immutable")

    # -- Views ------------------------------------------------------------

    @property
    def signed(self) -> int:
        """The two's-complement signed value of this word."""
        sign_bit = 1 << (self.width - 1)
        return self.unsigned - (1 << self.width) if self.unsigned & sign_bit else self.unsigned

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def to_bytes_le(self, nbytes: int | None = None) -> bytes:
        nbytes = self.width // 8 if nbytes is None else nbytes
        return self.unsigned.to_bytes(nbytes, "little")

    @classmethod
    def from_bytes_le(cls, width: BitWidth, data: bytes) -> "Word":
        return cls(width, int.from_bytes(data, "little"))

    # -- Ring operations ---------------------------------------------------

    def _coerce(self, other: IntLike) -> int:
        if isinstance(other, Word):
            if other.width != self.width:
                raise ValueError(f"width mismatch: {self.width} vs {other.width}")
            return other.unsigned
        return other

    def _make(self, value: int) -> "Word":
        return Word(self.width, value)

    def __add__(self, other: IntLike) -> "Word":
        return self._make(self.unsigned + self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other: IntLike) -> "Word":
        return self._make(self.unsigned - self._coerce(other))

    def __rsub__(self, other: IntLike) -> "Word":
        return self._make(self._coerce(other) - self.unsigned)

    def __mul__(self, other: IntLike) -> "Word":
        return self._make(self.unsigned * self._coerce(other))

    __rmul__ = __mul__

    def __neg__(self) -> "Word":
        return self._make(-self.unsigned)

    def __invert__(self) -> "Word":
        return self._make(~self.unsigned)

    # -- Bitwise -----------------------------------------------------------

    def __and__(self, other: IntLike) -> "Word":
        return self._make(self.unsigned & self._coerce(other))

    __rand__ = __and__

    def __or__(self, other: IntLike) -> "Word":
        return self._make(self.unsigned | self._coerce(other))

    __ror__ = __or__

    def __xor__(self, other: IntLike) -> "Word":
        return self._make(self.unsigned ^ self._coerce(other))

    __rxor__ = __xor__

    def shl(self, amount: IntLike) -> "Word":
        """Logical left shift; shift amounts are taken mod the width, like RISC-V."""
        return self._make(self.unsigned << (self._coerce(amount) % self.width))

    def shr(self, amount: IntLike) -> "Word":
        """Logical (zero-extending) right shift, amount mod width."""
        return self._make(self.unsigned >> (self._coerce(amount) % self.width))

    def sar(self, amount: IntLike) -> "Word":
        """Arithmetic (sign-extending) right shift, amount mod width."""
        return self._make(self.signed >> (self._coerce(amount) % self.width))

    # -- Division (C / RISC-V semantics) ------------------------------------

    def udiv(self, other: IntLike) -> "Word":
        """Unsigned division; division by zero yields the all-ones word (RISC-V)."""
        divisor = self._coerce(other)
        if divisor == 0:
            return self._make(self.mask)
        return self._make(self.unsigned // divisor)

    def umod(self, other: IntLike) -> "Word":
        """Unsigned remainder; modulo zero yields the dividend (RISC-V)."""
        divisor = self._coerce(other)
        if divisor == 0:
            return self._make(self.unsigned)
        return self._make(self.unsigned % divisor)

    # -- Comparisons (these return plain bools; Bedrock2 exprs reify to 0/1) --

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Word):
            return self.width == other.width and self.unsigned == other.unsigned
        if isinstance(other, int):
            return self.unsigned == other & self.mask
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.width, self.unsigned))

    def ltu(self, other: IntLike) -> bool:
        """Unsigned less-than."""
        return self.unsigned < (self._coerce(other) & self.mask)

    def lts(self, other: IntLike) -> bool:
        """Signed less-than."""
        other_w = other if isinstance(other, Word) else self._make(other)
        return self.signed < other_w.signed

    # -- Conversions ---------------------------------------------------------

    def zero_extend(self, width: BitWidth) -> "Word":
        return Word(width, self.unsigned)

    def sign_extend(self, width: BitWidth) -> "Word":
        return Word(width, self.signed)

    def truncate(self, width: BitWidth) -> "Word":
        return Word(width, self.unsigned)

    def byte(self, index: int) -> int:
        """The ``index``-th little-endian byte of this word."""
        return (self.unsigned >> (8 * index)) & 0xFF

    def __int__(self) -> int:
        return self.unsigned

    def __index__(self) -> int:
        return self.unsigned

    def __bool__(self) -> bool:
        return self.unsigned != 0

    def __iter__(self) -> Iterator[int]:
        raise TypeError("Word is not iterable")

    def __repr__(self) -> str:
        return f"Word({self.width}, {hex(self.unsigned)})"


def word8(value: IntLike) -> Word:
    return Word(8, value)


def word16(value: IntLike) -> Word:
    return Word(16, value)


def word32(value: IntLike) -> Word:
    return Word(32, value)


def word64(value: IntLike) -> Word:
    return Word(64, value)


def truthy(width: BitWidth, condition: bool) -> Word:
    """Reify a boolean into a Bedrock2 word (1 for true, 0 for false)."""
    return Word(width, 1 if condition else 0)
