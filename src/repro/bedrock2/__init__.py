"""A deep embedding of Bedrock2, Rupicola's target language.

Bedrock2 (Erbsen et al., PLDI 2021) is an untyped, C-like imperative
language with a flat byte-addressed memory, a map of local variables
holding machine words, and an event trace recording externally observable
I/O.  This package provides:

- :mod:`repro.bedrock2.word` -- fixed-width two's-complement machine words;
- :mod:`repro.bedrock2.ast` -- expression and statement syntax trees;
- :mod:`repro.bedrock2.memory` -- the flat memory model;
- :mod:`repro.bedrock2.semantics` -- a fuel-based big-step interpreter
  (Bedrock2 semantics only give meaning to terminating programs, so
  executions are total-correctness witnesses);
- :mod:`repro.bedrock2.c_printer` -- the small pretty-printer to C.
"""

from repro.bedrock2.word import Word, BitWidth
from repro.bedrock2 import ast
from repro.bedrock2.memory import Memory, MemoryError_
from repro.bedrock2.semantics import Interpreter, ExecutionError, OutOfFuel, MachineState
from repro.bedrock2.c_printer import print_c_function, print_c_program

__all__ = [
    "Word",
    "BitWidth",
    "ast",
    "Memory",
    "MemoryError_",
    "Interpreter",
    "ExecutionError",
    "OutOfFuel",
    "MachineState",
    "print_c_function",
    "print_c_program",
]
