"""Abstract syntax for Bedrock2 expressions, statements, and functions.

This mirrors the ``expr`` and ``cmd`` inductives of the Bedrock2 Coq
development (Box 2 in the paper): an untyped, C-like language whose
expressions evaluate to machine words and whose statements mutate a
locals map, a flat memory, and an I/O trace.

All nodes are frozen dataclasses: Rupicola's proof search builds target
programs by filling in existential variables, and immutability guarantees
that a certificate's recorded code cannot be altered after derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

# Access sizes, in bytes, for loads and stores.
SIZE1, SIZE2, SIZE4, SIZE8 = 1, 2, 4, 8
ACCESS_SIZES = (SIZE1, SIZE2, SIZE4, SIZE8)


class Expr:
    """Base class of Bedrock2 expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class ELit(Expr):
    """A word literal (stored as a plain int, truncated at evaluation)."""

    value: int

    def __repr__(self) -> str:
        return f"ELit({self.value})"


@dataclass(frozen=True)
class EVar(Expr):
    """A reference to a local variable."""

    name: str

    def __repr__(self) -> str:
        return f"EVar({self.name!r})"


@dataclass(frozen=True)
class ELoad(Expr):
    """A memory load of ``size`` bytes at the address given by ``addr``."""

    size: int
    addr: Expr

    def __post_init__(self) -> None:
        if self.size not in ACCESS_SIZES:
            raise ValueError(f"invalid access size {self.size}")


@dataclass(frozen=True)
class EOp(Expr):
    """A binary operation on words.

    The operator set matches Bedrock2's ``bopname``: ``add sub mul mulhuu
    divu remu and or xor sru slu srs lts ltu eq``.
    """

    op: str
    lhs: Expr
    rhs: Expr

    OPS = frozenset(
        [
            "add",
            "sub",
            "mul",
            "mulhuu",
            "divu",
            "remu",
            "and",
            "or",
            "xor",
            "sru",
            "slu",
            "srs",
            "lts",
            "ltu",
            "eq",
        ]
    )

    def __post_init__(self) -> None:
        if self.op not in self.OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")


@dataclass(frozen=True)
class EInlineTable(Expr):
    """A read from a function-local constant table (Bedrock2 ``inlinetable``).

    ``data`` is the table contents as raw bytes; the expression reads
    ``size`` bytes, little-endian, at byte offset ``index * size``...
    actually, like Bedrock2, at the byte offset given by ``index`` --
    callers scale indices themselves when storing multi-byte entries.
    """

    size: int
    data: bytes
    index: Expr

    def __post_init__(self) -> None:
        if self.size not in ACCESS_SIZES:
            raise ValueError(f"invalid access size {self.size}")


class Stmt:
    """Base class of Bedrock2 statements (Coq's ``cmd``)."""

    __slots__ = ()


@dataclass(frozen=True)
class SSkip(Stmt):
    """No-op."""


@dataclass(frozen=True)
class SSet(Stmt):
    """``lhs = rhs``: assign an expression's value to a local variable."""

    lhs: str
    rhs: Expr


@dataclass(frozen=True)
class SUnset(Stmt):
    """Remove a variable from the locals map (scoping bookkeeping)."""

    name: str


@dataclass(frozen=True)
class SStore(Stmt):
    """``*(size*)addr = value``: store ``size`` bytes to memory."""

    size: int
    addr: Expr
    value: Expr

    def __post_init__(self) -> None:
        if self.size not in ACCESS_SIZES:
            raise ValueError(f"invalid access size {self.size}")


@dataclass(frozen=True)
class SStackalloc(Stmt):
    """Lexically scoped stack allocation.

    Binds ``lhs`` to a pointer to ``nbytes`` fresh bytes for the duration
    of ``body``; the memory is reclaimed afterwards.  Bedrock2 models the
    initial contents as nondeterministic; our interpreter takes a policy
    (zeros by default, or a caller-provided byte source) so that programs
    whose behaviour depends on the initial contents can be flagged by the
    differential tester.
    """

    lhs: str
    nbytes: int
    body: Stmt


@dataclass(frozen=True)
class SCond(Stmt):
    """``if (cond) { then_ } else { else_ }`` -- nonzero means true."""

    cond: Expr
    then_: Stmt
    else_: Stmt


@dataclass(frozen=True)
class SSeq(Stmt):
    """Sequencing of two statements."""

    first: Stmt
    second: Stmt


@dataclass(frozen=True)
class SWhile(Stmt):
    """``while (cond) { body }``.

    Bedrock2 semantics only give meaning to terminating loops; the
    interpreter enforces this with fuel, so every successful run is a
    total-correctness witness.
    """

    cond: Expr
    body: Stmt


@dataclass(frozen=True)
class SCall(Stmt):
    """Call a named Bedrock2 function, binding its results to ``lhss``."""

    lhss: Tuple[str, ...]
    func: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class SInteract(Stmt):
    """An external interaction (MMIO / syscall-like event).

    Appends an event to the trace; the environment decides the returned
    words.  This is how Rupicola compiles the I/O monad.
    """

    lhss: Tuple[str, ...]
    action: str
    args: Tuple[Expr, ...]


@dataclass(frozen=True)
class Function:
    """A Bedrock2 function: argument names, return variable names, body."""

    name: str
    args: Tuple[str, ...]
    rets: Tuple[str, ...]
    body: Stmt

    def __post_init__(self) -> None:
        if len(set(self.args)) != len(self.args):
            raise ValueError(f"duplicate argument names in {self.name}")


@dataclass(frozen=True)
class Program:
    """A collection of Bedrock2 functions indexed by name."""

    functions: Tuple[Function, ...] = field(default_factory=tuple)

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")

    def with_function(self, fn: Function) -> "Program":
        return Program(self.functions + (fn,))


# -- Construction helpers ----------------------------------------------------


def seq_of(*stmts: Stmt) -> Stmt:
    """Right-nested sequencing of any number of statements."""
    items = [s for s in stmts if not isinstance(s, SSkip)]
    if not items:
        return SSkip()
    result = items[-1]
    for stmt in reversed(items[:-1]):
        result = SSeq(stmt, result)
    return result


def lit(value: int) -> ELit:
    return ELit(value)


def var(name: str) -> EVar:
    return EVar(name)


def op(name: str, lhs: Expr, rhs: Expr) -> EOp:
    return EOp(name, lhs, rhs)


def add(lhs: Expr, rhs: Expr) -> EOp:
    return EOp("add", lhs, rhs)


def sub(lhs: Expr, rhs: Expr) -> EOp:
    return EOp("sub", lhs, rhs)


def mul(lhs: Expr, rhs: Expr) -> EOp:
    return EOp("mul", lhs, rhs)


def band(lhs: Expr, rhs: Expr) -> EOp:
    return EOp("and", lhs, rhs)


def bor(lhs: Expr, rhs: Expr) -> EOp:
    return EOp("or", lhs, rhs)


def bxor(lhs: Expr, rhs: Expr) -> EOp:
    return EOp("xor", lhs, rhs)


def shl(lhs: Expr, rhs: Expr) -> EOp:
    return EOp("slu", lhs, rhs)


def shr(lhs: Expr, rhs: Expr) -> EOp:
    return EOp("sru", lhs, rhs)


def ltu(lhs: Expr, rhs: Expr) -> EOp:
    return EOp("ltu", lhs, rhs)


def eq(lhs: Expr, rhs: Expr) -> EOp:
    return EOp("eq", lhs, rhs)


def load(size: int, addr: Expr) -> ELoad:
    return ELoad(size, addr)


def load1(addr: Expr) -> ELoad:
    return ELoad(SIZE1, addr)


def load4(addr: Expr) -> ELoad:
    return ELoad(SIZE4, addr)


def store(size: int, addr: Expr, value: Expr) -> SStore:
    return SStore(size, addr, value)


def statement_count(stmt: Stmt) -> int:
    """Number of statement nodes, used for compiler-throughput metrics (E5)."""
    if isinstance(stmt, SSeq):
        return statement_count(stmt.first) + statement_count(stmt.second)
    if isinstance(stmt, SCond):
        return 1 + statement_count(stmt.then_) + statement_count(stmt.else_)
    if isinstance(stmt, SWhile):
        return 1 + statement_count(stmt.body)
    if isinstance(stmt, SStackalloc):
        return 1 + statement_count(stmt.body)
    if isinstance(stmt, SSkip):
        return 0
    return 1


def fingerprint(node) -> str:
    """A short stable hash of an AST node (used by optimizer certificates).

    Frozen dataclasses have deterministic ``repr``s that recurse over the
    whole tree, so hashing the repr fingerprints the exact syntax.
    """
    import hashlib

    return hashlib.sha256(repr(node).encode("utf-8")).hexdigest()[:16]


def expr_vars(expr: Expr) -> set:
    """The set of local-variable names read by ``expr``."""
    if isinstance(expr, EVar):
        return {expr.name}
    if isinstance(expr, EOp):
        return expr_vars(expr.lhs) | expr_vars(expr.rhs)
    if isinstance(expr, ELoad):
        return expr_vars(expr.addr)
    if isinstance(expr, EInlineTable):
        return expr_vars(expr.index)
    return set()
