"""A canonical JSON codec for the Bedrock2 AST.

The compilation cache (:mod:`repro.serve`) stores derived functions on
disk; this module is the codec.  Design rules, mirroring the certificate
serialization in :mod:`repro.core.certificate`:

- **canonical** -- every node encodes as a tagged dict with sorted keys
  and fixed separators, so structurally equal functions serialize to
  identical bytes (the content-addressing property);
- **versioned** -- a schema header is embedded at the function level and
  checked on decode, so a format change can never be misread as data
  corruption (or vice versa);
- **total on decode errors** -- malformed input raises the typed
  :class:`ASTDecodeError`, never an arbitrary exception, so cache-load
  paths can treat any failure as "entry rejected" and fall back.

All AST nodes are frozen dataclasses, so ``decode(encode(fn)) == fn``
holds by structural equality -- pinned by ``tests/serve/test_serial.py``.
"""

from __future__ import annotations

import json

from repro.bedrock2 import ast

AST_SCHEMA_VERSION = 1


class ASTDecodeError(Exception):
    """A serialized AST is malformed or from another schema version."""


def encode_expr(expr: ast.Expr) -> dict:
    if isinstance(expr, ast.ELit):
        return {"k": "lit", "value": expr.value}
    if isinstance(expr, ast.EVar):
        return {"k": "var", "name": expr.name}
    if isinstance(expr, ast.ELoad):
        return {"k": "load", "size": expr.size, "addr": encode_expr(expr.addr)}
    if isinstance(expr, ast.EOp):
        return {
            "k": "op",
            "op": expr.op,
            "lhs": encode_expr(expr.lhs),
            "rhs": encode_expr(expr.rhs),
        }
    if isinstance(expr, ast.EInlineTable):
        return {
            "k": "table",
            "size": expr.size,
            "data": expr.data.hex(),
            "index": encode_expr(expr.index),
        }
    raise TypeError(f"cannot encode expression {expr!r}")


def decode_expr(data: dict) -> ast.Expr:
    try:
        kind = data["k"]
        if kind == "lit":
            return ast.ELit(int(data["value"]))
        if kind == "var":
            return ast.EVar(data["name"])
        if kind == "load":
            return ast.ELoad(data["size"], decode_expr(data["addr"]))
        if kind == "op":
            return ast.EOp(data["op"], decode_expr(data["lhs"]), decode_expr(data["rhs"]))
        if kind == "table":
            return ast.EInlineTable(
                data["size"], bytes.fromhex(data["data"]), decode_expr(data["index"])
            )
    except ASTDecodeError:
        raise
    except Exception as exc:  # noqa: BLE001 - any malformed payload is a decode error
        raise ASTDecodeError(f"bad expression payload: {exc!r}") from None
    raise ASTDecodeError(f"unknown expression tag {data.get('k')!r}")


def encode_stmt(stmt: ast.Stmt) -> dict:
    if isinstance(stmt, ast.SSkip):
        return {"k": "skip"}
    if isinstance(stmt, ast.SSet):
        return {"k": "set", "lhs": stmt.lhs, "rhs": encode_expr(stmt.rhs)}
    if isinstance(stmt, ast.SUnset):
        return {"k": "unset", "name": stmt.name}
    if isinstance(stmt, ast.SStore):
        return {
            "k": "store",
            "size": stmt.size,
            "addr": encode_expr(stmt.addr),
            "value": encode_expr(stmt.value),
        }
    if isinstance(stmt, ast.SStackalloc):
        return {
            "k": "stackalloc",
            "lhs": stmt.lhs,
            "nbytes": stmt.nbytes,
            "body": encode_stmt(stmt.body),
        }
    if isinstance(stmt, ast.SCond):
        return {
            "k": "cond",
            "cond": encode_expr(stmt.cond),
            "then": encode_stmt(stmt.then_),
            "else": encode_stmt(stmt.else_),
        }
    if isinstance(stmt, ast.SSeq):
        return {
            "k": "seq",
            "first": encode_stmt(stmt.first),
            "second": encode_stmt(stmt.second),
        }
    if isinstance(stmt, ast.SWhile):
        return {"k": "while", "cond": encode_expr(stmt.cond), "body": encode_stmt(stmt.body)}
    if isinstance(stmt, ast.SCall):
        return {
            "k": "call",
            "lhss": list(stmt.lhss),
            "func": stmt.func,
            "args": [encode_expr(a) for a in stmt.args],
        }
    if isinstance(stmt, ast.SInteract):
        return {
            "k": "interact",
            "lhss": list(stmt.lhss),
            "action": stmt.action,
            "args": [encode_expr(a) for a in stmt.args],
        }
    raise TypeError(f"cannot encode statement {stmt!r}")


def decode_stmt(data: dict) -> ast.Stmt:
    try:
        kind = data["k"]
        if kind == "skip":
            return ast.SSkip()
        if kind == "set":
            return ast.SSet(data["lhs"], decode_expr(data["rhs"]))
        if kind == "unset":
            return ast.SUnset(data["name"])
        if kind == "store":
            return ast.SStore(
                data["size"], decode_expr(data["addr"]), decode_expr(data["value"])
            )
        if kind == "stackalloc":
            return ast.SStackalloc(data["lhs"], data["nbytes"], decode_stmt(data["body"]))
        if kind == "cond":
            return ast.SCond(
                decode_expr(data["cond"]),
                decode_stmt(data["then"]),
                decode_stmt(data["else"]),
            )
        if kind == "seq":
            return ast.SSeq(decode_stmt(data["first"]), decode_stmt(data["second"]))
        if kind == "while":
            return ast.SWhile(decode_expr(data["cond"]), decode_stmt(data["body"]))
        if kind == "call":
            return ast.SCall(
                tuple(data["lhss"]),
                data["func"],
                tuple(decode_expr(a) for a in data["args"]),
            )
        if kind == "interact":
            return ast.SInteract(
                tuple(data["lhss"]),
                data["action"],
                tuple(decode_expr(a) for a in data["args"]),
            )
    except ASTDecodeError:
        raise
    except Exception as exc:  # noqa: BLE001
        raise ASTDecodeError(f"bad statement payload: {exc!r}") from None
    raise ASTDecodeError(f"unknown statement tag {data.get('k')!r}")


def encode_function(fn: ast.Function) -> dict:
    return {
        "schema": AST_SCHEMA_VERSION,
        "name": fn.name,
        "args": list(fn.args),
        "rets": list(fn.rets),
        "body": encode_stmt(fn.body),
    }


def decode_function(data: dict) -> ast.Function:
    if not isinstance(data, dict):
        raise ASTDecodeError(f"function payload is {type(data).__name__}, not a dict")
    schema = data.get("schema")
    if schema != AST_SCHEMA_VERSION:
        raise ASTDecodeError(
            f"AST schema {schema!r} != {AST_SCHEMA_VERSION} "
            "(stale or foreign serialization)"
        )
    try:
        return ast.Function(
            name=data["name"],
            args=tuple(data["args"]),
            rets=tuple(data["rets"]),
            body=decode_stmt(data["body"]),
        )
    except ASTDecodeError:
        raise
    except Exception as exc:  # noqa: BLE001
        raise ASTDecodeError(f"bad function payload: {exc!r}") from None


def function_to_json(fn: ast.Function) -> str:
    """Canonical JSON: sorted keys, compact separators, stable bytes."""
    return json.dumps(encode_function(fn), sort_keys=True, separators=(",", ":"))


def function_from_json(text: str) -> ast.Function:
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise ASTDecodeError(f"not JSON: {exc}") from None
    return decode_function(data)
