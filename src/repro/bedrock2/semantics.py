"""A fuel-based big-step interpreter for Bedrock2.

Bedrock2's semantics (Box 2 of the paper) split program state into three
parts: a flat memory, the current function's locals (a map from names to
machine words), and an event trace of externally observable interactions.
Loops only have meaning when they terminate, so the interpreter carries
*fuel*; a successful run is therefore a total-correctness witness, which is
exactly the property Rupicola's derivations claim.

The interpreter doubles as the cost model for the Figure 2 reproduction:
it counts each primitive operation it executes (arithmetic, loads, stores,
assignments, branches), and the benchmark harness turns those counters
into "cycles per byte"-shaped numbers under several weightings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bedrock2 import ast
from repro.bedrock2.memory import Memory, MemoryError_
from repro.bedrock2.word import Word, truthy


class ExecutionError(Exception):
    """The program's behaviour is undefined (bad variable, bad access, ...)."""


def apply_op(op: str, lhs: Word, rhs: Word) -> Word:
    """Evaluate one Bedrock2 binary operator on machine words.

    This is the single source of truth for operator semantics: the
    interpreter calls it per ``EOp``, and the optimizer's constant folder
    (:mod:`repro.opt.passes`) calls it at compile time, so folded
    literals are bit-exact by construction.
    """
    width = lhs.width
    if op == "add":
        return lhs + rhs
    if op == "sub":
        return lhs - rhs
    if op == "mul":
        return lhs * rhs
    if op == "mulhuu":
        return Word(width, (lhs.unsigned * rhs.unsigned) >> width)
    if op == "divu":
        return lhs.udiv(rhs)
    if op == "remu":
        return lhs.umod(rhs)
    if op == "and":
        return lhs & rhs
    if op == "or":
        return lhs | rhs
    if op == "xor":
        return lhs ^ rhs
    if op == "sru":
        return lhs.shr(rhs)
    if op == "slu":
        return lhs.shl(rhs)
    if op == "srs":
        return lhs.sar(rhs)
    if op == "lts":
        return truthy(width, lhs.lts(rhs))
    if op == "ltu":
        return truthy(width, lhs.ltu(rhs))
    if op == "eq":
        return truthy(width, lhs == rhs)
    raise ExecutionError(f"unknown operator {op!r}")


class OutOfFuel(ExecutionError):
    """The fuel bound was exhausted: no total-correctness witness produced."""


@dataclass(frozen=True)
class IOEvent:
    """One entry of the Bedrock2 event trace."""

    action: str
    args: Tuple[int, ...]
    rets: Tuple[int, ...]


@dataclass
class OpCounts:
    """Primitive-operation counters, the basis of the Figure 2 cost models."""

    arith: int = 0
    load: int = 0
    store: int = 0
    assign: int = 0
    branch: int = 0
    call: int = 0
    interact: int = 0
    stackalloc: int = 0
    table: int = 0

    def total(self) -> int:
        return (
            self.arith
            + self.load
            + self.store
            + self.assign
            + self.branch
            + self.call
            + self.interact
            + self.stackalloc
            + self.table
        )

    def weighted(self, weights: Dict[str, float]) -> float:
        """Total cost under a per-category weighting (a synthetic 'compiler')."""
        cost = 0.0
        for name, weight in weights.items():
            cost += weight * getattr(self, name)
        return cost

    def as_dict(self) -> Dict[str, int]:
        return {
            "arith": self.arith,
            "load": self.load,
            "store": self.store,
            "assign": self.assign,
            "branch": self.branch,
            "call": self.call,
            "interact": self.interact,
            "stackalloc": self.stackalloc,
            "table": self.table,
        }


@dataclass
class MachineState:
    """Memory + locals + trace: the three components of Bedrock2 state."""

    memory: Memory
    locals: Dict[str, Word] = field(default_factory=dict)
    trace: List[IOEvent] = field(default_factory=list)


ExternalHandler = Callable[[str, Sequence[Word], MachineState], Sequence[Word]]
StackInitPolicy = Callable[[int], bytes]


def zero_stack_init(nbytes: int) -> bytes:
    return bytes(nbytes)


class Interpreter:
    """Executes Bedrock2 statements against a :class:`MachineState`.

    Parameters
    ----------
    program:
        Resolves ``SCall`` targets.
    width:
        Target word width in bits (32 or 64).
    external:
        Handler for ``SInteract`` events; receives the action name and
        argument words, may mutate state, and returns the result words.
    stack_init:
        Policy producing the initial contents of stack allocations
        (Bedrock2 leaves them nondeterministic; defaults to zeros).
    """

    DEFAULT_FUEL = 10_000_000

    def __init__(
        self,
        program: Optional[ast.Program] = None,
        width: int = 64,
        external: Optional[ExternalHandler] = None,
        stack_init: StackInitPolicy = zero_stack_init,
    ):
        if width not in (32, 64):
            raise ValueError("Bedrock2 targets are 32- or 64-bit")
        self.program = program or ast.Program()
        self.width = width
        self.external = external
        self.stack_init = stack_init
        self.counts = OpCounts()

    # -- Expressions ----------------------------------------------------------

    def eval_expr(self, expr: ast.Expr, state: MachineState) -> Word:
        if isinstance(expr, ast.ELit):
            return Word(self.width, expr.value)
        if isinstance(expr, ast.EVar):
            try:
                return state.locals[expr.name]
            except KeyError:
                raise ExecutionError(f"unbound local variable {expr.name!r}") from None
        if isinstance(expr, ast.ELoad):
            addr = self.eval_expr(expr.addr, state)
            self.counts.load += 1
            try:
                raw = state.memory.load(addr.unsigned, expr.size)
            except MemoryError_ as exc:
                raise ExecutionError(str(exc)) from None
            return Word(self.width, raw)
        if isinstance(expr, ast.EOp):
            lhs = self.eval_expr(expr.lhs, state)
            rhs = self.eval_expr(expr.rhs, state)
            self.counts.arith += 1
            return self._apply_op(expr.op, lhs, rhs)
        if isinstance(expr, ast.EInlineTable):
            index = self.eval_expr(expr.index, state)
            self.counts.table += 1
            offset = index.unsigned
            if offset + expr.size > len(expr.data):
                raise ExecutionError(
                    f"inline-table read of {expr.size} byte(s) at offset {offset} "
                    f"exceeds table length {len(expr.data)}"
                )
            raw = int.from_bytes(expr.data[offset : offset + expr.size], "little")
            return Word(self.width, raw)
        raise ExecutionError(f"unknown expression node {expr!r}")

    def _apply_op(self, op: str, lhs: Word, rhs: Word) -> Word:
        return apply_op(op, lhs, rhs)

    # -- Statements -------------------------------------------------------------

    def exec_stmt(self, stmt: ast.Stmt, state: MachineState, fuel: int) -> int:
        """Execute ``stmt``; returns the remaining fuel."""
        if fuel <= 0:
            raise OutOfFuel("ran out of fuel (nonterminating loop?)")
        if isinstance(stmt, ast.SSkip):
            return fuel
        if isinstance(stmt, ast.SSet):
            value = self.eval_expr(stmt.rhs, state)
            state.locals[stmt.lhs] = value
            self.counts.assign += 1
            return fuel - 1
        if isinstance(stmt, ast.SUnset):
            state.locals.pop(stmt.name, None)
            return fuel - 1
        if isinstance(stmt, ast.SStore):
            addr = self.eval_expr(stmt.addr, state)
            value = self.eval_expr(stmt.value, state)
            self.counts.store += 1
            try:
                state.memory.store(addr.unsigned, stmt.size, value.unsigned)
            except MemoryError_ as exc:
                raise ExecutionError(str(exc)) from None
            return fuel - 1
        if isinstance(stmt, ast.SStackalloc):
            self.counts.stackalloc += 1
            base = state.memory.allocate_stack(stmt.nbytes)
            state.memory.store_bytes(base, self.stack_init(stmt.nbytes))
            state.locals[stmt.lhs] = Word(self.width, base)
            fuel = self.exec_stmt(stmt.body, state, fuel - 1)
            state.memory.free(base)
            return fuel
        if isinstance(stmt, ast.SCond):
            cond = self.eval_expr(stmt.cond, state)
            self.counts.branch += 1
            branch = stmt.then_ if cond.unsigned != 0 else stmt.else_
            return self.exec_stmt(branch, state, fuel - 1)
        if isinstance(stmt, ast.SSeq):
            fuel = self.exec_stmt(stmt.first, state, fuel)
            return self.exec_stmt(stmt.second, state, fuel)
        if isinstance(stmt, ast.SWhile):
            while True:
                if fuel <= 0:
                    raise OutOfFuel("ran out of fuel (nonterminating loop?)")
                cond = self.eval_expr(stmt.cond, state)
                self.counts.branch += 1
                fuel -= 1
                if cond.unsigned == 0:
                    return fuel
                fuel = self.exec_stmt(stmt.body, state, fuel)
        if isinstance(stmt, ast.SCall):
            self.counts.call += 1
            args = [self.eval_expr(arg, state) for arg in stmt.args]
            rets = self.call_function(stmt.func, args, state, fuel - 1)
            if len(rets) != len(stmt.lhss):
                raise ExecutionError(
                    f"{stmt.func} returned {len(rets)} values, expected {len(stmt.lhss)}"
                )
            for name, value in zip(stmt.lhss, rets):
                state.locals[name] = value
            return fuel - 1
        if isinstance(stmt, ast.SInteract):
            if self.external is None:
                raise ExecutionError(f"no external handler for action {stmt.action!r}")
            self.counts.interact += 1
            args = [self.eval_expr(arg, state) for arg in stmt.args]
            rets = list(self.external(stmt.action, args, state))
            state.trace.append(
                IOEvent(
                    stmt.action,
                    tuple(a.unsigned for a in args),
                    tuple(r.unsigned for r in rets),
                )
            )
            if len(rets) != len(stmt.lhss):
                raise ExecutionError(
                    f"action {stmt.action!r} returned {len(rets)} values, "
                    f"expected {len(stmt.lhss)}"
                )
            for name, value in zip(stmt.lhss, rets):
                state.locals[name] = value
            return fuel - 1
        raise ExecutionError(f"unknown statement node {stmt!r}")

    # -- Functions ------------------------------------------------------------

    def call_function(
        self,
        name: str,
        args: Sequence[Word],
        state: MachineState,
        fuel: int,
    ) -> List[Word]:
        """Call a Bedrock2 function with its own locals frame (memory is shared)."""
        fn = self.program.function(name)
        if len(args) != len(fn.args):
            raise ExecutionError(
                f"{name} takes {len(fn.args)} arguments, got {len(args)}"
            )
        frame = MachineState(
            memory=state.memory,
            locals=dict(zip(fn.args, args)),
            trace=state.trace,
        )
        self.exec_stmt(fn.body, frame, fuel)
        rets = []
        for ret in fn.rets:
            if ret not in frame.locals:
                raise ExecutionError(f"{name} did not set return variable {ret!r}")
            rets.append(frame.locals[ret])
        return rets

    def run(
        self,
        fn_name: str,
        args: Sequence[Word],
        memory: Optional[Memory] = None,
        fuel: int = DEFAULT_FUEL,
    ) -> Tuple[List[Word], MachineState]:
        """Convenience entry point: run one function on a fresh state."""
        state = MachineState(memory=memory if memory is not None else Memory(self.width))
        rets = self.call_function(fn_name, args, state, fuel)
        return rets, state
