"""``repro.obs`` -- the proof-search flight recorder.

Structured tracing (:mod:`repro.obs.trace`), metrics
(:mod:`repro.obs.metrics`), and profiling (:mod:`repro.obs.profile`)
for the compilation engine.  Tracing is default-off: the engine and the
other instrumented layers emit to :data:`repro.obs.trace.NULL` unless a
:class:`Tracer` is installed with :func:`use_tracer` (which is what
``python -m repro compile --trace out.jsonl`` and ``python -m repro
profile`` do).

See ``docs/observability.md`` for the trace schema and the span
taxonomy, and ``tests/obs`` for the golden-trace harness that pins the
schema down.
"""

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profile import ProfileReport, fold_trace, profile_program
from repro.obs.trace import (
    NULL,
    NullTracer,
    TraceError,
    Tracer,
    current_tracer,
    normalize_events,
    read_jsonl,
    use_tracer,
    validate_events,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "NullTracer",
    "ProfileReport",
    "TraceError",
    "fold_trace",
    "profile_program",
    "Tracer",
    "current_tracer",
    "normalize_events",
    "read_jsonl",
    "use_tracer",
    "validate_events",
]
