"""Counters and histograms for the compilation engine.

A :class:`MetricsRegistry` is the aggregate half of the flight recorder
(:mod:`repro.obs.trace` is the event half): named counters (lemma
attempts per family, solver-bank calls, resolve rewrites, stall/degrade
tallies, per-pass op deltas) and histograms over *deterministic* values
(lemma-scan lengths, certificate sizes).  Everything in a registry is a
pure function of the compiled input, never of the clock -- wall-clock
timings live out-of-band in ``Tracer.span_times`` -- so a registry's
JSON export is seed-reproducible and safe to commit in golden files.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class Histogram:
    """Summary statistics of a stream of (deterministic) observations."""

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


@dataclass
class MetricsRegistry:
    """Named counters and histograms, exported as JSON.

    Counter names are dotted paths (``lemma.hits.compile_arraymap``,
    ``solver.calls``); the export sorts keys so two runs over the same
    input serialize identically.
    """

    counters: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def inc(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def observe(self, name: str, value: float) -> None:
        self.histograms.setdefault(name, Histogram()).observe(value)

    def by_prefix(self, prefix: str) -> Dict[str, int]:
        """All counters under ``prefix.``, keyed by the remainder."""
        cut = len(prefix) + 1
        return {
            name[cut:]: value
            for name, value in sorted(self.counters.items())
            if name.startswith(prefix + ".")
        }

    def merge(self, other: "MetricsRegistry") -> None:
        for name, value in other.counters.items():
            self.inc(name, value)
        for name, hist in other.histograms.items():
            mine = self.histograms.setdefault(name, Histogram())
            mine.count += hist.count
            mine.total += hist.total
            for bound in ("min", "max"):
                theirs = getattr(hist, bound)
                ours = getattr(mine, bound)
                if theirs is not None:
                    pick = min if bound == "min" else max
                    setattr(mine, bound, theirs if ours is None else pick(ours, theirs))

    def to_dict(self) -> dict:
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
