"""Profiling on top of the flight recorder: where proof search spends time.

:func:`profile_program` compiles one registry program fresh under a
:class:`~repro.obs.trace.Tracer` and folds the recorded spans into a
per-phase / per-lemma breakdown:

- **phases** -- inclusive wall time per span kind (``compile_function``,
  ``compile_binding``, ``compile_expr``, ``lemma_apply``,
  ``side_condition``, ``opt_pass``, ...);
- **lemmas** -- inclusive time and application count per lemma, ranked,
  the "hottest lemmas" list ``python -m repro profile`` prints;
- **families** -- the same aggregated by lemma family (defining module),
  the grain the paper's hint databases are organized at;
- **counters** -- the deterministic metrics registry (hits, misses,
  scan lengths, solver calls, rewrites).

Times come from ``Tracer.span_times`` -- the out-of-band wall-clock
side table -- so profiling reuses exactly the trace the golden tests
pin down, plus timing.  All reported times are *inclusive* (a binding
span contains its expression subgoals).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.trace import Tracer, use_tracer


@dataclass
class PhaseStat:
    """Aggregate over all spans of one kind."""

    kind: str
    count: int = 0
    ms: float = 0.0


@dataclass
class LemmaStat:
    """Aggregate over all applications of one lemma (or family)."""

    name: str
    family: str = ""
    count: int = 0
    ms: float = 0.0


@dataclass
class ProfileReport:
    """The folded result of one profiled compilation."""

    program: str
    opt_level: int
    total_ms: float = 0.0
    phases: List[PhaseStat] = field(default_factory=list)
    lemmas: List[LemmaStat] = field(default_factory=list)
    families: List[LemmaStat] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    def solver_stats(self) -> List[dict]:
        """Per-solver call/win counts, ranked by wins then calls.

        Derived from the ``solver.calls.<name>`` / ``solver.hits.<name>``
        counters the engine emits per bank member; a solver's *wins* are
        the side conditions it discharged (the name recorded on each
        :class:`~repro.core.goals.SideCondition` in the certificate).
        """
        prefix = "solver.calls."
        rows = []
        for key, calls in self.counters.items():
            if not key.startswith(prefix):
                continue
            name = key[len(prefix):]
            rows.append(
                {
                    "solver": name,
                    "calls": calls,
                    "wins": self.counters.get(f"solver.hits.{name}", 0),
                }
            )
        rows.sort(key=lambda r: (-r["wins"], -r["calls"], r["solver"]))
        return rows

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "opt_level": self.opt_level,
            "total_ms": round(self.total_ms, 3),
            "solvers": self.solver_stats(),
            "phases": [
                {"kind": p.kind, "count": p.count, "ms": round(p.ms, 3)}
                for p in self.phases
            ],
            "lemmas": [
                {
                    "lemma": s.name,
                    "family": s.family,
                    "count": s.count,
                    "ms": round(s.ms, 3),
                }
                for s in self.lemmas
            ],
            "families": [
                {"family": s.name, "count": s.count, "ms": round(s.ms, 3)}
                for s in self.families
            ],
            "counters": dict(self.counters),
        }

    def render(self, top: int = 10) -> str:
        lines = [
            f"profile: {self.program} (-O{self.opt_level})  "
            f"total {self.total_ms:.2f} ms"
        ]
        lines.append("  phase breakdown (inclusive wall time):")
        for p in self.phases:
            lines.append(f"    {p.kind:<18} {p.count:>4} span(s) {p.ms:>9.3f} ms")
        if self.families:
            lines.append("  lemma families:")
            for s in self.families:
                lines.append(
                    f"    {s.name:<18} {s.count:>4} apply     {s.ms:>9.3f} ms"
                )
        if self.lemmas:
            lines.append(f"  hottest lemmas (top {min(top, len(self.lemmas))}):")
            for rank, s in enumerate(self.lemmas[:top], 1):
                lines.append(
                    f"    {rank:>2}. {s.name:<28} ({s.family})  "
                    f"x{s.count}  {s.ms:.3f} ms"
                )
        solvers = self.solver_stats()
        if solvers:
            lines.append("  solver bank (side conditions won per solver):")
            for row in solvers:
                lines.append(
                    f"    {row['solver']:<28} {row['calls']:>4} call(s) "
                    f"{row['wins']:>4} win(s)"
                )
        interesting = (
            "goals.binding",
            "goals.expr",
            "lemma.attempts",
            "lemma.hits",
            "lemma.misses",
            "solver.calls",
            "resolve.rewrites",
            "cert.nodes",
        )
        shown = [(k, self.counters[k]) for k in interesting if k in self.counters]
        if shown:
            lines.append(
                "  counters: " + " ".join(f"{k}={v}" for k, v in shown)
            )
        return "\n".join(lines)


def fold_trace(tracer: Tracer, program: str, opt_level: int = 0) -> ProfileReport:
    """Fold a recorded trace + its timing side table into a report."""
    report = ProfileReport(program=program, opt_level=opt_level)
    by_kind: Dict[str, PhaseStat] = {}
    by_lemma: Dict[str, LemmaStat] = {}
    by_family: Dict[str, LemmaStat] = {}
    for event in tracer.events:
        if event["ev"] != "span_open":
            continue
        duration_ms = tracer.span_times.get(event["span"], 0.0) * 1e3
        kind = event["kind"]
        stat = by_kind.setdefault(kind, PhaseStat(kind))
        stat.count += 1
        stat.ms += duration_ms
        if kind == "compile_function":
            report.total_ms += duration_ms
        if kind == "lemma_apply":
            name = event.get("name", "?")
            family = event.get("family", "")
            lemma = by_lemma.setdefault(name, LemmaStat(name, family))
            lemma.count += 1
            lemma.ms += duration_ms
            fam = by_family.setdefault(family, LemmaStat(family))
            fam.count += 1
            fam.ms += duration_ms
    report.phases = sorted(by_kind.values(), key=lambda p: -p.ms)
    report.lemmas = sorted(by_lemma.values(), key=lambda s: (-s.ms, s.name))
    report.families = sorted(by_family.values(), key=lambda s: (-s.ms, s.name))
    report.counters = {
        k: v for k, v in tracer.metrics.to_dict()["counters"].items()
    }
    return report


def profile_program(
    name: str,
    opt_level: int = 0,
    tracer: Optional[Tracer] = None,
) -> ProfileReport:
    """Compile one registry program fresh under a tracer and fold the trace."""
    from repro.programs.registry import get_program

    program = get_program(name)
    if tracer is None:
        # Debug detail: the hottest-lemmas table needs lemma_apply spans.
        tracer = Tracer(name=f"profile:{name}", detail="debug")
    with use_tracer(tracer):
        program.compile(fresh=True, opt_level=opt_level)
    return fold_trace(tracer, program=name, opt_level=opt_level)
