"""The proof-search flight recorder: hierarchical spans and typed events.

Rupicola's engineering claim (§3.1-§3.3) is that lemma-driven proof
search is *predictable*: deterministic, non-backtracking, linear in the
program.  This module makes that claim observable.  A :class:`Tracer`
records

- **spans** -- hierarchical, properly nested regions
  (``compile_function`` > ``compile_binding`` > ``lemma_apply`` >
  nested subgoals / ``opt_pass`` / ``fuzz_case``), opened and closed by
  ``span_open``/``span_close`` event pairs;
- **typed events** -- lemma hits and misses (with the goal's
  head-constructor shape), solver-bank calls, certificate-node
  emission, optimizer pass applications, validation verdicts.

Two design rules keep traces usable as a regression surface:

1. **Determinism.**  Event payloads are pure functions of the compiled
   input.  Wall-clock timings are carried *out-of-band* in
   ``Tracer.span_times`` (and serialized as a single trailing
   ``timings`` record that :func:`normalize_events` strips), so the
   normalized trace of a seeded run is byte-stable -- the golden-file
   property ``tests/obs`` locks down.
2. **Zero cost when off.**  The default tracer is the :data:`NULL`
   no-op singleton with ``enabled = False``; instrumented code guards
   every event payload construction behind ``tracer.enabled``, so
   ``-O0`` compile throughput is unchanged with tracing disabled.

The active tracer is module-global (installed with :func:`use_tracer`);
the engine re-reads it at every ``compile_function`` entry so CLI
commands can wrap cached program builders without re-plumbing.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry

SCHEMA_VERSION = 1

# The event taxonomy: event name -> required payload fields (beyond "i"
# and "ev").  Optional fields are listed separately so schema validation
# can reject typos without forbidding extensions.
EVENT_SCHEMA: Dict[str, Dict[str, tuple]] = {
    "meta": {"required": ("schema",), "optional": ("name", "seed")},
    "span_open": {
        "required": ("span", "kind", "parent"),
        "optional": ("name", "head", "family", "monadic", "program", "db"),
    },
    "span_close": {
        "required": ("span", "kind", "status"),
        "optional": ("reason", "error", "rewrites"),
    },
    "lemma_hit": {"required": ("db", "lemma", "head"), "optional": ("family", "scanned")},
    "lemma_miss": {"required": ("db", "lemma", "head"), "optional": ("family",)},
    "solver_call": {"required": ("solver", "solved"), "optional": ("goal",)},
    "cert_node": {"required": ("lemma", "kind"), "optional": ("conditions",)},
    "resolve_stats": {"required": ("rewrites",), "optional": ()},
    # Term-interning table stats at derivation end.  The intern table is
    # process-global (hits depend on what compiled earlier in the same
    # process), so this event is volatile: dumped, never golden-compared.
    "interning": {"required": ("size", "hits", "misses"), "optional": ()},
    "opt_pass": {
        "required": ("pass", "status"),
        "optional": ("before", "after", "detail"),
    },
    "verdict": {
        "required": ("check", "ok"),
        "optional": ("function", "trials", "failures", "detail"),
    },
    "fuzz_outcome": {"required": ("case", "outcome"), "optional": ("family", "stage")},
    "fault_outcome": {
        "required": ("point", "outcome"),
        "optional": ("target", "detail"),
    },
    # repro.serve: cache traffic and batch-compilation progress.
    "cache_lookup": {"required": ("key", "outcome"), "optional": ("program", "level")},
    "cache_store": {"required": ("key",), "optional": ("program", "level")},
    "batch_job": {
        "required": ("job", "outcome"),
        "optional": ("kind", "cache", "level", "detail"),
    },
    "serve_request": {"required": ("op", "ok"), "optional": ("program", "detail")},
    # repro.serve.supervisor: every failure path of the worker pool.
    "worker_restart": {
        "required": ("worker", "reason"),
        "optional": ("backoff_ms", "restarts"),
    },
    "serve_retry": {
        "required": ("op", "attempt"),
        "optional": ("program", "reason"),
    },
    "serve_degraded": {"required": ("program",), "optional": ("reason",)},
    "cache_quarantine": {"required": ("key", "reason"), "optional": ("program",)},
    # repro.query: one event per query-combinator lowering (the lemma
    # family's reduction of a query head to core loop lemmas).
    "query_lower": {"required": ("head", "via"), "optional": ("name",)},
    # repro.lift: one event per inverse-pattern application (the
    # backward analogue of lemma_hit) and one per lift outcome.
    "lift_step": {"required": ("head", "via"), "optional": ("name", "detail")},
    "lift_outcome": {
        "required": ("function", "outcome"),
        "optional": ("reason", "certificate", "detail"),
    },
    # repro.analysis: one event per lint/audit diagnostic.
    "lint_diag": {
        "required": ("code", "severity"),
        "optional": ("kind", "subject", "where", "message"),
    },
    "timings": {"required": ("spans",), "optional": ("total_ms",)},
}

# Span kinds the well-formedness property test recognizes.  Open by
# construction: unknown kinds are allowed (extensions register more),
# but these are the ones the core pipeline emits.
SPAN_KINDS = (
    "compile_function",
    "compile_binding",
    "compile_expr",
    "lemma_apply",
    "side_condition",
    "opt_pass",
    "validate",
    "fuzz_case",
    "fault_injection",
    "cache_load",
    "batch_job",
    "serve_request",
    "supervised_request",
    "lint",
    "lift_function",
)


class TraceError(Exception):
    """A trace violates the event schema or the span discipline."""


class _NullSpan:
    """The do-nothing span handle the :class:`NullTracer` hands out."""

    span_id = -1

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def note(self, **fields) -> None:
        return None


_NULL_SPAN = _NullSpan()

# Public handle for instrumented code that wants to skip even the kwargs
# construction of ``tracer.span(...)`` when tracing is disabled:
# ``span = tracer.span(...) if tracer.enabled else NULL_SPAN``.
NULL_SPAN = _NULL_SPAN


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented code holds a reference to this singleton on the hot
    path; the only cost of disabled tracing is an attribute check
    (``tracer.enabled``) or an empty method call.
    """

    enabled = False
    debug = False
    metrics: Optional[MetricsRegistry] = None

    def event(self, ev: str, **fields) -> None:
        return None

    def span(self, kind: str, **fields):
        return _NULL_SPAN

    def inc(self, name: str, n: int = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None


NULL = NullTracer()

_ACTIVE: object = NULL


def current_tracer():
    """The tracer instrumented code should emit to (default: :data:`NULL`)."""
    return _ACTIVE


@contextmanager
def use_tracer(tracer):
    """Install ``tracer`` as the process-wide active tracer for a block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


class _SpanHandle:
    """Context manager for one span; ``note()`` adds close-time fields."""

    __slots__ = ("_tracer", "span_id", "_kind", "_close_fields", "_start")

    def __init__(self, tracer: "Tracer", span_id: int, kind: str):
        self._tracer = tracer
        self.span_id = span_id
        self._kind = kind
        self._close_fields: Dict[str, object] = {}
        self._start = 0.0

    def note(self, **fields) -> None:
        self._close_fields.update(fields)

    def __enter__(self) -> "_SpanHandle":
        self._start = self._tracer._clock()
        self._tracer._stack.append(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        tracer.span_times[self.span_id] = tracer._clock() - self._start
        popped = tracer._stack.pop()
        if popped != self.span_id:  # pragma: no cover - internal invariant
            raise TraceError(
                f"span stack corrupted: closing {self.span_id}, top is {popped}"
            )
        status, extra = "ok", {}
        if exc is not None:
            status, extra = _classify_failure(exc)
        tracer.event(
            "span_close", span=self.span_id, kind=self._kind, status=status,
            **extra, **self._close_fields,
        )


def _classify_failure(exc: BaseException):
    """Map an exception escaping a span to a deterministic close status."""
    from repro.core.goals import CompileError

    if isinstance(exc, CompileError):
        return "stalled", {"reason": exc.report.reason}
    return "error", {"error": type(exc).__name__}


class Tracer:
    """An enabled flight recorder: events in memory, timings out-of-band.

    ``events`` is the deterministic record; ``span_times`` maps span ids
    to wall-clock durations in seconds and is *not* part of the
    normalized trace.  ``metrics`` is the attached
    :class:`~repro.obs.metrics.MetricsRegistry`.

    ``detail`` picks the recording tier:

    - ``"standard"`` (default) -- the ``lemma_hit`` sequence, verdicts,
      coarse spans (``compile_function``, opt passes, validation,
      campaign cases), and every counter/histogram.  Everything else is
      *derivable* from this tier: hint databases are ordered and each
      ``lemma_hit`` carries ``scanned``, so the missed lemmas are
      exactly the first ``scanned - 1`` entries of the database, and the
      certificate nodes mirror the hits one-to-one (a property test
      pins this).  Per-goal detail (which solver won each obligation,
      how long one binding took) lives in the counters, not in events.
    - ``"debug"`` -- additionally materializes one ``lemma_miss`` event
      per rejected candidate, one ``cert_node`` event per certificate
      node, one ``solver_call`` event (with the pretty-printed goal) per
      solver attempt, and per-goal ``compile_binding`` /
      ``compile_expr`` / ``lemma_apply`` / ``side_condition`` spans.
      This is what ``--trace`` on single-compile commands, ``profile``,
      and the golden-trace tests use; campaigns default to standard so
      tracing stays cheap at scale.
    """

    enabled = True

    def __init__(self, name: str = "", clock=time.perf_counter, detail: str = "standard"):
        if detail not in ("standard", "debug"):
            raise ValueError(f"unknown trace detail {detail!r}")
        self.detail = detail
        self.debug = detail == "debug"
        self.name = name
        self.events: List[dict] = []
        self.span_times: Dict[int, float] = {}
        self.metrics = MetricsRegistry()
        # Bound-method alias: `inc` runs several times per lemma attempt,
        # so skip the extra call frame on the traced hot path.
        self.inc = self.metrics.inc
        self._stack: List[int] = []
        self._next_span = 0
        self._clock = clock
        self.event("meta", schema=SCHEMA_VERSION, name=name)

    # -- Recording -------------------------------------------------------------

    def event(self, ev: str, **fields) -> None:
        # The kwargs dict itself becomes the record: this runs once per
        # lemma attempt on the traced hot path, so no second dict.
        fields["i"] = len(self.events)
        fields["ev"] = ev
        self.events.append(fields)

    def span(self, kind: str, **fields) -> _SpanHandle:
        span_id = self._next_span
        self._next_span += 1
        parent = self._stack[-1] if self._stack else None
        self.event("span_open", span=span_id, kind=kind, parent=parent, **fields)
        return _SpanHandle(self, span_id, kind)

    def inc(self, name: str, n: int = 1) -> None:
        # Shadowed per-instance by the bound ``metrics.inc`` in __init__;
        # kept for the class-level interface (and subclass overrides).
        self.metrics.inc(name, n)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    # -- Introspection ---------------------------------------------------------

    def open_spans(self) -> List[int]:
        return list(self._stack)

    def spans_by_kind(self, kind: str) -> List[dict]:
        return [
            e for e in self.events if e["ev"] == "span_open" and e["kind"] == kind
        ]

    def events_by_type(self, ev: str) -> List[dict]:
        return [e for e in self.events if e["ev"] == ev]

    # -- Serialization ---------------------------------------------------------

    def golden_lines(self) -> List[dict]:
        """The deterministic records: events plus the metrics snapshot."""
        return normalize_events(self.events) + [
            {"ev": "metrics", **self.metrics.to_dict()}
        ]

    def timings_record(self) -> dict:
        spans = {str(k): round(v * 1e3, 6) for k, v in sorted(self.span_times.items())}
        return {"ev": "timings", "spans": spans, "total_ms": round(sum(spans.values()), 6)}

    def write_jsonl(self, path: str, include_timings: bool = True) -> None:
        """Dump the trace as JSON Lines (one record per line).

        The deterministic records come first; the wall-clock ``timings``
        record rides at the end so :func:`normalize_events` (and any
        diffing tool) can drop it without reordering.
        """
        records = list(self.events) + [{"ev": "metrics", **self.metrics.to_dict()}]
        if include_timings:
            records.append(self.timings_record())
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")


# -- Normalization and schema validation -----------------------------------------

# Record types and fields that may legitimately differ between two runs
# of the same seed (wall-clock data); stripped before golden comparison.
VOLATILE_EVENTS = frozenset({"timings", "interning"})
VOLATILE_FIELDS = frozenset({"ms", "dur", "elapsed", "time"})


def normalize_events(events: Iterable[dict]) -> List[dict]:
    """Strip volatile records/fields; renumber so indices stay dense."""
    normalized: List[dict] = []
    for event in events:
        if event.get("ev") in VOLATILE_EVENTS:
            continue
        cleaned = {
            k: v for k, v in event.items() if k not in VOLATILE_FIELDS
        }
        cleaned["i"] = len(normalized)
        normalized.append(cleaned)
    return normalized


def read_jsonl(path: str) -> List[dict]:
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


def validate_events(events: Iterable[dict]) -> None:
    """Check schema conformance and the span discipline; raise on problems.

    Enforced properties:

    - every event names a known type and carries its required fields;
    - spans open before they close, close exactly once, and closes are
      properly nested (LIFO) with correct parent links;
    - at end of trace every opened span has been closed.
    """
    stack: List[int] = []
    opened: Dict[int, dict] = {}
    closed: set = set()
    for index, event in enumerate(events):
        ev = event.get("ev")
        if ev == "metrics":  # trailing registry snapshot, schema-free
            continue
        if ev not in EVENT_SCHEMA:
            raise TraceError(f"event {index} has unknown type {ev!r}: {event}")
        spec = EVENT_SCHEMA[ev]
        for fld in spec["required"]:
            if fld not in event:
                raise TraceError(f"event {index} ({ev}) missing field {fld!r}: {event}")
        allowed = set(spec["required"]) | set(spec["optional"]) | {"i", "ev"}
        unknown = set(event) - allowed
        if unknown:
            raise TraceError(
                f"event {index} ({ev}) has unknown fields {sorted(unknown)}: {event}"
            )
        if ev == "span_open":
            span = event["span"]
            if span in opened:
                raise TraceError(f"span {span} opened twice (event {index})")
            expect_parent = stack[-1] if stack else None
            if event["parent"] != expect_parent:
                raise TraceError(
                    f"span {span} records parent {event['parent']!r}, "
                    f"but the enclosing open span is {expect_parent!r}"
                )
            opened[span] = event
            stack.append(span)
        elif ev == "span_close":
            span = event["span"]
            if span not in opened:
                raise TraceError(f"span {span} closed but never opened (event {index})")
            if span in closed:
                raise TraceError(f"span {span} closed twice (event {index})")
            if not stack or stack[-1] != span:
                raise TraceError(
                    f"span {span} closed out of order; open stack is {stack}"
                )
            if event["kind"] != opened[span]["kind"]:
                raise TraceError(
                    f"span {span} closed as kind {event['kind']!r} but opened "
                    f"as {opened[span]['kind']!r}"
                )
            stack.pop()
            closed.add(span)
    if stack:
        raise TraceError(f"trace ended with unclosed spans: {stack}")
