"""Rupicola's standard library of compilation lemmas.

The core engine knows nothing about any particular source construct; all
translation knowledge lives here, as pluggable lemmas grouped by domain
exactly the way the paper's evaluation slices them (Table 1, §4.1.2):

- :mod:`repro.stdlib.exprs` -- the relational expression compiler
  (arithmetic over words/bytes/nats/bools, casts, locals lookup);
- :mod:`repro.stdlib.bindings` -- plain scalar ``let/n`` bindings;
- :mod:`repro.stdlib.mutation` -- in-place array/cell mutation
  (intensional state, §3.4.1);
- :mod:`repro.stdlib.control` -- conditionals with predicate inference;
- :mod:`repro.stdlib.loops` -- map/fold/iter/ranged-for loop lemmas with
  automatic invariant inference (§3.4.2);
- :mod:`repro.stdlib.queries` -- the relational-algebra combinators of
  :mod:`repro.query`, mostly by reduction to the loop lemmas (the
  Table 1 extension story exercised on a whole new domain);
- :mod:`repro.stdlib.inline_tables` -- Bedrock2 inline tables (§4.1.2);
- :mod:`repro.stdlib.stack_alloc` -- stack allocation (§4.1.2);
- :mod:`repro.stdlib.monads` -- extensional effects: I/O, writer,
  nondeterminism, state (§3.4.1);
- :mod:`repro.stdlib.intrinsics` -- peephole-style program-specific
  lemmas (Table 1's ``iadd``);
- :mod:`repro.stdlib.calls` -- external function calls;
- :mod:`repro.stdlib.expr_reflective` -- the §4.1.3 ablation: the
  original monolithic (non-relational) expression compiler.

:func:`default_databases` assembles the standard hint databases;
:func:`default_engine` wires them into an engine.  Users extend a
compiler by registering more lemmas -- see ``examples/extending.py``.
"""

from repro.core.engine import Engine
from repro.core.lemma import HintDb
from repro.core.solver import SolverBank


def load_extensions():
    """Import every stdlib lemma module for its registration side effects.

    Lemma classes live in the submodules; the ``repro.lift`` inverse
    patterns are registered at submodule import time, next to the forward
    lemma each one inverts.  Anything that consults the inverse roster
    without first building an engine (``lift_function`` on a legacy
    bundle, the auditor's liftability column, ``lift_key``) must call
    this rather than a bare ``import repro.stdlib``, which loads none of
    the submodules.
    """
    from repro.stdlib import (  # noqa: F401
        bindings,
        calls,
        control,
        copying,
        errors,
        exprs,
        inline_tables,
        intrinsics,
        loops,
        monads,
        mutation,
        queries,
        stack_alloc,
    )


def default_databases():
    """The standard binding/expression hint databases (all extensions loaded)."""
    from repro.stdlib import (
        bindings,
        calls,
        control,
        copying,
        errors,
        exprs,
        inline_tables,
        intrinsics,
        loops,
        monads,
        mutation,
        queries,
        stack_alloc,
    )

    binding_db = HintDb("bindings")
    expr_db = HintDb("exprs")
    exprs.register(expr_db)
    inline_tables.register(expr_db)
    intrinsics.register_exprs(expr_db)
    # Binding lemmas: order matters only within equal priorities; more
    # specific shapes are registered at lower (= earlier) priorities.
    intrinsics.register(binding_db)
    mutation.register(binding_db)
    copying.register(binding_db)
    control.register(binding_db)
    loops.register(binding_db)
    queries.register(binding_db)
    stack_alloc.register(binding_db)
    monads.register(binding_db)
    errors.register(binding_db)
    calls.register(binding_db)
    bindings.register(binding_db)  # the generic scalar-set lemma goes last
    return binding_db, expr_db


def default_engine(width: int = 64, solvers: SolverBank = None) -> Engine:
    """An engine with the full standard library loaded."""
    binding_db, expr_db = default_databases()
    return Engine(binding_db, expr_db, solvers=solvers or SolverBank(), width=width)
