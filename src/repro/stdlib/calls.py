"""External function calls.

Rupicola supports "external functional calls" (§3): a model may invoke a
separately compiled (or handwritten, even in machine code) Bedrock2
function.  The call's functional meaning stays opaque -- a ``Call`` term
over the resolved arguments -- and the validator resolves it against a
user-supplied model-function table.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.engine import resolve
from repro.core.goals import BindingGoal, CompilationStalled, StallReport
from repro.core.lemma import BindingLemma, HintDb
from repro.core.typecheck import infer_type
from repro.source import terms as t
from repro.source.types import WORD


class CompileCall(BindingLemma):
    """``let/n x := f(args) in k`` ~ ``SCall x = f(ARGS)`` (scalar args/result)."""

    name = "compile_call"
    shapes = ("Call",)
    index_heads = shapes

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.Call) and not goal.value.func.startswith(
            "free."
        )

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.Call)
        state = goal.state
        nodes: List[CertNode] = []
        arg_exprs = []
        resolved_args = []
        for arg in value.args:
            resolved = resolve(state, arg)
            resolved_args.append(resolved)
            ty = infer_type(state, resolved)
            if not ty.is_scalar:
                # Passing a buffer to an opaque callee would let it mutate
                # memory behind the symbolic state's back; supporting that
                # soundly needs a callee contract (a per-function spec), so
                # it is a user extension, not a default.
                raise CompilationStalled(
                    goal.describe(),
                    advice=(
                        "external calls take scalar arguments only; to pass "
                        "a buffer, register a call lemma carrying the "
                        "callee's footprint contract"
                    ),
                    reason=StallReport.UNSUPPORTED_SHAPE,
                    family="calls",
                )
            expr, node = engine.compile_expr_term(state, resolved, ty)
            arg_exprs.append(expr)
            if node is not None:
                nodes.append(node)
        new_state = state.copy()
        new_state.bind_scalar(
            goal.name, t.Call(value.func, tuple(resolved_args)), WORD
        )
        return (
            ast.SCall((goal.name,), value.func, tuple(arg_exprs)),
            new_state,
            nodes,
        )


def register(db: HintDb) -> HintDb:
    db.register(CompileCall(), priority=40)
    return db
