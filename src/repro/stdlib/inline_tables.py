"""Inline tables (§4.1.2's second case study).

``InlineTable.get`` is functionally just ``nth``; the lemma here realizes
it as Bedrock2's ``inlinetable`` expression -- a function-local constant
array.  Multi-byte entries are packed little-endian and the index is
scaled by the entry size, matching the paper's note that supporting
"full 32-bit words from tables, as opposed to ... bytes" was the bulk of
the extension work.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.goals import ExprGoal
from repro.core.lemma import ExprLemma, HintDb
from repro.source import terms as t
from repro.source.types import NAT
from repro.stdlib.exprs import scaled_index


def pack_table(data, elem_size: int) -> bytes:
    """Pack table entries into little-endian bytes at the element width."""
    out = bytearray()
    for value in data:
        out.extend(int(value).to_bytes(elem_size, "little"))
    return bytes(out)


class ExprTableGet(ExprLemma):
    """``InlineTable.get table i`` ~ ``inlinetable`` access, bounds-checked."""

    name = "expr_inline_table_get"
    shapes = ("TableGet",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: ExprGoal) -> bool:
        return isinstance(goal.term, t.TableGet)

    def apply(self, goal: ExprGoal, engine) -> Tuple[ast.Expr, List[CertNode]]:
        term = goal.term
        assert isinstance(term, t.TableGet)
        engine.discharge(
            t.Prim("nat.ltb", (term.index, t.Lit(len(term.data), NAT))),
            goal.state,
            "table index in bounds",
        )
        index_expr, index_node = engine.compile_expr_term(
            goal.state, t.Prim("cast.of_nat", (term.index,)), None
        )
        size = engine.scalar_byte_size(term.elem_ty)
        packed = pack_table(term.data, size)
        return (
            ast.EInlineTable(size, packed, scaled_index(engine, index_expr, size)),
            [index_node],
        )


def register(db: HintDb) -> HintDb:
    db.register(ExprTableGet(), priority=13)
    return db


# -- Inverse patterns (repro.lift) -------------------------------------------

from repro.lift.patterns import InversePattern, register_inverse  # noqa: E402

register_inverse(
    InversePattern(
        name="lift_table_get",
        lemma="expr_inline_table_get",
        family="inline_tables",
        heads=("EInlineTable",),
        source_head="TableGet",
        priority=13,
        description="an inlinetable read unpacks little-endian into TableGet",
    )
)
