"""Loop lemmas: map, fold, ranged for, and ``Nat.iter`` (§3.4.2).

Each lemma connects a structured iteration pattern to a Bedrock2
``while`` loop and *infers its invariant automatically*: because the
source is a pure functional program, the state of every loop target at
iteration ``i`` has a closed form -- ``map f (firstn i l) ++ skipn i l``
for maps, ``fold_left f (firstn i l) init`` for folds, partial
``Nat.iter``/ranged-``for`` executions otherwise.  The loop body is then
compiled against a symbolic state instantiated at a ghost iteration
counter, "like a classic Hoare-logic proof, where we know the invariant
holds for iteration i and must prove it for iteration i+1".

Generated code is the idiomatic C shape (the paper's Box 1):

    i = 0
    while (i < len) { ...body...; i = i + 1 }

Bodies that are pure expressions are inlined into the store/assignment
(loads included, so ``s[i]`` appears directly, as a human would write);
bodies with conditionals or nested lets are routed through the statement
compiler with a temporary.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.engine import resolve
from repro.core.goals import BindingGoal, CompilationStalled, StallReport
from repro.core.lemma import BindingLemma, HintDb
from repro.core.sepstate import PointerBinding, SymState
from repro.core.typecheck import infer_type
from repro.source import terms as t
from repro.source.types import NAT, SourceType


def _binder_names(term: t.Term) -> set:
    names = set(term.binders())
    for child in term.children():
        names |= _binder_names(child)
    return names


def _has_statement_shape(term: t.Term) -> bool:
    """Does this term need statement-level compilation (vs one expression)?"""
    if isinstance(term, (t.If, t.Let, t.MBind, t.ArrayPut, t.CellPut)):
        return True
    # Loops can only ever compile as statements; a loop body that is
    # itself a nested loop must be routed through binding compilation.
    if isinstance(
        term, (t.RangedFor, t.NatIter, t.ArrayFold, t.ArrayFoldBreak, t.ArrayMap)
    ):
        return True
    # External Term subclasses (repro.query combinators) declare
    # statement-ness via a ``statement_shape`` class attribute.
    if getattr(term, "statement_shape", False):
        return True
    return any(_has_statement_shape(child) for child in term.children())


def _ensure_simple(engine, state: SymState, expr: ast.Expr, prefix: str, value: t.Term):
    """Hoist a non-trivial expression into a fresh local (for loop guards)."""
    if isinstance(expr, (ast.EVar, ast.ELit)):
        return expr, None
    local = state.fresh_local(prefix)
    state.bind_scalar(local, value, NAT if _is_nat_term(value) else _guess_ty(state, value))
    return ast.EVar(local), ast.SSet(local, expr)


def _is_nat_term(value: t.Term) -> bool:
    return isinstance(value, (t.ArrayLen,)) or (
        isinstance(value, t.Prim) and value.op.startswith("nat.")
    )


def _guess_ty(state: SymState, value: t.Term) -> SourceType:
    from repro.source.types import WORD

    try:
        return infer_type(state, value)
    except Exception:
        return WORD


class _LoopLemma(BindingLemma):
    """Shared machinery for the counter/guard/increment skeleton."""

    def _counter_setup(
        self,
        engine,
        state: SymState,
        lo_term: t.Term,
        hi_term: t.Term,
    ):
        """Emit ``i = lo`` and prepare the ``i < hi`` guard.

        Returns (idx_local, ghost, prologue_stmts, guard_expr, nodes,
        work_state); ``work_state`` carries any hoisted bound locals.
        """
        work = state.copy()
        nodes: List[CertNode] = []
        prologue: List[ast.Stmt] = []

        hi_expr, hi_node = engine.compile_expr_term(
            work, t.Prim("cast.of_nat", (hi_term,)), None
        )
        nodes.append(hi_node)
        hi_expr, hoist = _ensure_simple(engine, work, hi_expr, "_len", hi_term)
        if hoist is not None:
            prologue.append(hoist)

        lo_expr, lo_node = engine.compile_expr_term(
            work, t.Prim("cast.of_nat", (lo_term,)), None
        )
        nodes.append(lo_node)

        idx_local = work.fresh_local("i")
        ghost = SymState.fresh_ghost("i")
        prologue.append(ast.SSet(idx_local, lo_expr))
        guard = ast.EOp("ltu", ast.EVar(idx_local), hi_expr)
        return idx_local, ghost, prologue, guard, nodes, work

    def _loop_body_state(
        self,
        work: SymState,
        idx_local: str,
        ghost: str,
        lo_term: t.Term,
        hi_term: t.Term,
    ) -> SymState:
        loop_state = work.copy()
        loop_state.set_ghost_type(ghost, NAT)
        loop_state.bind_scalar(idx_local, t.Var(ghost), NAT)
        loop_state.add_fact(t.Prim("nat.leb", (lo_term, t.Var(ghost))))
        loop_state.add_fact(t.Prim("nat.ltb", (t.Var(ghost), hi_term)))
        return loop_state

    def _increment(self, idx_local: str) -> ast.Stmt:
        return ast.SSet(idx_local, ast.EOp("add", ast.EVar(idx_local), ast.ELit(1)))

    def _compile_acc_step(
        self,
        engine,
        loop_state: SymState,
        target: str,
        body: t.Term,
        ty: SourceType,
        spec,
    ):
        """Compile one accumulator update ``target = body`` inside the loop."""
        if _has_statement_shape(body):
            stmt, after, nodes = engine.compile_value_into(loop_state, target, body, spec)
            return stmt, nodes
        resolved = resolve(loop_state, body)
        resolved_expr = t.Prim("cast.of_nat", (resolved,)) if ty is NAT else resolved
        expr, node = engine.compile_expr_term(loop_state, resolved_expr, ty)
        return ast.SSet(target, expr), [node]

    def _cleanup(self, state: SymState, names: List[str]) -> None:
        for name in names:
            state.locals.pop(name, None)

    def _drop_body_binders(self, state: SymState, body: t.Term) -> None:
        """Loop-body ``let`` binders clobber same-named Bedrock2 locals at
        runtime, so their pre-loop symbolic bindings must not survive."""
        for name in _binder_names(body):
            state.locals.pop(name, None)


class CompileArrayMapInPlace(_LoopLemma):
    """``let/n a := ListArray.map f a in k`` ~ an in-place for loop.

    This single lemma performs transformations 2 and 3 of the paper's
    upstr walkthrough: higher-order iteration becomes a loop, and the
    rebinding of ``a``'s own name licenses mutation.  The inferred
    invariant gives the array's contents at iteration ``i`` as
    ``map f (firstn i l) ++ skipn i l``.
    """

    name = "compile_arraymap_inplace"
    shapes = ("ArrayMap",)
    index_heads = shapes

    def matches(self, goal: BindingGoal) -> bool:
        value = goal.value
        return (
            isinstance(value, t.ArrayMap)
            and isinstance(value.arr, t.Var)
            and isinstance(goal.state.binding(value.arr.name), PointerBinding)
        )

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.ArrayMap) and isinstance(value.arr, t.Var)
        arr_name = value.arr.name
        if goal.name != arr_name:
            raise CompilationStalled(
                goal.describe(),
                advice=(
                    "in-place map requires rebinding the array's own name; "
                    "use copy(...) for an out-of-place map"
                ),
                reason=StallReport.UNSUPPORTED_SHAPE,
                family="loops",
            )
        state = goal.state
        binding = state.binding(arr_name)
        assert isinstance(binding, PointerBinding)
        clause = state.heap.get(binding.ptr)
        if clause is None:
            raise CompilationStalled(
                goal.describe(),
                advice=f"no clause owns {binding.ptr!r}",
                reason=StallReport.MISSING_CLAUSE,
                family="loops",
            )
        arr0 = clause.value
        resolved_map = resolve(state, value)
        assert isinstance(resolved_map, t.ArrayMap)
        body_res = resolved_map.body
        elem_ty = clause.ty.elem
        assert elem_ty is not None
        esz = engine.elem_byte_size(clause.ty)

        lo_term = t.Lit(0, NAT)
        hi_term = t.ArrayLen(arr0)
        idx_local, ghost, prologue, guard, nodes, work = self._counter_setup(
            engine, state, lo_term, hi_term
        )

        loop_state = self._loop_body_state(work, idx_local, ghost, lo_term, hi_term)
        # The §3.4.2 invariant: processed prefix ++ untouched suffix.
        invariant_value = t.Append(
            t.ArrayMap(value.elem_name, body_res, t.FirstN(t.Var(ghost), arr0)),
            t.SkipN(t.Var(ghost), arr0),
        )
        loop_state.set_heap_value(binding.ptr, invariant_value)

        # The element binder denotes a[i]; inline it so loads appear in
        # the compiled expressions exactly where a human would write s[i].
        elem_term = t.ArrayGet(arr0, t.Var(ghost))
        body_inlined = t.subst(body_res, value.elem_name, elem_term)

        addr_index_expr, idx_node = engine.compile_expr_term(
            loop_state, t.Prim("cast.of_nat", (t.Var(ghost),)), None
        )
        nodes.append(idx_node)
        from repro.stdlib.exprs import scaled_index

        addr = ast.EOp(
            "add", ast.EVar(arr_name), scaled_index(engine, addr_index_expr, esz)
        )

        if _has_statement_shape(body_inlined):
            tmp = loop_state.fresh_local("_v")
            body_stmt, _after, body_nodes = engine.compile_value_into(
                loop_state, tmp, body_inlined, goal.spec
            )
            store = ast.SStore(esz, addr, ast.EVar(tmp))
            body_code = ast.seq_of(body_stmt, store)
        else:
            body_resolved = resolve(loop_state, body_inlined)
            expr, body_node = engine.compile_expr_term(loop_state, body_resolved, elem_ty)
            body_nodes = [body_node]
            body_code = ast.SStore(esz, addr, expr)
        nodes.extend(body_nodes)

        loop = ast.SWhile(guard, ast.seq_of(body_code, self._increment(idx_local)))
        stmt = ast.seq_of(*prologue, loop)

        post = work.copy()
        post.set_heap_value(binding.ptr, resolved_map)
        self._cleanup(post, [idx_local])
        self._drop_body_binders(post, body_res)
        return stmt, post, nodes


class CompileArrayFold(_LoopLemma):
    """``let/n x := fold_left f a init in k`` ~ accumulate in a local.

    Invariant: at iteration ``i`` the accumulator local holds
    ``fold_left f (firstn i a) init``.
    """

    name = "compile_arrayfold"
    shapes = ("ArrayFold",)
    index_heads = shapes

    def matches(self, goal: BindingGoal) -> bool:
        value = goal.value
        return (
            isinstance(value, t.ArrayFold)
            and isinstance(value.arr, t.Var)
            and isinstance(goal.state.binding(value.arr.name), PointerBinding)
        )

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.ArrayFold) and isinstance(value.arr, t.Var)
        state = goal.state
        arr_name = value.arr.name
        binding = state.binding(arr_name)
        assert isinstance(binding, PointerBinding)
        clause = state.heap.get(binding.ptr)
        if clause is None:
            raise CompilationStalled(
                goal.describe(),
                advice=f"no clause owns {binding.ptr!r}",
                reason=StallReport.MISSING_CLAUSE,
                family="loops",
            )
        arr0 = clause.value
        resolved_fold = resolve(state, value)
        assert isinstance(resolved_fold, t.ArrayFold)
        body_res, init_res = resolved_fold.body, resolved_fold.init
        acc_ty = infer_type(state, init_res)
        elem_ty = clause.ty.elem
        assert elem_ty is not None

        target = goal.name
        init_stmt, state_after_init, init_nodes = engine.compile_value_into(
            state, target, value.init, goal.spec
        )

        lo_term = t.Lit(0, NAT)
        hi_term = t.ArrayLen(arr0)
        idx_local, ghost, prologue, guard, nodes, work = self._counter_setup(
            engine, state_after_init, lo_term, hi_term
        )
        nodes = init_nodes + nodes

        loop_state = self._loop_body_state(work, idx_local, ghost, lo_term, hi_term)
        acc_prefix = t.ArrayFold(
            value.acc_name,
            value.elem_name,
            body_res,
            init_res,
            t.FirstN(t.Var(ghost), arr0),
        )
        loop_state.bind_scalar(target, acc_prefix, acc_ty)

        elem_term = t.ArrayGet(arr0, t.Var(ghost))
        body_inlined = t.subst(
            t.subst(body_res, value.elem_name, elem_term),
            value.acc_name,
            t.Var(target),
        )
        step_stmt, step_nodes = self._compile_acc_step(
            engine, loop_state, target, body_inlined, acc_ty, goal.spec
        )
        nodes.extend(step_nodes)

        loop = ast.SWhile(guard, ast.seq_of(step_stmt, self._increment(idx_local)))
        stmt = ast.seq_of(init_stmt, *prologue, loop)

        post = work.copy()
        self._cleanup(post, [idx_local])
        self._drop_body_binders(post, body_res)
        post.bind_scalar(target, resolved_fold, acc_ty)
        return stmt, post, nodes


class CompileArrayFoldBreak(_LoopLemma):
    """``fold_left`` with an early exit ~ ``while (i < len && !pred(acc))``.

    The invariant is unchanged from the plain fold: *reaching* the loop
    head with counter ``i`` means no earlier iteration broke, and on that
    path ``fold_break (firstn i a)`` coincides with the plain prefix
    fold.  The exit condition covers both ``i = len`` and ``pred acc``,
    and in either case the prefix value equals the full fold-with-break.
    """

    name = "compile_arrayfold_break"
    shapes = ("ArrayFoldBreak",)
    index_heads = shapes

    def matches(self, goal: BindingGoal) -> bool:
        value = goal.value
        return (
            isinstance(value, t.ArrayFoldBreak)
            and isinstance(value.arr, t.Var)
            and isinstance(goal.state.binding(value.arr.name), PointerBinding)
        )

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.ArrayFoldBreak) and isinstance(value.arr, t.Var)
        state = goal.state
        arr_name = value.arr.name
        binding = state.binding(arr_name)
        assert isinstance(binding, PointerBinding)
        clause = state.heap.get(binding.ptr)
        if clause is None:
            raise CompilationStalled(
                goal.describe(),
                advice=f"no clause owns {binding.ptr!r}",
                reason=StallReport.MISSING_CLAUSE,
                family="loops",
            )
        arr0 = clause.value
        resolved = resolve(state, value)
        assert isinstance(resolved, t.ArrayFoldBreak)
        body_res, init_res, pred_res = resolved.body, resolved.init, resolved.break_pred
        acc_ty = infer_type(state, init_res)

        target = goal.name
        init_stmt, state_after_init, init_nodes = engine.compile_value_into(
            state, target, value.init, goal.spec
        )

        lo_term = t.Lit(0, NAT)
        hi_term = t.ArrayLen(arr0)
        idx_local, ghost, prologue, guard, nodes, work = self._counter_setup(
            engine, state_after_init, lo_term, hi_term
        )
        nodes = init_nodes + nodes

        loop_state = self._loop_body_state(work, idx_local, ghost, lo_term, hi_term)
        acc_prefix = t.ArrayFoldBreak(
            value.acc_name,
            value.elem_name,
            body_res,
            init_res,
            t.FirstN(t.Var(ghost), arr0),
            pred_res,
        )
        loop_state.bind_scalar(target, acc_prefix, acc_ty)

        # The break predicate, read off the accumulator local.
        pred_inlined = t.subst(pred_res, value.acc_name, t.Var(target))
        pred_expr, pred_node = engine.compile_expr_term(
            loop_state, resolve(loop_state, pred_inlined), None
        )
        nodes.append(pred_node)
        guard = ast.EOp("and", guard, ast.EOp("eq", pred_expr, ast.ELit(0)))

        elem_term = t.ArrayGet(arr0, t.Var(ghost))
        body_inlined = t.subst(
            t.subst(body_res, value.elem_name, elem_term),
            value.acc_name,
            t.Var(target),
        )
        step_stmt, step_nodes = self._compile_acc_step(
            engine, loop_state, target, body_inlined, acc_ty, goal.spec
        )
        nodes.extend(step_nodes)

        loop = ast.SWhile(guard, ast.seq_of(step_stmt, self._increment(idx_local)))
        stmt = ast.seq_of(init_stmt, *prologue, loop)

        post = work.copy()
        self._cleanup(post, [idx_local])
        self._drop_body_binders(post, body_res)
        post.bind_scalar(target, resolved, acc_ty)
        return stmt, post, nodes


class CompileRangedFor(_LoopLemma):
    """``let/n x := for i in [lo, hi) acc := init { body } in k``.

    Invariant: at counter value ``i`` the accumulator holds the partial
    execution ``for [lo, i)``.  The body may read arrays, mutate the
    accumulator object, etc.; the index binder is a ghost nat.
    """

    name = "compile_rangedfor"
    shapes = ("RangedFor",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.RangedFor)

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.RangedFor)
        state = goal.state
        resolved = resolve(state, value)
        assert isinstance(resolved, t.RangedFor)
        lo_res, hi_res = resolved.lo, resolved.hi
        body_res, init_res = resolved.body, resolved.init
        acc_ty = infer_type(state, init_res)

        target = goal.name
        init_stmt, state_after_init, init_nodes = engine.compile_value_into(
            state, target, value.init, goal.spec
        )

        idx_local, ghost, prologue, guard, nodes, work = self._counter_setup(
            engine, state_after_init, lo_res, hi_res
        )
        nodes = init_nodes + nodes

        loop_state = self._loop_body_state(work, idx_local, ghost, lo_res, hi_res)
        acc_partial = t.RangedFor(
            lo_res, t.Var(ghost), value.idx_name, value.acc_name, body_res, init_res
        )
        loop_state.bind_scalar(target, acc_partial, acc_ty)

        body_inlined = t.subst(
            t.subst(body_res, value.idx_name, t.Var(ghost)),
            value.acc_name,
            t.Var(target),
        )
        step_stmt, step_nodes = self._compile_acc_step(
            engine, loop_state, target, body_inlined, acc_ty, goal.spec
        )
        nodes.extend(step_nodes)

        loop = ast.SWhile(guard, ast.seq_of(step_stmt, self._increment(idx_local)))
        stmt = ast.seq_of(init_stmt, *prologue, loop)

        post = work.copy()
        self._cleanup(post, [idx_local])
        self._drop_body_binders(post, body_res)
        post.bind_scalar(target, resolved, acc_ty)
        return stmt, post, nodes


class CompileNatIter(_LoopLemma):
    """``let/n x := Nat.iter n f init in k`` -- §3.4.2's cell example."""

    name = "compile_natiter"
    shapes = ("NatIter",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.NatIter)

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.NatIter)
        state = goal.state
        resolved = resolve(state, value)
        assert isinstance(resolved, t.NatIter)
        count_res, body_res, init_res = resolved.count, resolved.body, resolved.init
        acc_ty = infer_type(state, init_res)

        target = goal.name
        init_stmt, state_after_init, init_nodes = engine.compile_value_into(
            state, target, value.init, goal.spec
        )

        lo_term = t.Lit(0, NAT)
        idx_local, ghost, prologue, guard, nodes, work = self._counter_setup(
            engine, state_after_init, lo_term, count_res
        )
        nodes = init_nodes + nodes

        loop_state = self._loop_body_state(work, idx_local, ghost, lo_term, count_res)
        acc_partial = t.NatIter(t.Var(ghost), value.acc_name, body_res, init_res)
        loop_state.bind_scalar(target, acc_partial, acc_ty)

        body_inlined = t.subst(body_res, value.acc_name, t.Var(target))
        step_stmt, step_nodes = self._compile_acc_step(
            engine, loop_state, target, body_inlined, acc_ty, goal.spec
        )
        nodes.extend(step_nodes)

        loop = ast.SWhile(guard, ast.seq_of(step_stmt, self._increment(idx_local)))
        stmt = ast.seq_of(init_stmt, *prologue, loop)

        post = work.copy()
        self._cleanup(post, [idx_local])
        self._drop_body_binders(post, body_res)
        post.bind_scalar(target, resolved, acc_ty)
        return stmt, post, nodes


def register(db: HintDb) -> HintDb:
    db.register(CompileArrayMapInPlace(), priority=25)
    db.register(CompileArrayFold(), priority=25)
    db.register(CompileArrayFoldBreak(), priority=24)
    db.register(CompileRangedFor(), priority=25)
    db.register(CompileNatIter(), priority=25)
    return db


# -- Inverse patterns (repro.lift) -------------------------------------------
#
# All five loop lemmas share the counted SWhile skeleton, so the lifter
# recognizes the skeleton once and specializes: map-in-place and
# fold-break when their stricter shapes hold, RangedFor otherwise
# (ArrayFold and NatIter emissions are RangedFor-shaped, so their code
# round-trips through the RangedFor inverse).

from repro.lift.patterns import InversePattern, register_inverse  # noqa: E402

register_inverse(
    InversePattern(
        name="lift_map_inplace",
        lemma="compile_arraymap_inplace",
        family="loops",
        heads=("SWhile",),
        source_head="ArrayMap",
        priority=25,
        description="a full-array store-back loop inverts to ArrayMap",
    )
)
register_inverse(
    InversePattern(
        name="lift_array_fold",
        lemma="compile_arrayfold",
        family="loops",
        heads=("SWhile",),
        source_head="ArrayFold",
        priority=25,
        description="a fold emission is RangedFor-shaped; lifted via RangedFor",
    )
)
register_inverse(
    InversePattern(
        name="lift_fold_break",
        lemma="compile_arrayfold_break",
        family="loops",
        heads=("SWhile",),
        source_head="ArrayFoldBreak",
        priority=24,
        description="an and(ltu, eq(p,0)) guard inverts to ArrayFoldBreak",
    )
)
register_inverse(
    InversePattern(
        name="lift_ranged_for",
        lemma="compile_rangedfor",
        family="loops",
        heads=("SWhile",),
        source_head="RangedFor",
        priority=25,
        description="a counted single-accumulator loop inverts to RangedFor",
    )
)
register_inverse(
    InversePattern(
        name="lift_nat_iter",
        lemma="compile_natiter",
        family="loops",
        heads=("SWhile",),
        source_head="NatIter",
        priority=25,
        description="a NatIter emission is RangedFor-shaped; lifted via RangedFor",
    )
)
