"""Compilation lemmas for the relational-algebra query combinators.

The paper's Table 1 argues extensibility: a new source domain is
supported by *registering lemmas*, not by touching the engine.  This
module is that claim exercised end-to-end for ``repro.query``: three
lemmas, two of which are pure *reductions* -- they rewrite the query
head into the equivalent core loop term and delegate to the existing
loop lemmas, so their correctness argument is exactly the equation the
reduction implements:

- :class:`CompileQueryAggregate`: ``QAggregate(i, acc, n, init, body)``
  *is* ``RangedFor(0, n, i, acc, body, init)``; compile that.
- :class:`CompileQueryJoinAgg`: a nested-loop join aggregation *is* two
  nested ``RangedFor`` loops sharing one accumulator; compile those.
- :class:`CompileQueryProjectInto`: a genuinely new loop lemma (modeled
  on ``compile_arraymap_inplace``) for index-driven projection into an
  array the binding rebinds, with the §3.4.2 invariant
  ``QProjectInto(idx, firstn i out, body) ++ skipn i out``.

Each firing emits a ``query_lower`` trace event and a
``query.lowered.<Head>`` counter; the engine's own instrumentation
already yields ``lemma.family.queries`` hits because families are named
after defining modules.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.engine import resolve
from repro.core.goals import BindingGoal, CompilationStalled, StallReport
from repro.core.lemma import HintDb
from repro.core.sepstate import PointerBinding
from repro.query import terms as qt
from repro.source import terms as t
from repro.source.types import NAT
from repro.stdlib.loops import _has_statement_shape, _LoopLemma


def _note_lowering(engine, head: str, via: str, name: str) -> None:
    """Flight-recorder breadcrumb: which reduction fired for which goal."""
    tracer = engine.tracer
    if tracer.enabled:
        tracer.event("query_lower", head=head, via=via, name=name)
        tracer.inc(f"query.lowered.{head}")


class CompileQueryAggregate(_LoopLemma):
    """``let/n x := QAggregate(...) in k`` by reduction to ``RangedFor``."""

    name = "compile_query_aggregate"
    shapes = ("QAggregate",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, qt.QAggregate)

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, qt.QAggregate)
        _note_lowering(engine, "QAggregate", "compile_rangedfor", goal.name)
        stmt, state, node = engine.compile_binding(
            goal.state, goal.name, value.as_ranged_for(), goal.spec
        )
        return stmt, state, [node]


class CompileQueryJoinAgg(_LoopLemma):
    """Nested-loop join aggregation by reduction to nested ``RangedFor``."""

    name = "compile_query_join_agg"
    shapes = ("QJoinAgg",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, qt.QJoinAgg)

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, qt.QJoinAgg)
        _note_lowering(engine, "QJoinAgg", "compile_rangedfor", goal.name)
        stmt, state, node = engine.compile_binding(
            goal.state, goal.name, value.as_nested_ranged_for(), goal.spec
        )
        return stmt, state, [node]


class CompileQueryProjectInto(_LoopLemma):
    """``let/n out := QProjectInto(idx, out, body) in k`` ~ a store loop.

    The rebinding of ``out``'s own name licenses in-place mutation, as
    in the paper's ``ListArray.map`` walkthrough; unlike a map the body
    is a function of the *index*, so it can read any number of source
    columns (whose lengths the spec's facts equate with ``out``'s).
    """

    name = "compile_query_project_into"
    shapes = ("QProjectInto",)
    index_heads = shapes

    def matches(self, goal: BindingGoal) -> bool:
        value = goal.value
        return (
            isinstance(value, qt.QProjectInto)
            and isinstance(value.out, t.Var)
            and isinstance(
                goal.state.binding(value.out.name), PointerBinding
            )
        )

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, qt.QProjectInto) and isinstance(value.out, t.Var)
        out_name = value.out.name
        if goal.name != out_name:
            raise CompilationStalled(
                goal.describe(),
                advice=(
                    "projection writes in place: rebind the target "
                    "array's own name (let/n out := project ... into out)"
                ),
                reason=StallReport.UNSUPPORTED_SHAPE,
                family="queries",
            )
        state = goal.state
        binding = state.binding(out_name)
        assert isinstance(binding, PointerBinding)
        clause = state.heap.get(binding.ptr)
        if clause is None:
            raise CompilationStalled(
                goal.describe(),
                advice=f"no clause owns {binding.ptr!r}",
                reason=StallReport.MISSING_CLAUSE,
                family="queries",
            )
        _note_lowering(engine, "QProjectInto", "store_loop", goal.name)
        out0 = clause.value
        resolved = resolve(state, value)
        assert isinstance(resolved, qt.QProjectInto)
        body_res = resolved.body
        elem_ty = clause.ty.elem
        assert elem_ty is not None
        esz = engine.elem_byte_size(clause.ty)

        lo_term = t.Lit(0, NAT)
        hi_term = t.ArrayLen(out0)
        idx_local, ghost, prologue, guard, nodes, work = self._counter_setup(
            engine, state, lo_term, hi_term
        )

        loop_state = self._loop_body_state(work, idx_local, ghost, lo_term, hi_term)
        # Invariant: projected prefix ++ untouched suffix (§3.4.2 shape).
        invariant_value = t.Append(
            qt.QProjectInto(
                value.idx_name, t.FirstN(t.Var(ghost), out0), body_res
            ),
            t.SkipN(t.Var(ghost), out0),
        )
        loop_state.set_heap_value(binding.ptr, invariant_value)

        # The index binder denotes the ghost counter inside the body.
        body_inlined = t.subst(body_res, value.idx_name, t.Var(ghost))

        addr_index_expr, idx_node = engine.compile_expr_term(
            loop_state, t.Prim("cast.of_nat", (t.Var(ghost),)), None
        )
        nodes.append(idx_node)
        from repro.stdlib.exprs import scaled_index

        addr = ast.EOp(
            "add", ast.EVar(out_name), scaled_index(engine, addr_index_expr, esz)
        )

        if _has_statement_shape(body_inlined):
            tmp = loop_state.fresh_local("_v")
            body_stmt, _after, body_nodes = engine.compile_value_into(
                loop_state, tmp, body_inlined, goal.spec
            )
            store = ast.SStore(esz, addr, ast.EVar(tmp))
            body_code = ast.seq_of(body_stmt, store)
        else:
            body_resolved = resolve(loop_state, body_inlined)
            expr, body_node = engine.compile_expr_term(
                loop_state, body_resolved, elem_ty
            )
            body_nodes = [body_node]
            body_code = ast.SStore(esz, addr, expr)
        nodes.extend(body_nodes)

        loop = ast.SWhile(guard, ast.seq_of(body_code, self._increment(idx_local)))
        stmt = ast.seq_of(*prologue, loop)

        post = work.copy()
        post.set_heap_value(binding.ptr, resolved)
        self._cleanup(post, [idx_local])
        self._drop_body_binders(post, body_res)
        return stmt, post, nodes


def register(db: HintDb) -> HintDb:
    db.register(CompileQueryAggregate(), priority=23)
    db.register(CompileQueryJoinAgg(), priority=23)
    db.register(CompileQueryProjectInto(), priority=23)
    return db


# -- Inverse patterns (repro.lift) -------------------------------------------
#
# The query lemmas emit the loop family's counted skeletons, so their
# code lifts through the generic loop inverses; the entries here record
# that the family is liftable (auditor liftability column) even though
# the lifted model is RangedFor/If-shaped rather than a Q* plan term.

from repro.lift.patterns import InversePattern, register_inverse  # noqa: E402

register_inverse(
    InversePattern(
        name="lift_query_aggregate",
        lemma="compile_query_aggregate",
        family="queries",
        heads=("SWhile",),
        source_head="QAggregate",
        priority=23,
        description="aggregate scans lift through the RangedFor inverse",
    )
)
register_inverse(
    InversePattern(
        name="lift_query_join_agg",
        lemma="compile_query_join_agg",
        family="queries",
        heads=("SWhile",),
        source_head="QJoinAgg",
        priority=23,
        description="nested-loop join aggregates lift through RangedFor",
    )
)
register_inverse(
    InversePattern(
        name="lift_query_project_into",
        lemma="compile_query_project_into",
        family="queries",
        heads=("SWhile",),
        source_head="QProjectInto",
        priority=23,
        description="projection store loops lift through RangedFor/ArrayPut",
    )
)
