"""Intensional mutation: in-place array and cell updates (§3.4.1).

"For state, in particular, we do not typically use an explicit encoding:
instead, we add lemmas to map e.g. list accesses to pointer dereferences,
or pure replacements in a list to pointer assignments."

The trigger is the user's choice of binder name: ``let/n s := put s i v``
rebinds the *same* name as the array being updated, which these lemmas
read as permission to mutate the underlying buffer (the functional
semantics is unchanged: ``put`` still denotes a fresh list).
Rebinding a *different* name requires a ``copy`` annotation and stalls
otherwise -- mutation is never guessed.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.engine import resolve
from repro.core.goals import BindingGoal, CompilationStalled, StallReport
from repro.core.lemma import BindingLemma, HintDb
from repro.core.sepstate import PointerBinding
from repro.core.typecheck import infer_type
from repro.source import terms as t
from repro.stdlib.exprs import scaled_index


class CompileArrayPut(BindingLemma):
    """``let/n a := ListArray.put a i v in k`` ~ store through ``a``'s pointer.

    This is the paper's ``compile_vector_put`` (§3.3) for arrays: premises
    are (1) the local ``a`` holds a pointer, (2) the memory owns the
    array at that pointer, (3-4) expression subgoals for the index and
    value, (5) the continuation under the updated memory predicate.
    """

    name = "compile_array_put"
    shapes = ("ArrayPut",)
    index_heads = shapes

    def matches(self, goal: BindingGoal) -> bool:
        value = goal.value
        return (
            isinstance(value, t.ArrayPut)
            and isinstance(value.arr, t.Var)
            and isinstance(goal.state.binding(value.arr.name), PointerBinding)
        )

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.ArrayPut) and isinstance(value.arr, t.Var)
        arr_name = value.arr.name
        if goal.name != arr_name:
            raise CompilationStalled(
                goal.describe(),
                advice=(
                    f"ListArray.put on {arr_name!r} is bound to a different name "
                    f"({goal.name!r}); in-place mutation requires rebinding the "
                    "same name, and fresh copies require the copy annotation"
                ),
                reason=StallReport.UNSUPPORTED_SHAPE,
                family="mutation",
            )
        state = goal.state
        binding = state.binding(arr_name)
        assert isinstance(binding, PointerBinding)
        clause = state.heap.get(binding.ptr)
        if clause is None:
            raise CompilationStalled(
                goal.describe(),
                advice=f"no separation-logic clause owns {binding.ptr!r}",
                reason=StallReport.MISSING_CLAUSE,
                family="mutation",
            )
        index = resolve(state, value.index)
        new_elem = resolve(state, value.value)
        engine.discharge(
            t.Prim("nat.ltb", (index, t.ArrayLen(clause.value))),
            state,
            "store index in bounds",
        )
        index_expr, index_node = engine.compile_expr_term(
            state, t.Prim("cast.of_nat", (index,)), None
        )
        elem_ty = infer_type(state, new_elem)
        value_expr, value_node = engine.compile_expr_term(state, new_elem, elem_ty)
        size = engine.elem_byte_size(clause.ty)
        addr = ast.EOp(
            "add", ast.EVar(arr_name), scaled_index(engine, index_expr, size)
        )
        new_state = state.copy()
        new_state.set_heap_value(
            binding.ptr, t.ArrayPut(clause.value, index, new_elem)
        )
        return (
            ast.SStore(size, addr, value_expr),
            new_state,
            [index_node, value_node],
        )


class CompileCellPut(BindingLemma):
    """``let/n c := put c v in k`` ~ ``store c V`` (Table 1's cells row)."""

    name = "compile_cell_put"
    shapes = ("CellPut",)
    index_heads = shapes

    def matches(self, goal: BindingGoal) -> bool:
        value = goal.value
        return (
            isinstance(value, t.CellPut)
            and isinstance(value.cell, t.Var)
            and isinstance(goal.state.binding(value.cell.name), PointerBinding)
        )

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.CellPut) and isinstance(value.cell, t.Var)
        cell_name = value.cell.name
        if goal.name != cell_name:
            raise CompilationStalled(
                goal.describe(),
                advice="cell mutation requires rebinding the cell's own name",
                reason=StallReport.UNSUPPORTED_SHAPE,
                family="mutation",
            )
        state = goal.state
        binding = state.binding(cell_name)
        assert isinstance(binding, PointerBinding)
        clause = state.heap.get(binding.ptr)
        if clause is None:
            raise CompilationStalled(
                goal.describe(),
                advice=f"no separation-logic clause owns {binding.ptr!r}",
                reason=StallReport.MISSING_CLAUSE,
                family="mutation",
            )
        content = resolve(state, value.value)
        content_ty = infer_type(state, content)
        value_expr, value_node = engine.compile_expr_term(state, content, content_ty)
        size = engine.elem_byte_size(clause.ty)
        new_state = state.copy()
        new_state.set_heap_value(binding.ptr, content)
        return (
            ast.SStore(size, ast.EVar(cell_name), value_expr),
            new_state,
            [value_node],
        )


def register(db: HintDb) -> HintDb:
    db.register(CompileArrayPut(), priority=20)
    db.register(CompileCellPut(), priority=20)
    return db


# -- Inverse patterns (repro.lift) -------------------------------------------

from repro.lift.patterns import InversePattern, register_inverse  # noqa: E402

register_inverse(
    InversePattern(
        name="lift_array_put",
        lemma="compile_array_put",
        family="mutation",
        heads=("SStore",),
        source_head="ArrayPut",
        priority=20,
        description="a scaled store off an array base inverts to ArrayPut",
    )
)
register_inverse(
    InversePattern(
        name="lift_cell_put",
        lemma="compile_cell_put",
        family="mutation",
        heads=("SStore",),
        source_head="CellPut",
        priority=20,
        description="a store through a cell pointer inverts to CellPut",
    )
)
