"""The error monad: guards with short-circuit compilation (§4.3).

"Patterns like exceptions (using the error monad) ... are relatively easy
to support in Rupicola" -- this module is that support.  A model written
in the error monad interleaves ``guard cond`` steps with ordinary binds;
each guard compiles to a conditional that either continues with the rest
of the function or clears the success flag:

    ok = 1; _errv = 0;            // engine prologue (error specs only)
    ...
    if (COND) { ...rest of the function... } else { ok = 0 }
    return (ok, _errv)

Because the guard lemma wraps the *continuation*, all code after a failed
guard is skipped, matching the monad's short-circuit semantics; and the
guard's condition becomes a path-condition fact for everything after it,
so a bounds guard makes subsequent array accesses verifiable -- the same
synergy the conditional lemma has (§3.4.2).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.engine import resolve
from repro.core.goals import BindingGoal, CompilationStalled, StallReport
from repro.core.lemma import BindingLemma, HintDb, WrapStmt
from repro.source import terms as t
from repro.source.types import BOOL


class CompileErrGuard(BindingLemma):
    """``let/n! _ := guard cond in k`` ~ ``if (COND) { K } else { ok = 0 }``."""

    name = "compile_err_guard"
    shapes = ("ErrGuard",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.ErrGuard)

    def apply(self, goal: BindingGoal, engine) -> Tuple[WrapStmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.ErrGuard)
        state = goal.state
        flag = engine.ERROR_FLAG_LOCAL
        if state.binding(flag) is None:
            raise CompilationStalled(
                goal.describe(),
                advice=(
                    "guard appears in a function whose spec has no error "
                    "flag; declare error_out() as the first output"
                ),
                reason=StallReport.SPEC_MISMATCH,
                family="errors",
            )
        cond_resolved = resolve(state, value.cond)
        cond_expr, cond_node = engine.compile_expr_term(state, cond_resolved, BOOL)
        new_state = state.copy()
        # The continuation only runs when the guard held.
        new_state.add_fact(cond_resolved)
        new_state.bind_scalar(goal.name, t.Lit(0, BOOL), BOOL)
        fail = ast.SSet(flag, ast.ELit(0))

        def wrap(rest: ast.Stmt) -> ast.Stmt:
            return ast.SCond(cond_expr, rest, fail)

        return WrapStmt(wrap), new_state, [cond_node]


def register(db: HintDb) -> HintDb:
    db.register(CompileErrGuard(), priority=15)
    return db
