"""Extensional effects: compiling monadic binds (§3.4.1).

Pure bindings inside monadic programs need no special handling -- the
engine's chain walker feeds them to the same lemmas as pure programs
("Rupicola has ... a single lemma for compiling (pure) addition,
applicable to all monadic programs").  The lemmas here handle the
*monadic* leaves, each implementing its monad's lift:

- **I/O**: ``read``/``write`` become Bedrock2 ``SInteract`` events; the
  symbolic state accumulates the same events in its trace, which the
  validator compares against the interpreter's event trace.  A read's
  result is a fresh ghost (the environment's choice), mirroring the
  universally quantified value in the paper's bind rule.
- **Writer**: ``tell o`` maps to an I/O trace operation, exactly the
  implementation the paper reports building in ninety minutes; the lift
  parameter ``o`` (accumulated output) is the symbolic trace itself.
- **Nondeterminism**: ``peek``/``any`` compiles by *choosing* a value
  (the existential direction of the lift: any choice refines the
  predicate); ``alloc`` lives in :mod:`repro.stdlib.stack_alloc`.
- **State**: ``get``/``put`` thread a designated cell argument
  (``FnSpec.state_param``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.engine import resolve
from repro.core.goals import BindingGoal, CompilationStalled, StallReport
from repro.core.lemma import BindingLemma, HintDb
from repro.core.sepstate import PointerBinding, SymState
from repro.source import terms as t
from repro.source.types import WORD


class CompileIORead(BindingLemma):
    """``let/n! x := io.read() in k`` ~ ``SInteract x = read()``."""

    name = "compile_io_read"
    shapes = ("IORead",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.IORead)

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        state = goal.state.copy()
        ghost = SymState.fresh_ghost("io_in")
        state.set_ghost_type(ghost, WORD)
        state.bind_scalar(goal.name, t.Var(ghost), WORD)
        state.count_io_read()
        state.append_trace("read", (t.Var(ghost),))
        return ast.SInteract((goal.name,), "read", ()), state, []


class CompileIOWrite(BindingLemma):
    """``let/n! _ := io.write v in k`` ~ ``SInteract write(V)``."""

    name = "compile_io_write"
    shapes = ("IOWrite",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.IOWrite)

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.IOWrite)
        resolved = resolve(goal.state, value.value)
        expr, node = engine.compile_expr_term(goal.state, resolved, WORD)
        state = goal.state.copy()
        state.append_trace("write", (resolved,))
        # The bind's result (the written value) is not materialized in a
        # Bedrock2 local; programs that want it should bind it with let/n.
        return ast.SInteract((), "write", (expr,)), state, [node]


class CompileWriterTell(BindingLemma):
    """``let/n! _ := tell v in k`` -- writer output as I/O trace events."""

    name = "compile_writer_tell"
    shapes = ("WriterTell",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.WriterTell)

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.WriterTell)
        resolved = resolve(goal.state, value.value)
        expr, node = engine.compile_expr_term(goal.state, resolved, WORD)
        state = goal.state.copy()
        state.append_trace("tell", (resolved,))
        return ast.SInteract((), "tell", (expr,)), state, [node]


class CompileNdAny(BindingLemma):
    """Nondet ``peek``: the compiler picks a witness (zero).

    Any concrete choice refines ``fun v => True``; validation runs the
    model with an oracle returning the same choice.
    """

    name = "compile_nd_any"
    shapes = ("NdAny",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.NdAny)

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.NdAny)
        state = goal.state.copy()
        chosen = t.Lit(False, value.ty) if value.ty.kind.value == "bool" else t.Lit(0, value.ty)
        state.bind_scalar(goal.name, chosen, value.ty)
        return ast.SSet(goal.name, ast.ELit(0)), state, []


class CompileStGet(BindingLemma):
    """State monad ``get``: read the designated state cell."""

    name = "compile_st_get"
    shapes = ("StGet",)
    index_heads = shapes

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.StGet) and goal.spec.state_param is not None

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        state = goal.state
        cell_local = self._state_cell(goal)
        content = state.value_of(cell_local)
        assert content is not None
        expr, node = engine.compile_expr_term(state, content, None)
        new_state = state.copy()
        new_state.bind_scalar(goal.name, content, WORD)
        return ast.SSet(goal.name, expr), new_state, [node]

    def _state_cell(self, goal: BindingGoal) -> str:
        param = goal.spec.state_param
        from repro.core.spec import ArgKind

        arg = goal.spec.arg_for_param(param, ArgKind.POINTER)
        if arg is None or not isinstance(
            goal.state.binding(arg.name), PointerBinding
        ):
            raise CompilationStalled(
                goal.describe(),
                advice="the state monad needs a pointer argument named by "
                "FnSpec.state_param",
                reason=StallReport.SPEC_MISMATCH,
                family="monads",
            )
        return arg.name


class CompileStPut(CompileStGet):
    """State monad ``put``: overwrite the designated state cell."""

    name = "compile_st_put"
    shapes = ("StPut",)
    index_heads = shapes

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.StPut) and goal.spec.state_param is not None

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.StPut)
        state = goal.state
        cell_local = self._state_cell(goal)
        binding = state.binding(cell_local)
        assert isinstance(binding, PointerBinding)
        clause = state.heap[binding.ptr]
        resolved = resolve(state, value.value)
        expr, node = engine.compile_expr_term(state, resolved, None)
        size = engine.elem_byte_size(clause.ty)
        new_state = state.copy()
        new_state.set_heap_value(binding.ptr, resolved)
        return ast.SStore(size, ast.EVar(cell_local), expr), new_state, [node]


def register(db: HintDb) -> HintDb:
    db.register(CompileIORead(), priority=15)
    db.register(CompileIOWrite(), priority=15)
    db.register(CompileWriterTell(), priority=15)
    db.register(CompileNdAny(), priority=15)
    db.register(CompileStGet(), priority=15)
    db.register(CompileStPut(), priority=15)
    return db
