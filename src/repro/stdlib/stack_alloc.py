"""Stack allocation (§4.1.2's first case study).

Two source forms, exactly as in the paper:

- ``let/n x := stack (term) in ...`` for stack objects that are
  immediately initialized: "When Rupicola sees let x := stack (term) in
  ..., it generates a stack allocation in Bedrock2 and resumes
  compilation with the plain program let x := term in ...".
- the nondeterminism monad's ``alloc`` for *uninitialized* buffers,
  modeled as beginning with unconstrained contents (see
  :mod:`repro.stdlib.monads`).

Because Bedrock2's ``SStackalloc`` is lexically scoped, these lemmas
return :class:`WrapStmt` values that nest the compiled continuation
inside the allocation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.engine import resolve
from repro.core.goals import BindingGoal, CompilationStalled, StallReport
from repro.core.lemma import BindingLemma, HintDb, WrapStmt
from repro.core.sepstate import Clause, PtrSym
from repro.core.typecheck import infer_type
from repro.source import terms as t
from repro.source.types import TypeKind


class CompileStackAlloc(BindingLemma):
    """``let/n x := stack (init) in k`` ~ ``SStackalloc x nbytes { init; K }``."""

    name = "compile_stack_alloc"
    shapes = ("Stack",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.Stack)

    def apply(self, goal: BindingGoal, engine) -> Tuple[WrapStmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.Stack)
        state = goal.state
        init = resolve(state, value.value)
        ty = infer_type(state, init)
        if ty.kind is not TypeKind.ARRAY:
            raise CompilationStalled(
                goal.describe(),
                advice="stack(...) expects an array value (cells: wrap in a 1-cell array)",
                reason=StallReport.UNSUPPORTED_SHAPE,
                family="stack_alloc",
            )
        if not (isinstance(init, t.Lit) and isinstance(init.value, tuple)):
            raise CompilationStalled(
                goal.describe(),
                advice=(
                    "stack initialization must be a literal array in this "
                    "version; plug in a copying lemma for dynamic initializers"
                ),
                reason=StallReport.UNSUPPORTED_SHAPE,
                family="stack_alloc",
            )
        elements = init.value
        esz = engine.elem_byte_size(ty)
        nbytes = len(elements) * esz

        ptr = PtrSym(f"stk_{goal.name}_{SymState_fresh()}")
        new_state = state.copy()
        new_state.bind_pointer(goal.name, ptr, ty)
        new_state.add_clause(
            Clause(ptr=ptr, ty=ty, value=init, capacity=len(elements))
        )

        init_stores = [
            ast.SStore(
                esz,
                ast.EOp("add", ast.EVar(goal.name), ast.ELit(offset * esz)),
                ast.ELit(int(element)),
            )
            for offset, element in enumerate(elements)
        ]
        name = goal.name

        def wrap(rest: ast.Stmt) -> ast.Stmt:
            return ast.SStackalloc(name, nbytes, ast.seq_of(*init_stores, rest))

        return WrapStmt(wrap), new_state, []


def SymState_fresh() -> str:
    from repro.core.sepstate import SymState

    return SymState.fresh_ghost("s")


class CompileNdAlloc(BindingLemma):
    """Nondet ``alloc``: a stack buffer with unconstrained initial bytes.

    Functionally the allocation is *any* list of ``n`` bytes (the paper's
    ``fun l => length l = n`` predicate); the symbolic state gets a fresh
    ghost array constrained only in length.  The compiled program is
    correct for every initial content, which the differential validator
    exercises by injecting random bytes.
    """

    name = "compile_nd_alloc"
    shapes = ("NdAllocBytes",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.NdAllocBytes)

    def apply(self, goal: BindingGoal, engine) -> Tuple[WrapStmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.NdAllocBytes)
        from repro.core.sepstate import SymState
        from repro.source.types import ARRAY_BYTE, NAT

        state = goal.state
        ghost = SymState.fresh_ghost("nd")
        ptr = PtrSym(f"stk_{goal.name}_{SymState.fresh_ghost('s')}")
        new_state = state.copy()
        new_state.set_ghost_type(ghost, ARRAY_BYTE)
        new_state.bind_pointer(goal.name, ptr, ARRAY_BYTE)
        new_state.add_clause(
            Clause(ptr=ptr, ty=ARRAY_BYTE, value=t.Var(ghost), capacity=value.nbytes)
        )
        new_state.add_fact(
            t.Prim(
                "nat.eqb",
                (t.ArrayLen(t.Var(ghost)), t.Lit(value.nbytes, NAT)),
            )
        )
        name = goal.name
        nbytes = value.nbytes

        def wrap(rest: ast.Stmt) -> ast.Stmt:
            return ast.SStackalloc(name, nbytes, rest)

        return WrapStmt(wrap), new_state, []


def register(db: HintDb) -> HintDb:
    db.register(CompileStackAlloc(), priority=22)
    db.register(CompileNdAlloc(), priority=22)
    return db
