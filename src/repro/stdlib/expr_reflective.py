"""The §4.1.3 ablation: Rupicola's *original* expression compiler.

"Originally ... we compiled expressions by reifying them into an AST type
and then using a very simple verified compiler targeting Bedrock2's
expression language ... This was a miscalculation: extending that
compiler was complicated ... and customizing its output for a specific
program required duplicating the entire compiler to change just one
case."

This module reproduces that design as a single monolithic recursive
function: same input shapes as the relational expression lemmas, one
closed ``if/elif`` chain, no extension points.  The E6 benchmark compares
it against the relational version on lines of code, extension ergonomics
(you *can't* extend this one without editing it), and compile time (the
paper reports the relational version cost < 30% overall).
"""

from __future__ import annotations


from repro.bedrock2 import ast
from repro.core.goals import CompilationStalled, StallReport
from repro.core.sepstate import SymState
from repro.source import terms as t
from repro.source.ops import get_op
from repro.source.types import NAT
from repro.stdlib.exprs import clause_for_array, find_local_canonical, scaled_index
from repro.stdlib.inline_tables import pack_table


def compile_expr_reflective(engine, state: SymState, term: t.Term) -> ast.Expr:
    """The monolithic compiler: one function, every case inlined.

    Matches the relational compiler's outputs exactly (tested), so the
    ablation isolates the *architecture*, not the generated code.
    """
    # Case 1: literals.
    if isinstance(term, t.Lit) and not isinstance(term.value, (list, tuple)):
        value = term.value
        if isinstance(value, bool):
            return ast.ELit(1 if value else 0)
        if term.ty is NAT:
            engine.discharge(
                t.Prim("nat.ltb", (term, t.Lit(1 << engine.width, NAT))),
                state,
                "literal fits in a word",
            )
        return ast.ELit(value & ((1 << engine.width) - 1))

    # Case 2: locals lookup.
    local = find_local_canonical(state, term)
    if local is not None:
        return ast.EVar(local)

    # Case 3: known-capacity lengths.
    inner = term
    if isinstance(inner, t.Prim) and inner.op == "cast.of_nat":
        inner = inner.args[0]
    if isinstance(inner, t.ArrayLen):
        for clause in state.heap.values():
            if clause.value == inner.arr and clause.capacity is not None:
                return ast.ELit(clause.capacity)

    # Case 4: cell loads.
    for ptr, clause in state.heap.items():
        if clause.ty.kind.value == "cell" and clause.value == term:
            cell_local = state.find_pointer_local(ptr)
            if cell_local is not None:
                return ast.ELoad(engine.elem_byte_size(clause.ty), ast.EVar(cell_local))

    # Case 5: array gets.
    if isinstance(term, t.ArrayGet):
        found = clause_for_array(state, term.arr, term.index)
        if found is None:
            raise CompilationStalled(
                "reflective: no clause covers the array",
                reason=StallReport.MISSING_CLAUSE,
                family="expr_reflective",
            )
        ptr, clause = found
        arr_local = state.find_pointer_local(ptr)
        if arr_local is None:
            raise CompilationStalled(
                "reflective: no local holds the pointer",
                reason=StallReport.MISSING_CLAUSE,
                family="expr_reflective",
            )
        engine.discharge(
            t.Prim("nat.ltb", (term.index, t.ArrayLen(term.arr))),
            state,
            "array index in bounds",
        )
        index = compile_expr_reflective(
            engine, state, t.Prim("cast.of_nat", (term.index,))
        )
        size = engine.elem_byte_size(clause.ty)
        return ast.ELoad(
            size, ast.EOp("add", ast.EVar(arr_local), scaled_index(engine, index, size))
        )

    # Case 6: inline tables.
    if isinstance(term, t.TableGet):
        engine.discharge(
            t.Prim("nat.ltb", (term.index, t.Lit(len(term.data), NAT))),
            state,
            "table index in bounds",
        )
        index = compile_expr_reflective(
            engine, state, t.Prim("cast.of_nat", (term.index,))
        )
        size = engine.scalar_byte_size(term.elem_ty)
        return ast.EInlineTable(
            size, pack_table(term.data, size), scaled_index(engine, index, size)
        )

    # Case 7: primitive operations, every lowering spelled out.
    if isinstance(term, t.Prim):
        op = get_op(term.op)
        lower = op.lower

        def arg(index: int) -> ast.Expr:
            return compile_expr_reflective(engine, state, term.args[index])

        if lower[0] == "op":
            return ast.EOp(lower[1], arg(0), arg(1))
        if lower[0] == "op_mask8":
            return ast.EOp("and", ast.EOp(lower[1], arg(0), arg(1)), ast.ELit(0xFF))
        if lower[0] == "eq0":
            return ast.EOp("eq", arg(0), ast.ELit(0))
        if lower[0] == "id":
            return arg(0)
        if lower[0] == "mask8":
            return ast.EOp("and", arg(0), ast.ELit(0xFF))
        if lower[0] == "leb":
            return ast.EOp("eq", ast.EOp("ltu", arg(1), arg(0)), ast.ELit(0))
        if lower[0] == "guarded":
            width_lit = t.Lit(1 << engine.width, NAT)
            kind = lower[1]
            if kind == "fits_word":
                engine.discharge(
                    t.Prim("nat.ltb", (term.args[0], width_lit)), state, "fits"
                )
                return arg(0)
            if kind == "add_no_overflow":
                engine.discharge(t.Prim("nat.ltb", (term, width_lit)), state, "fits")
                return ast.EOp("add", arg(0), arg(1))
            if kind == "sub_no_underflow":
                engine.discharge(
                    t.Prim("nat.leb", (term.args[1], term.args[0])), state, "fits"
                )
                return ast.EOp("sub", arg(0), arg(1))
            if kind == "mul_no_overflow":
                engine.discharge(t.Prim("nat.ltb", (term, width_lit)), state, "fits")
                return ast.EOp("mul", arg(0), arg(1))
            if kind == "div_nonzero":
                engine.discharge(
                    t.Prim("nat.ltb", (t.Lit(0, NAT), term.args[1])), state, "nonzero"
                )
                return ast.EOp("divu", arg(0), arg(1))

    raise CompilationStalled(
        f"reflective expression compiler: unhandled term {t.pretty(term)} "
        "(to support it you must edit compile_expr_reflective itself -- "
        "that is the point of the ablation)",
        reason=StallReport.NO_EXPR_LEMMA,
        family="expr_reflective",
    )
