"""Conditionals, with predicate inference at the join point (§3.4.2).

The join problem: after ``if (t) { ... } else { ... }``, naive strongest
postconditions produce a disjunction "incomprehensible to later
compilation steps".  Rupicola instead computes a predicate *template*
(abstract over each target's binding/clause) and instantiates it with the
source conditional itself, so the merged symbolic value of target ``x``
is literally ``if t then v1 else v2`` -- exactly what later syntactic
matching expects.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.engine import resolve
from repro.core.goals import BindingGoal, CompilationStalled, StallReport
from repro.core.invariants import classify_target, merge_conditional
from repro.core.lemma import BindingLemma, HintDb
from repro.core.typecheck import infer_type
from repro.source import terms as t
from repro.source.types import BOOL


class CompileIf(BindingLemma):
    """``let/n x := if c then a else b in k`` ~ ``SCond``.

    Each branch is compiled as its own mini-derivation targeting the same
    binding; the join instantiates the inferred template with the source
    ``if`` term, per the compare-and-swap walkthrough of §3.4.2.
    """

    name = "compile_if"
    shapes = ("If",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.If)

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        if goal.names is not None:
            return self._apply_multi(goal, engine)
        value = goal.value
        assert isinstance(value, t.If)
        state = goal.state
        cond_resolved = resolve(state, value.cond)
        cond_expr, cond_node = engine.compile_expr_term(state, cond_resolved, BOOL)

        # Compile both branches against copies of the current state, each
        # extended with its path condition (so e.g. a bounds access guarded
        # by its own index test discharges inside the branch).
        then_state_in = state.copy()
        then_state_in.add_fact(cond_resolved)
        then_stmt, then_state, then_nodes = engine.compile_value_into(
            then_state_in, goal.name, value.then_, goal.spec
        )
        else_state_in = state.copy()
        negated = _negate(cond_resolved)
        if negated is not None:
            else_state_in.add_fact(negated)
        else_stmt, else_state, else_nodes = engine.compile_value_into(
            else_state_in, goal.name, value.else_, goal.spec
        )

        # Step 1 of the heuristic: the target is the bound name.  Collect
        # its branch values (scalar binding or heap clause, per step 2).
        target = classify_target(state, goal.name)
        self._check_single_target(goal, state, then_state, else_state, target)
        then_value = then_state.value_of(goal.name)
        else_value = else_state.value_of(goal.name)
        if then_value is None or else_value is None:
            # A branch did not bind the target (e.g. `else c`: the name
            # existed before and is unchanged).
            base_value = state.value_of(goal.name)
            then_value = then_value if then_value is not None else base_value
            else_value = else_value if else_value is not None else base_value
        assert then_value is not None and else_value is not None

        scalar_types: Dict[str, object] = {}
        if target.kind == "scalar":
            scalar_types[goal.name] = infer_type(
                then_state if goal.name in then_state.locals else state, then_value
            )
        merged = merge_conditional(
            state,
            [goal.name],
            cond_resolved,
            {goal.name: then_value},
            {goal.name: else_value},
            scalar_types,  # type: ignore[arg-type]
        )
        stmt = ast.SCond(cond_expr, then_stmt, else_stmt)
        return stmt, merged, [cond_node] + then_nodes + else_nodes

    def _apply_multi(self, goal: BindingGoal, engine):
        """The full §3.4.2 heuristic: several targets, one conditional.

        ``let/n (r, c) := if t then (true, put c x) else (false, c)``:
        each branch is a tuple of per-target values, compiled in order;
        the join instantiates the template with one source conditional
        per target.
        """

        value = goal.value
        assert isinstance(value, t.If) and goal.names is not None
        names = list(goal.names)
        state = goal.state
        cond_resolved = resolve(state, value.cond)
        cond_expr, cond_node = engine.compile_expr_term(state, cond_resolved, BOOL)
        nodes = [cond_node]

        def compile_branch(branch: t.Term, fact):
            if not (isinstance(branch, t.TupleTerm) and len(branch.items) == len(names)):
                raise CompilationStalled(
                    goal.describe(),
                    advice="each branch of a multi-target conditional must be "
                    f"a {len(names)}-tuple",
                    reason=StallReport.UNSUPPORTED_SHAPE,
                    family="control",
                )
            branch_state = state.copy()
            if fact is not None:
                branch_state.add_fact(fact)
            stmts = []
            for target, component in zip(names, branch.items):
                stmt, branch_state, child_nodes = engine.compile_value_into(
                    branch_state, target, component, goal.spec
                )
                stmts.append(stmt)
                nodes.extend(child_nodes)
            values = {}
            for target in names:
                current = branch_state.value_of(target)
                values[target] = current if current is not None else state.value_of(target)
            return ast.seq_of(*stmts), branch_state, values

        then_stmt, then_state, then_values = compile_branch(value.then_, cond_resolved)
        else_stmt, else_state, else_values = compile_branch(
            value.else_, _negate(cond_resolved)
        )

        scalar_types = {}
        for target in names:
            kind = classify_target(state, target)
            if kind.kind == "scalar":
                source_state = then_state if target in then_state.locals else state
                scalar_types[target] = infer_type(source_state, then_values[target])
        merged = merge_conditional(
            state, names, cond_resolved, then_values, else_values, scalar_types
        )
        return ast.SCond(cond_expr, then_stmt, else_stmt), merged, nodes

    def _check_single_target(self, goal, base, then_state, else_state, target):
        """Refuse (loudly) branches that mutate anything but the target."""

        target_ptr = target.ptr
        for branch_state in (then_state, else_state):
            for ptr, clause in branch_state.heap.items():
                if ptr == target_ptr:
                    continue
                base_clause = base.heap.get(ptr)
                if base_clause is not None and base_clause.value != clause.value:
                    raise CompilationStalled(
                        goal.describe(),
                        advice=(
                            "a conditional branch mutates more than the bound "
                            "target; bind every modified object in the "
                            "conditional's result (multi-target joins are a "
                            "compiler extension)"
                        ),
                        reason=StallReport.UNSUPPORTED_SHAPE,
                        family="control",
                    )


def _negate(cond: t.Term):
    """The negation of a comparison, when expressible as another fact."""
    if isinstance(cond, t.Prim):
        if cond.op == "nat.ltb":
            return t.Prim("nat.leb", (cond.args[1], cond.args[0]))
        if cond.op == "nat.leb":
            return t.Prim("nat.ltb", (cond.args[1], cond.args[0]))
        if cond.op == "bool.negb":
            return cond.args[0]
    return None


def register(db: HintDb) -> HintDb:
    db.register(CompileIf(), priority=30)
    return db


# -- Inverse patterns (repro.lift) -------------------------------------------

from repro.lift.patterns import InversePattern, register_inverse  # noqa: E402

register_inverse(
    InversePattern(
        name="lift_if",
        lemma="compile_if",
        family="control",
        heads=("SCond",),
        source_head="If",
        priority=30,
        description="an SCond merges its branch environments into If terms",
    )
)
