"""The relational expression compiler (§4.1.3).

Originally Rupicola compiled expressions by reifying them into an AST and
running a small verified compiler; the paper describes switching to
relational compilation because extending the reflective compiler "required
modifications in increasingly complex Coq tactics".  This module is the
relational version: one small lemma per expression shape, registered into
an ordered hint database.  (:mod:`repro.stdlib.expr_reflective` keeps the
monolithic version for the E6 ablation.)

Lemmas, in priority order:

1. ``expr_lit``          -- literals;
2. ``expr_local_lookup`` -- a local already holds this value (matching is
   syntactic modulo length canonicalization);
3. ``expr_cell_load``    -- some cell's content is this value;
4. ``expr_array_get``    -- ``ListArray.get``, with a bounds obligation;
5. ``expr_prim``         -- primitive ops via their catalog lowering
   specs, including the guarded nat lowerings (overflow obligations).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.goals import CompilationStalled, ExprGoal, StallReport
from repro.core.lemma import ExprLemma, HintDb
from repro.core.sepstate import Clause, PtrSym, ScalarBinding, SymState
from repro.core.solver import canonicalize
from repro.source import terms as t
from repro.source.ops import get_op
from repro.source.types import NAT, TypeKind


def find_local_canonical(state: SymState, term: t.Term) -> Optional[str]:
    """Reverse lookup of a local by value, modulo length canonicalization.

    A local bound at type ``nat`` physically holds ``of_nat`` of its
    value, so such bindings also answer lookups for the of_nat-wrapped
    term.
    """
    direct = state.find_local_by_value(term)
    if direct is not None:
        return direct
    canonical = canonicalize(term)
    for name, binding in state.locals.items():
        if not isinstance(binding, ScalarBinding):
            continue
        stored = canonicalize(binding.term)
        if stored == canonical:
            return name
        if binding.ty is NAT and canonicalize(
            t.Prim("cast.of_nat", (binding.term,))
        ) == canonical:
            return name
    return None


def clause_for_array(
    state: SymState, arr: t.Term, index: Optional[t.Term] = None
) -> Optional[Tuple[PtrSym, Clause]]:
    """Find the heap clause whose contents denote ``arr``.

    Besides exact matches, this recognizes the loop-invariant shape: when
    the heap holds ``prefix ++ skipn i l`` and we want element ``i`` of
    ``l``, the addressed suffix is untouched, so the clause applies.
    """
    for ptr, clause in state.heap.items():
        if clause.ty.kind is not TypeKind.ARRAY:
            continue
        if clause.value == arr:
            return ptr, clause
    if index is not None:
        for ptr, clause in state.heap.items():
            if clause.ty.kind is not TypeKind.ARRAY:
                continue
            value = clause.value
            if (
                isinstance(value, t.Append)
                and isinstance(value.second, t.SkipN)
                and value.second.arr == arr
                and value.second.count == index
            ):
                return ptr, clause
    return None


def scaled_index(engine, index_expr: ast.Expr, elem_size: int) -> ast.Expr:
    if elem_size == 1:
        return index_expr
    return ast.EOp("mul", index_expr, ast.ELit(elem_size))


class ExprLit(ExprLemma):
    """``[TPush z] ~ z`` for words: literals compile to literals."""

    name = "expr_lit"
    shapes = ("Lit",)
    index_heads = shapes

    def matches(self, goal: ExprGoal) -> bool:
        return isinstance(goal.term, t.Lit) and not isinstance(
            goal.term.value, (list, tuple)
        )

    def apply(self, goal: ExprGoal, engine) -> Tuple[ast.Expr, List[CertNode]]:
        value = goal.term.value
        if isinstance(value, bool):
            return ast.ELit(1 if value else 0), []
        assert isinstance(value, int)
        if goal.term.ty is NAT:
            engine.discharge(
                t.Prim("nat.ltb", (goal.term, t.Lit(1 << engine.width, NAT))),
                goal.state,
                "literal fits in a word",
            )
        return ast.ELit(value & ((1 << engine.width) - 1)), []


class ExprLocalLookup(ExprLemma):
    """A local variable already holds this value: emit a variable read.

    This is the analogue of the paper's premise ``map.get l v = Some x``.
    """

    name = "expr_local_lookup"
    shapes = ("Var",)
    # Head-AGNOSTIC: the reverse value lookup can hit for any term a
    # local happens to hold, not just Var -- must stay in the
    # wildcard bucket (index_heads = None, the inherited default).

    def matches(self, goal: ExprGoal) -> bool:
        return find_local_canonical(goal.state, goal.term) is not None

    def apply(self, goal: ExprGoal, engine) -> Tuple[ast.Expr, List[CertNode]]:
        local = find_local_canonical(goal.state, goal.term)
        assert local is not None
        return ast.EVar(local), []


class ExprKnownLength(ExprLemma):
    """``length a`` where the owning clause has a static capacity
    (stack-allocated buffers): compile to the literal."""

    name = "expr_known_len"
    shapes = ("ArrayLen",)
    # Matches bare ``length a`` AND its word encoding
    # ``cast.of_nat (length a)`` -- two goal heads, not one.
    index_heads = ("ArrayLen", "Prim")

    def _find(self, state: SymState, term: t.Term):
        inner = term
        if isinstance(inner, t.Prim) and inner.op == "cast.of_nat":
            inner = inner.args[0]
        if not isinstance(inner, t.ArrayLen):
            return None
        for clause in state.heap.values():
            if clause.value == inner.arr and clause.capacity is not None:
                return clause.capacity
        return None

    def matches(self, goal: ExprGoal) -> bool:
        return self._find(goal.state, goal.term) is not None

    def apply(self, goal: ExprGoal, engine) -> Tuple[ast.Expr, List[CertNode]]:
        capacity = self._find(goal.state, goal.term)
        assert capacity is not None
        return ast.ELit(capacity), []


class ExprCellLoad(ExprLemma):
    """Some cell's content denotes this value: emit a load through its pointer."""

    name = "expr_cell_load"
    shapes = ("CellGet",)
    # Head-AGNOSTIC: matches any term some cell clause currently
    # denotes -- must stay in the wildcard bucket.

    def _find(self, state: SymState, term: t.Term):
        for ptr, clause in state.heap.items():
            if clause.ty.kind is TypeKind.CELL and clause.value == term:
                local = state.find_pointer_local(ptr)
                if local is not None:
                    return local, clause
        return None

    def matches(self, goal: ExprGoal) -> bool:
        return self._find(goal.state, goal.term) is not None

    def apply(self, goal: ExprGoal, engine) -> Tuple[ast.Expr, List[CertNode]]:
        found = self._find(goal.state, goal.term)
        assert found is not None
        local, clause = found
        size = engine.elem_byte_size(clause.ty)
        return ast.ELoad(size, ast.EVar(local)), []


class ExprArrayGet(ExprLemma):
    """``ListArray.get a i`` becomes a load at ``p + i * elem_size``.

    Premises: the state owns an array clause denoting ``a``; a local holds
    its pointer; the index compiles; and ``i < length a`` (discharged by
    the solver bank -- the "plug in Coq's linear-arithmetic solver to
    handle index-bounds side conditions" step of §3.2).
    """

    name = "expr_array_get"
    shapes = ("ArrayGet",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: ExprGoal) -> bool:
        return isinstance(goal.term, t.ArrayGet)

    def apply(self, goal: ExprGoal, engine) -> Tuple[ast.Expr, List[CertNode]]:
        term = goal.term
        assert isinstance(term, t.ArrayGet)
        found = clause_for_array(goal.state, term.arr, term.index)
        if found is None:
            raise CompilationStalled(
                goal.describe(),
                advice="no separation-logic clause covers this array value",
                reason=StallReport.MISSING_CLAUSE,
                family="exprs",
            )
        ptr, clause = found
        local = goal.state.find_pointer_local(ptr)
        if local is None:
            raise CompilationStalled(
                goal.describe(),
                advice=f"no local variable holds pointer {ptr!r}",
                reason=StallReport.MISSING_CLAUSE,
                family="exprs",
            )
        engine.discharge(
            t.Prim("nat.ltb", (term.index, t.ArrayLen(term.arr))),
            goal.state,
            "array index in bounds",
        )
        index_expr, index_node = engine.compile_expr_term(
            goal.state, t.Prim("cast.of_nat", (term.index,)), None
        )
        size = engine.elem_byte_size(clause.ty)
        addr = ast.EOp("add", ast.EVar(local), scaled_index(engine, index_expr, size))
        return ast.ELoad(size, addr), [index_node]


class ExprPrim(ExprLemma):
    """Primitive operations, lowered per their catalog specs.

    Each catalog entry's ``lower`` field is interpreted here; because this
    is just one lemma among equals in the hint database, a user lemma
    registered earlier can override the lowering of any particular
    operation or term shape.
    """

    name = "expr_prim"
    shapes = ("Prim",)
    index_heads = shapes
    shape_total = True

    def matches(self, goal: ExprGoal) -> bool:
        return isinstance(goal.term, t.Prim)

    def apply(self, goal: ExprGoal, engine) -> Tuple[ast.Expr, List[CertNode]]:
        term = goal.term
        assert isinstance(term, t.Prim)
        op = get_op(term.op)
        lower = op.lower
        nodes: List[CertNode] = []

        def compile_arg(index: int) -> ast.Expr:
            expr, node = engine.compile_expr_term(goal.state, term.args[index], None)
            nodes.append(node)
            return expr

        if lower[0] == "op":
            lhs, rhs = compile_arg(0), compile_arg(1)
            return ast.EOp(lower[1], lhs, rhs), nodes
        if lower[0] == "op_mask8":
            lhs, rhs = compile_arg(0), compile_arg(1)
            return ast.EOp("and", ast.EOp(lower[1], lhs, rhs), ast.ELit(0xFF)), nodes
        if lower[0] == "eq0":
            return ast.EOp("eq", compile_arg(0), ast.ELit(0)), nodes
        if lower[0] == "id":
            return compile_arg(0), nodes
        if lower[0] == "mask8":
            return ast.EOp("and", compile_arg(0), ast.ELit(0xFF)), nodes
        if lower[0] == "leb":
            # a <= b  ~>  !(b < a)  ~>  (b < a) == 0
            lhs, rhs = compile_arg(0), compile_arg(1)
            return ast.EOp("eq", ast.EOp("ltu", rhs, lhs), ast.ELit(0)), nodes
        if lower[0] == "guarded":
            kind = lower[1]
            width_lit = t.Lit(1 << engine.width, NAT)
            if kind == "fits_word":
                engine.discharge(
                    t.Prim("nat.ltb", (term.args[0], width_lit)),
                    goal.state,
                    "nat fits in a word",
                )
                return compile_arg(0), nodes
            if kind == "add_no_overflow":
                engine.discharge(
                    t.Prim("nat.ltb", (term, width_lit)),
                    goal.state,
                    "nat addition does not overflow",
                )
                return ast.EOp("add", compile_arg(0), compile_arg(1)), nodes
            if kind == "sub_no_underflow":
                engine.discharge(
                    t.Prim("nat.leb", (term.args[1], term.args[0])),
                    goal.state,
                    "nat subtraction does not underflow",
                )
                return ast.EOp("sub", compile_arg(0), compile_arg(1)), nodes
            if kind == "mul_no_overflow":
                engine.discharge(
                    t.Prim("nat.ltb", (term, width_lit)),
                    goal.state,
                    "nat multiplication does not overflow",
                )
                return ast.EOp("mul", compile_arg(0), compile_arg(1)), nodes
            if kind == "div_nonzero":
                # Coq's x / 0 = 0, but divu by zero is all-ones: the
                # lowering is only valid for a nonzero divisor.
                engine.discharge(
                    t.Prim("nat.ltb", (t.Lit(0, NAT), term.args[1])),
                    goal.state,
                    "nat division by nonzero",
                )
                return ast.EOp("divu", compile_arg(0), compile_arg(1)), nodes
        raise CompilationStalled(
            goal.describe(),
            advice=f"no lowering interpretation for spec {lower!r} of {term.op}",
            reason=StallReport.UNSUPPORTED_SHAPE,
            family="exprs",
        )


def register(db: HintDb) -> HintDb:
    """Register the standard expression lemmas (priority = listed order)."""
    db.register(ExprLit(), priority=10)
    db.register(ExprLocalLookup(), priority=11)
    db.register(ExprKnownLength(), priority=12)
    db.register(ExprCellLoad(), priority=12)
    db.register(ExprArrayGet(), priority=13)
    db.register(ExprPrim(), priority=14)
    return db


# -- Inverse patterns (repro.lift) -------------------------------------------

from repro.lift.patterns import InversePattern, register_inverse  # noqa: E402

register_inverse(
    InversePattern(
        name="lift_lit",
        lemma="expr_lit",
        family="exprs",
        heads=("ELit",),
        source_head="Lit",
        priority=10,
        description="a word literal inverts to Lit",
    )
)
register_inverse(
    InversePattern(
        name="lift_local_lookup",
        lemma="expr_local_lookup",
        family="exprs",
        heads=("EVar",),
        source_head="Var",
        priority=11,
        description="a local read inverts to the value bound to that local",
    )
)
register_inverse(
    InversePattern(
        name="lift_known_length",
        lemma="expr_known_len",
        family="exprs",
        heads=("EVar", "ELit"),
        source_head="ArrayLen",
        priority=12,
        description="a LENGTH argument or known capacity inverts to ArrayLen",
    )
)
register_inverse(
    InversePattern(
        name="lift_cell_load",
        lemma="expr_cell_load",
        family="exprs",
        heads=("ELoad",),
        source_head="CellGet",
        priority=12,
        description="a load through a cell pointer inverts to CellGet",
    )
)
register_inverse(
    InversePattern(
        name="lift_array_get",
        lemma="expr_array_get",
        family="exprs",
        heads=("ELoad",),
        source_head="ArrayGet",
        priority=13,
        description="a scaled load off an array base inverts to ArrayGet",
    )
)
register_inverse(
    InversePattern(
        name="lift_prim",
        lemma="expr_prim",
        family="exprs",
        heads=("EOp",),
        source_head="Prim",
        priority=14,
        description="a Bedrock2 binary operator inverts to the word/bool Prim",
    )
)
