"""Plain scalar ``let/n`` bindings: one assignment per binding (§3.4.1).

"In general, Rupicola expects input programs to be sequences of
let-bindings, one per desired assignment in the target language."  The
generic lemma here turns ``let/n x := <scalar value> in ...`` into
``SSet(x, <compiled expression>)`` and records the binding in the
symbolic state.  It is registered *last*: every more specific shape
(mutation, loops, conditionals, effects) gets first refusal.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.engine import resolve
from repro.core.goals import BindingGoal
from repro.core.lemma import BindingLemma, HintDb
from repro.core.typecheck import infer_type
from repro.source import terms as t
from repro.source.types import NAT, WORD

SCALAR_VALUE_NODES = (
    t.Lit,
    t.Var,
    t.Prim,
    t.ArrayGet,
    t.ArrayLen,
    t.TableGet,
    t.CellGet,
    t.MRet,
)


class CompilePointerIdentity(BindingLemma):
    """``let/n a := a in k`` for a pointer-bound ``a``: nothing to emit.

    Arises in conditional branches that leave an object unchanged (the
    paper's CAS example: ``if t then (true, put c x) else (false, c)``);
    compiling it as a scalar read would clobber the pointer local.
    """

    name = "compile_pointer_identity"
    shapes = ("Var", "MRet")
    index_heads = ("Var", "MRet")

    def matches(self, goal: BindingGoal) -> bool:
        from repro.core.sepstate import PointerBinding

        value = goal.value
        if isinstance(value, t.MRet):
            value = value.value
        return (
            isinstance(value, t.Var)
            and value.name == goal.name
            and isinstance(goal.state.binding(goal.name), PointerBinding)
        )

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        from repro.bedrock2.ast import SSkip

        return SSkip(), goal.state.copy(), []


class CompileSetScalar(BindingLemma):
    """``let/n x := v in k`` ~ ``SSeq (SSet x V) K`` for scalar ``v``.

    Premises (mirroring the vector lemma of §3.3): an expression subgoal
    ``EXPR m l V v``, and the continuation (handled by the engine's chain
    walker, which passes the updated state along).
    """

    name = "compile_set_scalar"
    shapes = tuple(cls.__name__ for cls in SCALAR_VALUE_NODES)
    index_heads = shapes

    def matches(self, goal: BindingGoal) -> bool:
        value = goal.value
        if isinstance(value, t.MRet):
            value = value.value
        if not isinstance(value, SCALAR_VALUE_NODES):
            return False
        try:
            ty = infer_type(goal.state, resolve(goal.state, value))
        except Exception:
            return False
        return ty.is_scalar

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        if isinstance(value, t.MRet):
            value = value.value
        resolved = resolve(goal.state, value)
        ty = infer_type(goal.state, resolved)
        # Nats are represented as words, so the emitted expression is
        # the word encoding of_nat(v) (with its fits-in-a-word
        # obligation); the *binding* keeps the nat term so that later
        # nat-level uses (e.g. array indices) resolve correctly --
        # the lookup lemma knows a NAT binding's local holds of_nat.
        source_term = t.Prim("cast.of_nat", (resolved,)) if ty is NAT else resolved
        expr, node = engine.compile_expr_term(
            goal.state, source_term, WORD if ty is NAT else ty
        )
        state = goal.state.copy()
        state.bind_scalar(goal.name, resolved, ty)
        return ast.SSet(goal.name, expr), state, [node]


def register(db: HintDb) -> HintDb:
    db.register(CompilePointerIdentity(), priority=19)
    db.register(CompileSetScalar(), priority=90)
    return db


# -- Inverse patterns (repro.lift) -------------------------------------------
#
# Registered next to the forward lemmas so the pairing lives in one
# place per family; the lifter dispatches on these, and the auditor's
# liftability column counts them.

from repro.lift.patterns import InversePattern, register_inverse  # noqa: E402

register_inverse(
    InversePattern(
        name="lift_pointer_identity",
        lemma="compile_pointer_identity",
        family="bindings",
        heads=("SSet",),
        source_head="Var",
        priority=19,
        description="a local aliasing a pointer argument erases to the binder",
    )
)
register_inverse(
    InversePattern(
        name="lift_set_scalar",
        lemma="compile_set_scalar",
        family="bindings",
        heads=("SSet",),
        source_head="Let",
        priority=90,
        description="an SSet of a scalar expression inverts to a let/n binding",
    )
)
