"""Out-of-place operations: the ``copy`` annotation (§3.4.1).

"To indicate that a let-binding should result in a copy instead of a
mutation, a user might wrap the value being bound in a call to a copy
function of type forall alpha, alpha -> alpha."

``let/n d := copy(v) in k`` compiles, when ``d`` is an existing buffer
(a pointer argument), to a loop writing ``v``'s elements into ``d`` --
so ``copy(map f s)`` is an out-of-place map into a destination buffer,
the natural reading of the annotation in a language without a heap
allocator.  The side condition is that the destination's length equals
the source's (dischargeable from the spec's length facts).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.engine import resolve
from repro.core.goals import BindingGoal, CompilationStalled, StallReport
from repro.core.lemma import BindingLemma, HintDb
from repro.core.sepstate import PointerBinding, SymState
from repro.core.typecheck import infer_type
from repro.source import terms as t
from repro.source.types import NAT, TypeKind


def element_term(src: t.Term, index: t.Term) -> Optional[t.Term]:
    """A scalar term denoting ``src[index]``, pushed through maps.

    ``map f s`` has no memory clause of its own, but its i-th element is
    ``f(s[i])`` -- recursing makes ``copy(map f s)`` an out-of-place map.
    """
    if isinstance(src, t.ArrayMap):
        inner = element_term(src.arr, index)
        if inner is None:
            return None
        return t.subst(src.body, src.elem_name, inner)
    if isinstance(src, (t.Copy, t.Stack)):
        return element_term(src.value, index)
    # Plain arrays (clause-covered values) read directly.
    return t.ArrayGet(src, index)


class CompileCopyInto(BindingLemma):
    """``let/n d := copy(v) in k`` ~ an element-by-element copy loop."""

    name = "compile_copy_into"
    shapes = ("Copy",)
    index_heads = shapes

    def matches(self, goal: BindingGoal) -> bool:
        return isinstance(goal.value, t.Copy) and isinstance(
            goal.state.binding(goal.name), PointerBinding
        )

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        value = goal.value
        assert isinstance(value, t.Copy)
        state = goal.state
        binding = state.binding(goal.name)
        assert isinstance(binding, PointerBinding)
        clause = state.heap.get(binding.ptr)
        if clause is None:
            raise CompilationStalled(
                goal.describe(),
                advice=f"no clause owns {binding.ptr!r}",
                reason=StallReport.MISSING_CLAUSE,
                family="copying",
            )
        if clause.ty.kind is not TypeKind.ARRAY or clause.ty.elem is None:
            raise CompilationStalled(
                goal.describe(),
                advice="copy targets array buffers",
                reason=StallReport.UNSUPPORTED_SHAPE,
                family="copying",
            )
        dest0 = clause.value
        src = resolve(state, value.value)
        src_ty = infer_type(state, src)
        if src_ty != clause.ty:
            raise CompilationStalled(
                goal.describe(),
                advice=f"copy source has type {src_ty!r}, destination {clause.ty!r}",
                reason=StallReport.UNSUPPORTED_SHAPE,
                family="copying",
            )
        # The destination must be exactly as long as the source.
        engine.discharge(
            t.Prim("nat.eqb", (t.ArrayLen(dest0), t.ArrayLen(src))),
            state,
            "copy destination length matches source",
        )
        esz = engine.elem_byte_size(clause.ty)

        hi_term = t.ArrayLen(src)
        hi_expr, hi_node = engine.compile_expr_term(
            state, t.Prim("cast.of_nat", (hi_term,)), None
        )
        nodes = [hi_node]
        work = state.copy()
        idx = work.fresh_local("i")
        ghost = SymState.fresh_ghost("i")

        loop_state = work.copy()
        loop_state.set_ghost_type(ghost, NAT)
        loop_state.bind_scalar(idx, t.Var(ghost), NAT)
        loop_state.add_fact(t.Prim("nat.ltb", (t.Var(ghost), t.ArrayLen(src))))
        # Invariant: copied prefix ++ untouched destination suffix.
        loop_state.set_heap_value(
            binding.ptr,
            t.Append(t.FirstN(t.Var(ghost), src), t.SkipN(t.Var(ghost), dest0)),
        )

        elem = element_term(src, t.Var(ghost))
        if elem is None:
            raise CompilationStalled(
                goal.describe(),
                advice="copy source shape not supported (plug in a lemma)",
                reason=StallReport.UNSUPPORTED_SHAPE,
                family="copying",
            )
        idx_expr, idx_node = engine.compile_expr_term(
            loop_state, t.Prim("cast.of_nat", (t.Var(ghost),)), None
        )
        nodes.append(idx_node)
        from repro.stdlib.exprs import scaled_index
        from repro.stdlib.loops import _has_statement_shape

        addr = ast.EOp("add", ast.EVar(goal.name), scaled_index(engine, idx_expr, esz))
        if _has_statement_shape(elem):
            tmp = loop_state.fresh_local("_v")
            body_stmt, _after, body_nodes = engine.compile_value_into(
                loop_state, tmp, elem, goal.spec
            )
            nodes.extend(body_nodes)
            write = ast.seq_of(body_stmt, ast.SStore(esz, addr, ast.EVar(tmp)))
        else:
            elem_expr, elem_node = engine.compile_expr_term(
                loop_state, resolve(loop_state, elem), clause.ty.elem
            )
            nodes.append(elem_node)
            write = ast.SStore(esz, addr, elem_expr)
        loop = ast.seq_of(
            ast.SSet(idx, ast.ELit(0)),
            ast.SWhile(
                ast.EOp("ltu", ast.EVar(idx), hi_expr),
                ast.seq_of(
                    write,
                    ast.SSet(idx, ast.EOp("add", ast.EVar(idx), ast.ELit(1))),
                ),
            ),
        )
        post = work.copy()
        post.locals.pop(idx, None)
        post.set_heap_value(binding.ptr, src)
        return loop, post, nodes


def register(db: HintDb) -> HintDb:
    db.register(CompileCopyInto(), priority=21)
    return db
