"""Program-specific peephole lemmas: Table 1's ``iadd``.

These illustrate the paper's headline extensibility claim: a user can
capture a low-level implementation trick as a lemma and get "complete
control over the compiler's output".  ``iadd`` recognizes the pure
pattern ``put c (get c + v)`` and emits a single read-modify-write
statement instead of the generic get-then-put sequence -- the kind of
transformation a traditional compiler would need a new pass for.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bedrock2 import ast
from repro.core.certificate import CertNode
from repro.core.engine import resolve
from repro.core.goals import BindingGoal
from repro.core.lemma import BindingLemma, HintDb
from repro.core.sepstate import PointerBinding
from repro.source import terms as t


def _match_iadd(goal: BindingGoal):
    """Match ``let/n c := put c (get c + v)``; returns (cell_name, v) or None."""
    value = goal.value
    if not (isinstance(value, t.CellPut) and isinstance(value.cell, t.Var)):
        return None
    cell_name = value.cell.name
    if goal.name != cell_name:
        return None
    inner = value.value
    if not (isinstance(inner, t.Prim) and inner.op == "word.add"):
        return None
    lhs, rhs = inner.args
    if isinstance(lhs, t.CellGet) and lhs.cell == t.Var(cell_name):
        return cell_name, rhs
    if isinstance(rhs, t.CellGet) and rhs.cell == t.Var(cell_name):
        return cell_name, lhs
    return None


class CompileCellIAdd(BindingLemma):
    """``let/n c := put c (get c + v) in k`` ~ ``*c = *c + V`` in one statement."""

    name = "compile_cell_iadd"
    shapes = ("CellPut",)
    index_heads = shapes

    def matches(self, goal: BindingGoal) -> bool:
        if _match_iadd(goal) is None:
            return False
        cell_name, _ = _match_iadd(goal)
        return isinstance(goal.state.binding(cell_name), PointerBinding)

    def apply(self, goal: BindingGoal, engine) -> Tuple[ast.Stmt, object, List[CertNode]]:
        matched = _match_iadd(goal)
        assert matched is not None
        cell_name, addend = matched
        state = goal.state
        binding = state.binding(cell_name)
        assert isinstance(binding, PointerBinding)
        clause = state.heap[binding.ptr]
        resolved_addend = resolve(state, addend)
        addend_expr, node = engine.compile_expr_term(state, resolved_addend, None)
        size = engine.elem_byte_size(clause.ty)
        new_content = t.Prim("word.add", (clause.value, resolved_addend))
        new_state = state.copy()
        new_state.set_heap_value(binding.ptr, new_content)
        stmt = ast.SStore(
            size,
            ast.EVar(cell_name),
            ast.EOp("add", ast.ELoad(size, ast.EVar(cell_name)), addend_expr),
        )
        return stmt, new_state, [node]


def register(db: HintDb) -> HintDb:
    # Priority below the generic cell-put lemma's 20 so iadd wins.
    db.register(CompileCellIAdd(), priority=18)
    return db


def register_exprs(db: HintDb) -> HintDb:
    """No expression intrinsics in the standard set (hook for users)."""
    return db
