"""The relational-algebra query IR: schemas, row expressions, plans.

A *plan* is a tiny logical query tree -- ``Scan``/``Filter``/``Project``/
``EquiJoin``/``Aggregate`` -- over ListArray-backed tables.  A table is
columnar: each column is one contiguous array (``word`` or ``byte``
elements), all columns of a table equal in length.  That layout is what
lets :mod:`repro.query.reify` lower a plan onto the existing compilation
pipeline: a column is exactly an array parameter, a row index is exactly
a loop counter.

The IR is deliberately small and *checked*: :func:`check_plan` validates
schemas, column references, and combinator arity up front, so the
downstream reifier and evaluator can assume well-formed trees and a user
typo surfaces as a :class:`PlanError` naming the offending node instead
of a stall deep inside proof search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

COL_TYPES = ("word", "byte")

ARITH_OPS = ("add", "sub", "mul", "and", "or", "xor")
CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

AGG_KINDS = ("sum", "count", "any", "min", "max")


class PlanError(Exception):
    """A malformed query plan (bad schema, unknown column, wrong arity)."""


# -- Schemas -------------------------------------------------------------------


@dataclass(frozen=True)
class Col:
    """One typed column: ``word`` (64-bit) or ``byte`` (0..255)."""

    name: str
    ty: str = "word"

    def __post_init__(self) -> None:
        if self.ty not in COL_TYPES:
            raise PlanError(f"column {self.name!r}: unknown type {self.ty!r}")


@dataclass(frozen=True)
class Schema:
    """An ordered tuple of columns with distinct names."""

    cols: Tuple[Col, ...]

    def __post_init__(self) -> None:
        names = [col.name for col in self.cols]
        if len(set(names)) != len(names):
            raise PlanError(f"schema has duplicate column names: {names}")

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(col.name for col in self.cols)

    def col(self, name: str) -> Col:
        for col in self.cols:
            if col.name == name:
                return col
        raise PlanError(f"unknown column {name!r} (have {list(self.names)})")

    def __contains__(self, name: str) -> bool:
        return any(col.name == name for col in self.cols)


def schema(*cols) -> Schema:
    """``schema(("k", "byte"), "v")`` -- strings default to ``word``."""
    built = []
    for spec in cols:
        if isinstance(spec, Col):
            built.append(spec)
        elif isinstance(spec, str):
            built.append(Col(spec))
        else:
            name, ty = spec
            built.append(Col(name, ty))
    return Schema(tuple(built))


# -- Row expressions -----------------------------------------------------------


class RowExpr:
    """A per-row scalar expression over the current schema's columns."""


@dataclass(frozen=True)
class ColRef(RowExpr):
    """The current row's value in one column (bytes widen to words)."""

    name: str


@dataclass(frozen=True)
class IntLit(RowExpr):
    """A word literal."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 64):
            raise PlanError(f"literal {self.value} does not fit in a word")


@dataclass(frozen=True)
class BinOp(RowExpr):
    """Word arithmetic/bitwise op: one of ``ARITH_OPS``."""

    op: str
    lhs: RowExpr
    rhs: RowExpr

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS:
            raise PlanError(f"unknown arithmetic op {self.op!r}")


@dataclass(frozen=True)
class Cmp(RowExpr):
    """Unsigned word comparison: one of ``CMP_OPS``; boolean-valued."""

    op: str
    lhs: RowExpr
    rhs: RowExpr

    def __post_init__(self) -> None:
        if self.op not in CMP_OPS:
            raise PlanError(f"unknown comparison op {self.op!r}")


def expr_cols(expr: RowExpr) -> Set[str]:
    """Column names an expression reads."""
    if isinstance(expr, ColRef):
        return {expr.name}
    if isinstance(expr, IntLit):
        return set()
    if isinstance(expr, (BinOp, Cmp)):
        return expr_cols(expr.lhs) | expr_cols(expr.rhs)
    raise PlanError(f"not a row expression: {expr!r}")


def check_expr(expr: RowExpr, sch: Schema, want: str = "word") -> None:
    """Type-check a row expression against a schema.

    ``want`` is ``"word"`` (value position) or ``"bool"`` (predicate
    position); comparisons are boolean, everything else is word-valued.
    """
    if isinstance(expr, Cmp):
        if want != "bool":
            raise PlanError(f"comparison {expr.op!r} used in value position")
        check_expr(expr.lhs, sch, "word")
        check_expr(expr.rhs, sch, "word")
        return
    if want == "bool":
        raise PlanError(f"predicate position needs a comparison, got {expr!r}")
    if isinstance(expr, ColRef):
        sch.col(expr.name)  # raises PlanError if unknown
        return
    if isinstance(expr, IntLit):
        return
    if isinstance(expr, BinOp):
        check_expr(expr.lhs, sch, "word")
        check_expr(expr.rhs, sch, "word")
        return
    raise PlanError(f"not a row expression: {expr!r}")


def render_expr(expr: RowExpr) -> str:
    if isinstance(expr, ColRef):
        return expr.name
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, (BinOp, Cmp)):
        return f"({render_expr(expr.lhs)} {expr.op} {render_expr(expr.rhs)})"
    raise PlanError(f"not a row expression: {expr!r}")


# -- Plans ---------------------------------------------------------------------


class Plan:
    """A logical query-plan node."""


@dataclass(frozen=True)
class Scan(Plan):
    """All rows of one columnar table."""

    table: str
    schema: Schema


@dataclass(frozen=True)
class Filter(Plan):
    """Rows of ``source`` satisfying ``pred`` (a boolean row expression)."""

    pred: RowExpr
    source: Plan


@dataclass(frozen=True)
class Project(Plan):
    """One output column per ``(name, expr)`` pair, row for row."""

    cols: Tuple[Tuple[str, RowExpr], ...]
    source: Plan


@dataclass(frozen=True)
class EquiJoin(Plan):
    """``left >< right`` on ``left_col == right_col`` (nested-loop).

    The joined schema is the concatenation of both inputs' columns, so
    the two sides' column names must be disjoint.
    """

    left: Plan
    right: Plan
    left_col: str
    right_col: str


@dataclass(frozen=True)
class Aggregate(Plan):
    """Collapse rows to a scalar (``sum``/``count``/``any``/``min``/
    ``max``) or, with ``group_by``, to one counter per group key
    (``count`` only).

    ``expr`` is the summed value for ``sum``, the minimized/maximized
    value for ``min``/``max``, and the tested predicate for ``any``;
    ``count`` takes no expression.  Over zero rows ``min`` is the word
    maximum (2^64 - 1) and ``max`` is 0 -- the fold identities.  A
    ``group_by`` column's value indexes the output histogram directly
    (out-of-range keys fall outside every group).
    """

    kind: str
    source: Plan
    expr: Optional[RowExpr] = None
    group_by: Optional[str] = None


# -- Checking ------------------------------------------------------------------


def output_schema(plan: Plan) -> Schema:
    """The row schema a relational (non-aggregate) plan produces."""
    if isinstance(plan, Scan):
        return plan.schema
    if isinstance(plan, Filter):
        sch = output_schema(plan.source)
        check_expr(plan.pred, sch, "bool")
        return sch
    if isinstance(plan, Project):
        sch = output_schema(plan.source)
        if not plan.cols:
            raise PlanError("projection with no output columns")
        names = [name for name, _expr in plan.cols]
        if len(set(names)) != len(names):
            raise PlanError(f"projection has duplicate output names: {names}")
        for _name, expr in plan.cols:
            check_expr(expr, sch, "word")
        return Schema(tuple(Col(name) for name in names))
    if isinstance(plan, EquiJoin):
        left = output_schema(plan.left)
        right = output_schema(plan.right)
        overlap = set(left.names) & set(right.names)
        if overlap:
            raise PlanError(f"join sides share column names: {sorted(overlap)}")
        left.col(plan.left_col)
        right.col(plan.right_col)
        return Schema(left.cols + right.cols)
    if isinstance(plan, Aggregate):
        raise PlanError("aggregate produces a scalar, not rows")
    raise PlanError(f"not a plan node: {plan!r}")


def check_plan(plan: Plan) -> str:
    """Validate a whole plan; returns its result kind.

    ``"table"`` (rows), ``"scalar"`` (one value), or ``"groups"``
    (one counter per group key).  Raises :class:`PlanError` otherwise.
    """
    if isinstance(plan, Aggregate):
        if plan.kind not in AGG_KINDS:
            raise PlanError(f"unknown aggregate kind {plan.kind!r}")
        sch = output_schema(plan.source)
        if plan.kind in ("sum", "min", "max"):
            if plan.expr is None:
                raise PlanError(f"{plan.kind} aggregate needs an expression")
            check_expr(plan.expr, sch, "word")
        elif plan.kind == "any":
            if plan.expr is None:
                raise PlanError("any aggregate needs a predicate")
            check_expr(plan.expr, sch, "bool")
        elif plan.expr is not None:
            raise PlanError("count aggregate takes no expression")
        if plan.group_by is not None:
            if plan.kind != "count":
                raise PlanError("group_by is only supported with count")
            sch.col(plan.group_by)
            return "groups"
        return "scalar"
    output_schema(plan)
    return "table"


# -- Explain -------------------------------------------------------------------


def explain(plan: Plan, indent: int = 0) -> str:
    """Human-readable plan tree (the ``repro query explain`` payload)."""
    pad = "  " * indent
    if isinstance(plan, Scan):
        cols = ", ".join(f"{c.name}:{c.ty}" for c in plan.schema.cols)
        return f"{pad}Scan {plan.table} [{cols}]"
    if isinstance(plan, Filter):
        return (
            f"{pad}Filter {render_expr(plan.pred)}\n"
            + explain(plan.source, indent + 1)
        )
    if isinstance(plan, Project):
        cols = ", ".join(f"{n} := {render_expr(e)}" for n, e in plan.cols)
        return f"{pad}Project [{cols}]\n" + explain(plan.source, indent + 1)
    if isinstance(plan, EquiJoin):
        return (
            f"{pad}EquiJoin on {plan.left_col} == {plan.right_col}\n"
            + explain(plan.left, indent + 1)
            + "\n"
            + explain(plan.right, indent + 1)
        )
    if isinstance(plan, Aggregate):
        detail = plan.kind
        if plan.expr is not None:
            detail += f" {render_expr(plan.expr)}"
        if plan.group_by is not None:
            detail += f" group by {plan.group_by}"
        return f"{pad}Aggregate {detail}\n" + explain(plan.source, indent + 1)
    raise PlanError(f"not a plan node: {plan!r}")
