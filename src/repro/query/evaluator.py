"""The reference evaluator: a plan's meaning over in-memory tables.

This is the *specification* side of the query frontend's differential
story: plans run here over plain Python lists, with 64-bit modular
arithmetic matching the target's word semantics, and the compiled
Bedrock2 code must agree input-for-input.  Tables are columnar --
``{"t": {"k": [...], "v": [...]}}`` -- with all columns of one table
equal in length (checked).
"""

from __future__ import annotations

from typing import Dict, List

from repro.query.ir import (
    Aggregate,
    BinOp,
    Cmp,
    ColRef,
    EquiJoin,
    Filter,
    IntLit,
    Plan,
    PlanError,
    Project,
    RowExpr,
    Scan,
)

MASK = (1 << 64) - 1

Tables = Dict[str, Dict[str, List[int]]]
Row = Dict[str, int]


def eval_expr(expr: RowExpr, row: Row) -> int:
    """One row expression; comparisons yield 0/1."""
    if isinstance(expr, ColRef):
        return row[expr.name] & MASK
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, BinOp):
        a = eval_expr(expr.lhs, row)
        b = eval_expr(expr.rhs, row)
        if expr.op == "add":
            return (a + b) & MASK
        if expr.op == "sub":
            return (a - b) & MASK
        if expr.op == "mul":
            return (a * b) & MASK
        if expr.op == "and":
            return a & b
        if expr.op == "or":
            return a | b
        if expr.op == "xor":
            return a ^ b
    if isinstance(expr, Cmp):
        a = eval_expr(expr.lhs, row)
        b = eval_expr(expr.rhs, row)
        return int(
            {
                "eq": a == b,
                "ne": a != b,
                "lt": a < b,
                "le": a <= b,
                "gt": a > b,
                "ge": a >= b,
            }[expr.op]
        )
    raise PlanError(f"not a row expression: {expr!r}")


def scan_rows(scan: Scan, tables: Tables) -> List[Row]:
    try:
        table = tables[scan.table]
    except KeyError:
        raise PlanError(f"no table named {scan.table!r}") from None
    lengths = set()
    for col in scan.schema.cols:
        try:
            lengths.add(len(table[col.name]))
        except KeyError:
            raise PlanError(
                f"table {scan.table!r} has no column {col.name!r}"
            ) from None
    if len(lengths) > 1:
        raise PlanError(
            f"table {scan.table!r} is ragged: column lengths {sorted(lengths)}"
        )
    count = lengths.pop() if lengths else 0
    return [
        {col.name: table[col.name][i] & MASK for col in scan.schema.cols}
        for i in range(count)
    ]


def eval_rows(plan: Plan, tables: Tables) -> List[Row]:
    """Rows of a relational (non-aggregate) plan."""
    if isinstance(plan, Scan):
        return scan_rows(plan, tables)
    if isinstance(plan, Filter):
        return [
            row
            for row in eval_rows(plan.source, tables)
            if eval_expr(plan.pred, row)
        ]
    if isinstance(plan, Project):
        return [
            {name: eval_expr(expr, row) for name, expr in plan.cols}
            for row in eval_rows(plan.source, tables)
        ]
    if isinstance(plan, EquiJoin):
        left = eval_rows(plan.left, tables)
        right = eval_rows(plan.right, tables)
        return [
            {**lrow, **rrow}
            for lrow in left
            for rrow in right
            if lrow[plan.left_col] == rrow[plan.right_col]
        ]
    if isinstance(plan, Aggregate):
        raise PlanError("aggregate produces a scalar, not rows; use eval_plan")
    raise PlanError(f"not a plan node: {plan!r}")


def eval_plan(plan: Plan, tables: Tables, groups: int = 0):
    """A whole plan's value.

    Returns rows (list of dicts) for relational plans, an int for scalar
    aggregates, or -- for ``group_by`` counts -- a list of ``groups``
    counters indexed by the group key (out-of-range keys are dropped,
    matching the compiled histogram's bounds).
    """
    if not isinstance(plan, Aggregate):
        return eval_rows(plan, tables)
    rows = eval_rows(plan.source, tables)
    if plan.group_by is not None:
        counts = [0] * groups
        for row in rows:
            key = row[plan.group_by]
            if key < groups:
                counts[key] = (counts[key] + 1) & MASK
        return counts
    if plan.kind == "sum":
        total = 0
        for row in rows:
            total = (total + eval_expr(plan.expr, row)) & MASK
        return total
    if plan.kind == "count":
        return len(rows) & MASK
    if plan.kind == "any":
        return int(any(eval_expr(plan.expr, row) for row in rows))
    if plan.kind == "min":
        return min((eval_expr(plan.expr, row) for row in rows), default=MASK)
    if plan.kind == "max":
        return max((eval_expr(plan.expr, row) for row in rows), default=0)
    raise PlanError(f"unknown aggregate kind {plan.kind!r}")
