"""The query program registry: named plans wired into every harness.

Each :class:`QueryProgram` bundles a plan, a seeded random-table
generator, and the plumbing the shared harnesses expect: it duck-types
the benchmark registry's ``build_model``/``build_spec``/
``validation_input_gen`` trio, so ``compile_program_cached``, the
optimizer's per-pass differential checks, and ``validate`` all work on
query programs unchanged.  Query programs live in their *own* registry
-- the Table 2 suite (``repro.programs``) keeps its fixed membership,
which CI asserts on -- and surface through ``python -m repro query``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.spec import CompiledFunction, FnSpec, Model
from repro.query import evaluator as qe
from repro.query import ir
from repro.query.reify import ReifiedQuery, reify

# A generator draws one random database: the tables dict plus -- for
# array-producing plans -- the output array length.
TableGen = Callable[[random.Random], Tuple[qe.Tables, int]]


@dataclass
class QueryProgram:
    """One registered query: a plan plus its test-data distribution."""

    name: str
    description: str
    plan: ir.Plan
    gen_tables: TableGen

    _reified: Optional[ReifiedQuery] = field(default=None, repr=False)
    _compiled: Optional[CompiledFunction] = field(default=None, repr=False)
    _optimized: Dict[int, CompiledFunction] = field(
        default_factory=dict, repr=False
    )

    def reified(self) -> ReifiedQuery:
        if self._reified is None:
            self._reified = reify(self.plan, self.name)
        return self._reified

    def build_model(self) -> Model:
        return self.reified().model

    def build_spec(self) -> FnSpec:
        return self.reified().spec

    def explain(self) -> str:
        lines = [ir.explain(self.plan), f"-- lowering: {self.reified().via}"]
        return "\n".join(lines)

    def compile(self, fresh: bool = False, opt_level: int = 0) -> CompiledFunction:
        """Derive the Bedrock2 implementation (cached per level)."""
        from repro.obs.trace import current_tracer

        if self._compiled is None or fresh or current_tracer().enabled:
            from repro.stdlib import default_engine

            engine = default_engine()
            self._compiled = engine.compile_function(
                self.build_model(), self.build_spec()
            )
            self._optimized.clear()
        if opt_level <= 0:
            return self._compiled
        if opt_level not in self._optimized:
            self._optimized[opt_level] = self._compiled.optimize(
                opt_level, input_gen=self.validation_input_gen()
            )
        return self._optimized[opt_level]

    def inputs_from_tables(self, tables: qe.Tables, out_len: int) -> Dict[str, list]:
        """Flatten a tables dict into the compiled function's parameters."""
        reified = self.reified()
        params: Dict[str, list] = {}
        for table, cols in reified.table_cols:
            for col in cols:
                params[col.name] = list(tables[table][col.name])
        if reified.out_param is not None:
            params[reified.out_param] = [0] * out_len
        return params

    def validation_input_gen(self):
        def gen(rng: random.Random) -> Dict[str, list]:
            tables, out_len = self.gen_tables(rng)
            return self.inputs_from_tables(tables, out_len)

        return gen

    def reference(self, tables: qe.Tables, out_len: int = 0):
        """The reference evaluator's answer on one database."""
        result = qe.eval_plan(self.plan, tables, groups=out_len)
        if isinstance(self.plan, ir.Project):
            (name, _expr), = self.plan.cols
            return [row[name] for row in result]
        return result


QUERY_PROGRAMS: Dict[str, QueryProgram] = {}


def register_query_program(program: QueryProgram) -> QueryProgram:
    if program.name in QUERY_PROGRAMS:
        raise ValueError(f"duplicate query program {program.name!r}")
    QUERY_PROGRAMS[program.name] = program
    return program


def get_query_program(name: str) -> QueryProgram:
    return QUERY_PROGRAMS[name]


def all_query_programs() -> List[QueryProgram]:
    return [QUERY_PROGRAMS[name] for name in sorted(QUERY_PROGRAMS)]


# -- The standard corpus -------------------------------------------------------
#
# Together the eight programs cover every lowering shape ``reify`` knows:
# fold and fold_break reuse, QAggregate (additive and extremal),
# QJoinAgg, QProjectInto, and the nested grouped count.


def _words(rng: random.Random, n: int) -> List[int]:
    return [rng.getrandbits(64) for _ in range(n)]


def _bytes_(rng: random.Random, n: int) -> List[int]:
    return [rng.randrange(256) for _ in range(n)]


def _keys(rng: random.Random, n: int, span: int) -> List[int]:
    return [rng.randrange(span) for _ in range(n)]


_T_KV = ir.schema(("k", "byte"), "v")

register_query_program(
    QueryProgram(
        name="q_filter_sum",
        description="sum v over rows where k < 100 (byte filter column)",
        plan=ir.Aggregate(
            "sum",
            ir.Filter(
                ir.Cmp("lt", ir.ColRef("k"), ir.IntLit(100)),
                ir.Scan("t", _T_KV),
            ),
            expr=ir.ColRef("v"),
        ),
        gen_tables=lambda rng: (
            {
                "t": (
                    lambda n: {"k": _bytes_(rng, n), "v": _words(rng, n)}
                )(rng.randrange(12))
            },
            0,
        ),
    )
)

register_query_program(
    QueryProgram(
        name="q_total_sum",
        description="unfiltered single-column sum (reuses ListArray.fold)",
        plan=ir.Aggregate("sum", ir.Scan("t", ir.schema("v")), expr=ir.ColRef("v")),
        gen_tables=lambda rng: (
            {"t": {"v": _words(rng, rng.randrange(12))}},
            0,
        ),
    )
)

register_query_program(
    QueryProgram(
        name="q_any_match",
        description="does any k equal 7? (reuses ListArray.fold_break)",
        plan=ir.Aggregate(
            "any",
            ir.Scan("t", ir.schema("k")),
            expr=ir.Cmp("eq", ir.ColRef("k"), ir.IntLit(7)),
        ),
        gen_tables=lambda rng: (
            {"t": {"k": _keys(rng, rng.randrange(12), 10)}},
            0,
        ),
    )
)

register_query_program(
    QueryProgram(
        name="q_project_copy",
        description="out := a + b, row for row (store loop)",
        plan=ir.Project(
            (("c", ir.BinOp("add", ir.ColRef("a"), ir.ColRef("b"))),),
            ir.Scan("t", ir.schema("a", "b")),
        ),
        gen_tables=lambda rng: (
            lambda n: (
                {"t": {"a": _words(rng, n), "b": _words(rng, n)}},
                n,
            )
        )(rng.randrange(12)),
    )
)

register_query_program(
    QueryProgram(
        name="q_equi_join",
        description="sum (v + w) over l join r on k == j (nested loops)",
        plan=ir.Aggregate(
            "sum",
            ir.EquiJoin(
                ir.Scan("l", ir.schema("k", "v")),
                ir.Scan("r", ir.schema("j", "w")),
                "k",
                "j",
            ),
            expr=ir.BinOp("add", ir.ColRef("v"), ir.ColRef("w")),
        ),
        gen_tables=lambda rng: (
            lambda n, m: (
                {
                    "l": {"k": _keys(rng, n, 5), "v": _words(rng, n)},
                    "r": {"j": _keys(rng, m, 5), "w": _words(rng, m)},
                },
                0,
            )
        )(rng.randrange(8), rng.randrange(8)),
    )
)

register_query_program(
    QueryProgram(
        name="q_max_value",
        description="unfiltered single-column max (reuses ListArray.fold)",
        plan=ir.Aggregate("max", ir.Scan("t", ir.schema("v")), expr=ir.ColRef("v")),
        gen_tables=lambda rng: (
            {"t": {"v": _words(rng, rng.randrange(12))}},
            0,
        ),
    )
)

register_query_program(
    QueryProgram(
        name="q_min_filtered",
        description="min (v + 1) over rows where k < 50 (extremal QAggregate)",
        plan=ir.Aggregate(
            "min",
            ir.Filter(
                ir.Cmp("lt", ir.ColRef("k"), ir.IntLit(50)),
                ir.Scan("t", _T_KV),
            ),
            expr=ir.BinOp("add", ir.ColRef("v"), ir.IntLit(1)),
        ),
        gen_tables=lambda rng: (
            {
                "t": (
                    lambda n: {"k": _bytes_(rng, n), "v": _words(rng, n)}
                )(rng.randrange(12))
            },
            0,
        ),
    )
)

register_query_program(
    QueryProgram(
        name="q_group_count",
        description="histogram: count rows per key (byte group column)",
        plan=ir.Aggregate(
            "count", ir.Scan("t", ir.schema(("key", "byte"))), group_by="key"
        ),
        gen_tables=lambda rng: (
            lambda n, g: ({"t": {"key": _keys(rng, n, max(1, g + 2))}}, g)
        )(rng.randrange(12), rng.randrange(1, 7)),
    )
)
