"""Query-combinator term heads: the relational algebra's footprint in
the source IR.

The paper's extension story (Table 1, §4.1) is that a new domain enters
the compiler as *new term heads plus new lemmas*, never as edits to the
engine.  These three nodes are exactly the residue left after
:mod:`repro.query.reify` lowers a relational-algebra plan: a bounded
aggregation loop, an index-driven projection into an existing array, and
a nested-loop join aggregation.  Everything simpler (unfiltered
single-column folds, existence checks) reuses ``ListArray``'s
``fold``/``fold_break`` and introduces no new heads at all.

Each class implements the duck-typed extension hooks the core consults
on unknown heads -- ``free_vars_node``/``subst_node``/``pretty_node``
(:mod:`repro.source.terms`), ``eval_node``
(:mod:`repro.source.evaluator`), ``resolve_node``
(:mod:`repro.core.engine`), ``infer_type_node``
(:mod:`repro.core.typecheck`), and the solver's length hooks -- so
``repro.source``/``repro.core`` never import this package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.source import terms as t
from repro.source.types import NAT, SourceType


@dataclass(frozen=True)
class QAggregate(t.Term):
    """``aggregate over idx in [0, count) with acc := init { body }``.

    The accumulator form of ``Filter . Aggregate``: ``body`` (free in
    ``idx_name`` and ``acc_name``) computes the next accumulator, and a
    filtered row simply returns the accumulator unchanged.  Semantically
    a :class:`~repro.source.terms.RangedFor` from 0; the compilation
    lemma discharges it by exactly that reduction.
    """

    idx_name: str
    acc_name: str
    count: t.Term
    init: t.Term
    body: t.Term

    statement_shape = True  # compiles to a loop, never to one expression

    def children(self) -> Tuple[t.Term, ...]:
        return (self.count, self.init, self.body)

    def binders(self) -> Tuple[str, ...]:
        return (self.idx_name, self.acc_name)

    def as_ranged_for(self) -> t.RangedFor:
        """The equivalent core term the lemma family reduces to."""
        return t.RangedFor(
            t.Lit(0, NAT), self.count, self.idx_name, self.acc_name,
            self.body, self.init,
        )

    # -- core extension hooks -------------------------------------------------

    def free_vars_node(self, free_vars) -> set:
        bound = {self.idx_name, self.acc_name}
        return (
            free_vars(self.count)
            | free_vars(self.init)
            | (free_vars(self.body) - bound)
        )

    def subst_node(self, name: str, replacement: t.Term, subst) -> "QAggregate":
        shadowed = name in (self.idx_name, self.acc_name)
        return QAggregate(
            self.idx_name,
            self.acc_name,
            subst(self.count, name, replacement),
            subst(self.init, name, replacement),
            self.body if shadowed else subst(self.body, name, replacement),
        )

    def resolve_node(self, state, shadowed: frozenset, resolve) -> "QAggregate":
        inner = shadowed | {self.idx_name, self.acc_name}
        return QAggregate(
            self.idx_name,
            self.acc_name,
            resolve(state, self.count, shadowed),
            resolve(state, self.init, shadowed),
            resolve(state, self.body, inner),
        )

    def eval_node(self, evaluator, env: dict, fx) -> object:
        count = int(evaluator._eval(self.count, env, fx))
        acc = evaluator._eval(self.init, env, fx)
        for index in range(count):
            inner = dict(env)
            inner[self.idx_name] = index
            inner[self.acc_name] = acc
            acc = evaluator._eval(self.body, inner, fx)
        return acc

    def infer_type_node(self, state, infer_type) -> SourceType:
        return infer_type(state, self.init)

    def pretty_node(self, pretty) -> str:
        return (
            f"query.aggregate {self.idx_name} < {pretty(self.count)} "
            f"(acc {self.acc_name} := {pretty(self.init)}) "
            f"{{ {pretty(self.body)} }}"
        )


@dataclass(frozen=True)
class QProjectInto(t.Term):
    """``[ body idx | idx < length out ]`` -- projection into ``out``.

    Rebinding ``out``'s own name (``let/n out := QProjectInto(idx, out,
    body) in k``) licenses in-place mutation, exactly like the paper's
    ``ListArray.map`` walkthrough -- but the body is *index*-driven, so
    it can read several source columns at once.  The loop invariant is
    ``QProjectInto(idx, firstn i out, body) ++ skipn i out``.
    """

    idx_name: str
    out: t.Term
    body: t.Term

    statement_shape = True

    def children(self) -> Tuple[t.Term, ...]:
        return (self.out, self.body)

    def binders(self) -> Tuple[str, ...]:
        return (self.idx_name,)

    # -- core extension hooks -------------------------------------------------

    def free_vars_node(self, free_vars) -> set:
        return free_vars(self.out) | (free_vars(self.body) - {self.idx_name})

    def subst_node(self, name: str, replacement: t.Term, subst) -> "QProjectInto":
        return QProjectInto(
            self.idx_name,
            subst(self.out, name, replacement),
            self.body if name == self.idx_name
            else subst(self.body, name, replacement),
        )

    def resolve_node(self, state, shadowed: frozenset, resolve) -> "QProjectInto":
        inner = shadowed | {self.idx_name}
        return QProjectInto(
            self.idx_name,
            resolve(state, self.out, shadowed),
            resolve(state, self.body, inner),
        )

    def eval_node(self, evaluator, env: dict, fx) -> list:
        out = evaluator._array(self.out, env, fx)
        result = []
        for index in range(len(out)):
            inner = dict(env)
            inner[self.idx_name] = index
            result.append(evaluator._eval(self.body, inner, fx))
        return result

    def infer_type_node(self, state, infer_type) -> SourceType:
        return infer_type(state, self.out)

    def pretty_node(self, pretty) -> str:
        return (
            f"query.project (fun {self.idx_name} => {pretty(self.body)}) "
            f"into {pretty(self.out)}"
        )

    # -- solver hooks (structural length facts) -------------------------------

    def normalize_len_node(self, normalize_len) -> t.Term:
        # One output element per element of the target array.
        return normalize_len(self.out)

    def invariant_prefix_node(self) -> t.Term:
        # For the ``QProjectInto(_, firstn i l, _) ++ skipn i l`` loop
        # invariant: the prefix whose length this node preserves.
        return self.out


@dataclass(frozen=True)
class QJoinAgg(t.Term):
    """Nested-loop equi-join folded straight into an accumulator.

    ``body`` (free in ``i_name``, ``j_name``, ``acc_name``) sees one row
    pair per iteration of the ``left_count`` x ``right_count`` product;
    the join predicate lives inside it as an ``if``.  Semantically two
    nested :class:`~repro.source.terms.RangedFor` loops sharing one
    accumulator, which is precisely the reduction the lemma performs.
    """

    i_name: str
    j_name: str
    acc_name: str
    left_count: t.Term
    right_count: t.Term
    init: t.Term
    body: t.Term

    statement_shape = True

    def children(self) -> Tuple[t.Term, ...]:
        return (self.left_count, self.right_count, self.init, self.body)

    def binders(self) -> Tuple[str, ...]:
        return (self.i_name, self.j_name, self.acc_name)

    def as_nested_ranged_for(self) -> t.RangedFor:
        """Outer loop over the left table, inner over the right.

        Both loops bind the *same* accumulator name: the inner loop's
        init reads the outer accumulator, and the outer body's value is
        the inner loop itself.
        """
        inner = t.RangedFor(
            t.Lit(0, NAT), self.right_count, self.j_name, self.acc_name,
            self.body, t.Var(self.acc_name),
        )
        return t.RangedFor(
            t.Lit(0, NAT), self.left_count, self.i_name, self.acc_name,
            inner, self.init,
        )

    # -- core extension hooks -------------------------------------------------

    def free_vars_node(self, free_vars) -> set:
        bound = {self.i_name, self.j_name, self.acc_name}
        return (
            free_vars(self.left_count)
            | free_vars(self.right_count)
            | free_vars(self.init)
            | (free_vars(self.body) - bound)
        )

    def subst_node(self, name: str, replacement: t.Term, subst) -> "QJoinAgg":
        shadowed = name in (self.i_name, self.j_name, self.acc_name)
        return QJoinAgg(
            self.i_name,
            self.j_name,
            self.acc_name,
            subst(self.left_count, name, replacement),
            subst(self.right_count, name, replacement),
            subst(self.init, name, replacement),
            self.body if shadowed else subst(self.body, name, replacement),
        )

    def resolve_node(self, state, shadowed: frozenset, resolve) -> "QJoinAgg":
        inner = shadowed | {self.i_name, self.j_name, self.acc_name}
        return QJoinAgg(
            self.i_name,
            self.j_name,
            self.acc_name,
            resolve(state, self.left_count, shadowed),
            resolve(state, self.right_count, shadowed),
            resolve(state, self.init, shadowed),
            resolve(state, self.body, inner),
        )

    def eval_node(self, evaluator, env: dict, fx) -> object:
        left = int(evaluator._eval(self.left_count, env, fx))
        right = int(evaluator._eval(self.right_count, env, fx))
        acc = evaluator._eval(self.init, env, fx)
        for i in range(left):
            for j in range(right):
                inner = dict(env)
                inner[self.i_name] = i
                inner[self.j_name] = j
                inner[self.acc_name] = acc
                acc = evaluator._eval(self.body, inner, fx)
        return acc

    def infer_type_node(self, state, infer_type) -> SourceType:
        return infer_type(state, self.init)

    def pretty_node(self, pretty) -> str:
        return (
            f"query.join_agg {self.i_name} < {pretty(self.left_count)}, "
            f"{self.j_name} < {pretty(self.right_count)} "
            f"(acc {self.acc_name} := {pretty(self.init)}) "
            f"{{ {pretty(self.body)} }}"
        )


QUERY_TERM_HEADS = ("QAggregate", "QJoinAgg", "QProjectInto")
