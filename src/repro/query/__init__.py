"""``repro.query``: a relational-algebra frontend over ListArray tables.

The paper's extensibility claim (Table 1, §4.1) says a new source domain
costs new term heads plus new lemmas -- never engine edits.  This
package is that claim at subsystem scale: a small query IR
(:mod:`repro.query.ir`), its reference evaluator
(:mod:`repro.query.evaluator`), a reifier lowering plans into the
``Term`` language (:mod:`repro.query.reify`), three new term heads
(:mod:`repro.query.terms`) compiled by the ``repro.stdlib.queries``
lemma family, and a registry of end-to-end query programs
(:mod:`repro.query.programs`) exercised by ``python -m repro query``.
"""

from repro.query.evaluator import eval_plan, eval_rows
from repro.query.ir import (
    Aggregate,
    BinOp,
    Cmp,
    Col,
    ColRef,
    EquiJoin,
    Filter,
    IntLit,
    Plan,
    PlanError,
    Project,
    Scan,
    Schema,
    check_plan,
    explain,
    schema,
)
from repro.query.reify import ReifiedQuery, reify
from repro.query.terms import QUERY_TERM_HEADS, QAggregate, QJoinAgg, QProjectInto

__all__ = [
    "Aggregate",
    "BinOp",
    "Cmp",
    "Col",
    "ColRef",
    "EquiJoin",
    "Filter",
    "IntLit",
    "Plan",
    "PlanError",
    "Project",
    "QUERY_TERM_HEADS",
    "QAggregate",
    "QJoinAgg",
    "QProjectInto",
    "ReifiedQuery",
    "Scan",
    "Schema",
    "check_plan",
    "eval_plan",
    "eval_rows",
    "explain",
    "reify",
    "schema",
]
