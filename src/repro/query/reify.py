"""Reification: lowering a checked query plan into the ``Term`` language.

This is the bridge between the relational-algebra frontend and the
relational *compiler*: a plan becomes a functional model (``Model``)
plus the ABI contract (``FnSpec``) that seeds proof search.  The
lowering is deliberately shape-directed and reuses existing source
constructs wherever they fit -- the paper's extension economics:

- unfiltered single-column ``sum``/``min``/``max`` -> ``ListArray.fold``
  (:class:`~repro.source.terms.ArrayFold`, zero new heads);
- single-column ``any``                 -> ``ListArray.fold_break``
  (early exit, zero new heads);
- filtered/compound aggregation         -> :class:`~repro.query.terms.QAggregate`;
- equi-join aggregation                 -> :class:`~repro.query.terms.QJoinAgg`;
- single-column projection              -> :class:`~repro.query.terms.QProjectInto`;
- grouped count                         -> ``QProjectInto`` over a
  nested ``QAggregate`` (one histogram slot per group key).

Columns become array parameters (bytes widen through ``cast.b2w``); one
length argument anchors each table and ``nat.eqb`` facts equate its
other columns' lengths, which is exactly what the bounds solver needs to
discharge every in-bounds side condition the loops raise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.spec import FnSpec, Model, array_out, len_arg, ptr_arg, scalar_out
from repro.query import terms as qt
from repro.query.ir import (
    Aggregate,
    BinOp,
    Cmp,
    Col,
    ColRef,
    EquiJoin,
    Filter,
    IntLit,
    Plan,
    PlanError,
    Project,
    RowExpr,
    Scan,
    check_plan,
    expr_cols,
)
from repro.source import terms as t
from repro.source.types import ARRAY_BYTE, ARRAY_WORD, BYTE, WORD, SourceType

# Loop binders introduced by the lowering; column names may not collide
# with these or with the generated parameter names.
_IDX, _JDX, _GDX, _ACC, _ELEM, _RES = "_qi", "_qj", "_qg", "_qacc", "_qe", "_qr"
_RESERVED = {"out", "hist", "n", "n_left", "n_right", "groups"}

# Fold identities for the extremal aggregates: ``min`` over zero rows is
# the word maximum, ``max`` is zero (both are absorbed by the first row).
_MIN_IDENTITY = (1 << 64) - 1
_MAX_IDENTITY = 0


def _extremal_step(kind: str, value: t.Term) -> t.Term:
    """``if value beats acc then value else acc`` (unsigned)."""
    if kind == "min":
        better = t.Prim("word.ltu", (value, t.Var(_ACC)))
    else:
        better = t.Prim("word.ltu", (t.Var(_ACC), value))
    return t.If(better, value, t.Var(_ACC))


def _agg_init(kind: str) -> t.Term:
    if kind == "min":
        return t.Lit(_MIN_IDENTITY, WORD)
    return t.Lit(0, WORD)  # sum, count, any, max


@dataclass(frozen=True)
class ReifiedQuery:
    """A lowered plan: the model/spec pair plus harness metadata."""

    model: Model
    spec: FnSpec
    kind: str  # "scalar" | "array"
    via: str  # which lowering shape fired (fold, fold_break, aggregate, ...)
    # table name -> referenced columns, in ABI order
    table_cols: Tuple[Tuple[str, Tuple[Col, ...]], ...]
    out_param: Optional[str] = None  # "out" / "hist" for array results

    @property
    def tables(self) -> Tuple[str, ...]:
        return tuple(name for name, _cols in self.table_cols)


def _array_ty(col: Col) -> SourceType:
    return ARRAY_BYTE if col.ty == "byte" else ARRAY_WORD


def _col_term(col: Col, idx: str) -> t.Term:
    value = t.ArrayGet(t.Var(col.name), t.Var(idx))
    return t.Prim("cast.b2w", (value,)) if col.ty == "byte" else value


def _negb(term: t.Term) -> t.Term:
    return t.Prim("bool.negb", (term,))


def _expr_term(expr: RowExpr, col_of: Callable[[str], Tuple[Col, str]]) -> t.Term:
    """A word-valued row expression as a term (``col_of`` maps a column
    name to its :class:`Col` and the loop index it is read under)."""
    if isinstance(expr, ColRef):
        col, idx = col_of(expr.name)
        return _col_term(col, idx)
    if isinstance(expr, IntLit):
        return t.Lit(expr.value, WORD)
    if isinstance(expr, BinOp):
        return t.Prim(
            f"word.{expr.op}",
            (_expr_term(expr.lhs, col_of), _expr_term(expr.rhs, col_of)),
        )
    raise PlanError(f"not a word-valued row expression: {expr!r}")


def _pred_term(expr: RowExpr, col_of) -> t.Term:
    """A boolean row expression (comparison) as a BOOL-typed term."""
    if not isinstance(expr, Cmp):
        raise PlanError(f"not a predicate: {expr!r}")
    lhs = _expr_term(expr.lhs, col_of)
    rhs = _expr_term(expr.rhs, col_of)
    if expr.op == "eq":
        return t.Prim("word.eq", (lhs, rhs))
    if expr.op == "ne":
        return _negb(t.Prim("word.eq", (lhs, rhs)))
    if expr.op == "lt":
        return t.Prim("word.ltu", (lhs, rhs))
    if expr.op == "ge":
        return _negb(t.Prim("word.ltu", (lhs, rhs)))
    if expr.op == "gt":
        return t.Prim("word.ltu", (rhs, lhs))
    return _negb(t.Prim("word.ltu", (rhs, lhs)))  # le


def _and_all(preds: List[t.Term]) -> Optional[t.Term]:
    if not preds:
        return None
    combined = preds[0]
    for pred in preds[1:]:
        combined = t.Prim("bool.andb", (combined, pred))
    return combined


def _peel_filters(plan: Plan) -> Tuple[Plan, List[RowExpr]]:
    preds: List[RowExpr] = []
    while isinstance(plan, Filter):
        preds.append(plan.pred)
        plan = plan.source
    return plan, preds


def _referenced(scan: Scan, names: set) -> Tuple[Col, ...]:
    """Referenced columns of one scan, in schema order; at least one (the
    first schema column anchors the table's length argument even if no
    expression reads it, as in ``count(*)``)."""
    for name in names:
        scan.schema.col(name)  # unknown columns fail here with a clear error
    cols = tuple(col for col in scan.schema.cols if col.name in names)
    if not cols:
        cols = (scan.schema.cols[0],)
    for col in cols:
        if col.name.startswith("_") or col.name in _RESERVED:
            raise PlanError(f"column name {col.name!r} is reserved")
    return cols


def _table_facts(cols: Tuple[Col, ...]) -> List[t.Term]:
    """Equate every column's length with the table's anchor (first) column."""
    anchor = cols[0]
    return [
        t.Prim(
            "nat.eqb",
            (t.ArrayLen(t.Var(col.name)), t.ArrayLen(t.Var(anchor.name))),
        )
        for col in cols[1:]
    ]


def _out_facts(cols: Tuple[Col, ...], out: str) -> List[t.Term]:
    return [
        t.Prim("nat.eqb", (t.ArrayLen(t.Var(col.name)), t.ArrayLen(t.Var(out))))
        for col in cols
    ]


def _single_col(preds: List[RowExpr], expr: Optional[RowExpr]) -> Optional[str]:
    names = set()
    for pred in preds:
        names |= expr_cols(pred)
    if expr is not None:
        names |= expr_cols(expr)
    return names.pop() if len(names) == 1 else None


def reify(plan: Plan, name: str) -> ReifiedQuery:
    """Lower a checked plan to a :class:`ReifiedQuery`.

    Raises :class:`PlanError` for plans outside the compilable fragment
    (multi-column projections, aggregates of aggregates, ...); the
    fragment is documented shape by shape in ``docs/query.md``.
    """
    kind = check_plan(plan)
    if kind == "table":
        if not isinstance(plan, Project):
            raise PlanError(
                "row-producing plans reify only as single-column projections"
            )
        return _reify_project(plan, name)
    assert isinstance(plan, Aggregate)
    if kind == "groups":
        return _reify_group_count(plan, name)
    source, preds = _peel_filters(plan.source)
    if isinstance(source, Scan):
        return _reify_single_table(plan, source, preds, name)
    if isinstance(source, EquiJoin):
        return _reify_join(plan, source, preds, name)
    raise PlanError(
        f"aggregate source must reduce to a scan or an equi-join, "
        f"got {type(source).__name__}"
    )


# -- Single-table aggregates ---------------------------------------------------


def _reify_single_table(
    plan: Aggregate, scan: Scan, preds: List[RowExpr], name: str
) -> ReifiedQuery:
    names = set()
    for pred in preds:
        names |= expr_cols(pred)
    if plan.expr is not None:
        names |= expr_cols(plan.expr)
    cols = _referenced(scan, names)
    by_name = {col.name: col for col in cols}

    def col_of(col_name: str) -> Tuple[Col, str]:
        return by_name[col_name], _IDX

    # Reuse paths first: they introduce no query heads at all.
    only = _single_col(preds, plan.expr)
    if plan.kind == "sum" and not preds and isinstance(plan.expr, ColRef):
        col = by_name[plan.expr.name]
        elem = t.Var(_ELEM)
        if col.ty == "byte":
            elem = t.Prim("cast.b2w", (elem,))
        body = t.Prim("word.add", (t.Var(_ACC), elem))
        agg = t.ArrayFold(_ACC, _ELEM, body, t.Lit(0, WORD), t.Var(col.name))
        return _scalar_query(name, plan, (scan.table, cols), agg, via="fold")
    if (
        plan.kind in ("min", "max")
        and not preds
        and isinstance(plan.expr, ColRef)
    ):
        col = by_name[plan.expr.name]
        elem = t.Var(_ELEM)
        if col.ty == "byte":
            elem = t.Prim("cast.b2w", (elem,))
        body = _extremal_step(plan.kind, elem)
        agg = t.ArrayFold(
            _ACC, _ELEM, body, _agg_init(plan.kind), t.Var(col.name)
        )
        return _scalar_query(name, plan, (scan.table, cols), agg, via="fold")
    if plan.kind == "any" and not preds and only is not None:
        col = by_name[only]
        pred = _pred_over_elem(plan.expr, only, t.Var(_ELEM), col.ty)
        body = t.If(pred, t.Lit(1, WORD), t.Var(_ACC))
        until = t.Prim("word.ltu", (t.Lit(0, WORD), t.Var(_ACC)))
        agg = t.ArrayFoldBreak(
            _ACC, _ELEM, body, t.Lit(0, WORD), t.Var(col.name), until
        )
        return _scalar_query(
            name, plan, (scan.table, cols), agg, via="fold_break"
        )

    # General case: QAggregate with the filters folded into an if.
    if plan.kind == "sum":
        step = t.Prim("word.add", (t.Var(_ACC), _expr_term(plan.expr, col_of)))
    elif plan.kind == "count":
        step = t.Prim("word.add", (t.Var(_ACC), t.Lit(1, WORD)))
    elif plan.kind in ("min", "max"):
        step = _extremal_step(plan.kind, _expr_term(plan.expr, col_of))
    else:  # any: latch the flag
        step = t.Lit(1, WORD)
        preds = preds + [plan.expr]
    pred = _and_all([_pred_term(p, col_of) for p in preds])
    body = step if pred is None else t.If(pred, step, t.Var(_ACC))
    agg = qt.QAggregate(
        _IDX, _ACC, t.ArrayLen(t.Var(cols[0].name)), _agg_init(plan.kind), body
    )
    return _scalar_query(name, plan, (scan.table, cols), agg, via="aggregate")


def _pred_over_elem(
    expr: RowExpr, col_name: str, elem: t.Term, col_ty: str
) -> t.Term:
    """A single-column predicate with the column read replaced by the
    fold's element binder (widened when the column holds bytes)."""
    value = t.Prim("cast.b2w", (elem,)) if col_ty == "byte" else elem

    def walk(node: RowExpr) -> t.Term:
        if isinstance(node, ColRef):
            assert node.name == col_name
            return value
        if isinstance(node, IntLit):
            return t.Lit(node.value, WORD)
        if isinstance(node, BinOp):
            return t.Prim(f"word.{node.op}", (walk(node.lhs), walk(node.rhs)))
        raise PlanError(f"not a word-valued row expression: {node!r}")

    assert isinstance(expr, Cmp)
    lhs, rhs = walk(expr.lhs), walk(expr.rhs)
    if expr.op == "eq":
        return t.Prim("word.eq", (lhs, rhs))
    if expr.op == "ne":
        return _negb(t.Prim("word.eq", (lhs, rhs)))
    if expr.op == "lt":
        return t.Prim("word.ltu", (lhs, rhs))
    if expr.op == "ge":
        return _negb(t.Prim("word.ltu", (lhs, rhs)))
    if expr.op == "gt":
        return t.Prim("word.ltu", (rhs, lhs))
    return _negb(t.Prim("word.ltu", (rhs, lhs)))  # le


def _scalar_query(
    name: str,
    plan: Aggregate,
    table: Tuple[str, Tuple[Col, ...]],
    agg: t.Term,
    via: str,
) -> ReifiedQuery:
    table_name, cols = table
    params = [(col.name, _array_ty(col)) for col in cols]
    term = t.Let(_RES, agg, t.Var(_RES))
    model = Model(name, params, term, WORD)
    spec = FnSpec(
        name,
        [ptr_arg(col.name, _array_ty(col)) for col in cols]
        + [len_arg("n", cols[0].name)],
        [scalar_out()],
        facts=_table_facts(cols),
    )
    return ReifiedQuery(
        model, spec, "scalar", via, ((table_name, cols),), out_param=None
    )


# -- Join aggregates -----------------------------------------------------------


def _reify_join(
    plan: Aggregate, join: EquiJoin, preds: List[RowExpr], name: str
) -> ReifiedQuery:
    left, left_preds = _peel_filters(join.left)
    right, right_preds = _peel_filters(join.right)
    if not isinstance(left, Scan) or not isinstance(right, Scan):
        raise PlanError("equi-join sides must reduce to scans")
    preds = preds + left_preds + right_preds

    names = {join.left_col, join.right_col}
    for pred in preds:
        names |= expr_cols(pred)
    if plan.expr is not None:
        names |= expr_cols(plan.expr)
    left_cols = _referenced(left, {n for n in names if n in left.schema})
    right_cols = _referenced(right, {n for n in names if n in right.schema})
    by_name = {col.name: (col, _IDX) for col in left_cols}
    by_name.update({col.name: (col, _JDX) for col in right_cols})

    def col_of(col_name: str) -> Tuple[Col, str]:
        return by_name[col_name]

    join_pred = t.Prim(
        "word.eq",
        (
            _col_term(*col_of(join.left_col)),
            _col_term(*col_of(join.right_col)),
        ),
    )
    pred = _and_all([join_pred] + [_pred_term(p, col_of) for p in preds])
    if plan.kind == "sum":
        step = t.Prim("word.add", (t.Var(_ACC), _expr_term(plan.expr, col_of)))
    elif plan.kind == "count":
        step = t.Prim("word.add", (t.Var(_ACC), t.Lit(1, WORD)))
    elif plan.kind in ("min", "max"):
        step = _extremal_step(plan.kind, _expr_term(plan.expr, col_of))
    else:  # any over a join: latch, no early exit
        step = t.Lit(1, WORD)
        if plan.expr is not None:
            pred = t.Prim("bool.andb", (pred, _pred_term(plan.expr, col_of)))
    body = t.If(pred, step, t.Var(_ACC))
    agg = qt.QJoinAgg(
        _IDX,
        _JDX,
        _ACC,
        t.ArrayLen(t.Var(left_cols[0].name)),
        t.ArrayLen(t.Var(right_cols[0].name)),
        _agg_init(plan.kind),
        body,
    )
    all_cols = left_cols + right_cols
    params = [(col.name, _array_ty(col)) for col in all_cols]
    term = t.Let(_RES, agg, t.Var(_RES))
    model = Model(name, params, term, WORD)
    spec = FnSpec(
        name,
        [ptr_arg(col.name, _array_ty(col)) for col in all_cols]
        + [
            len_arg("n_left", left_cols[0].name),
            len_arg("n_right", right_cols[0].name),
        ],
        [scalar_out()],
        facts=_table_facts(left_cols) + _table_facts(right_cols),
    )
    return ReifiedQuery(
        model,
        spec,
        "scalar",
        "join",
        ((left.table, left_cols), (right.table, right_cols)),
        out_param=None,
    )


# -- Projections and grouped counts -------------------------------------------


def _reify_project(plan: Project, name: str) -> ReifiedQuery:
    source, preds = _peel_filters(plan.source)
    if preds:
        raise PlanError(
            "filtered projections change the output length and do not "
            "reify; aggregate instead"
        )
    if not isinstance(source, Scan):
        raise PlanError("projection source must be a scan")
    if len(plan.cols) != 1:
        raise PlanError("only single-column projections reify")
    _out_name, expr = plan.cols[0]
    cols = _referenced(source, expr_cols(expr))
    by_name = {col.name: col for col in cols}

    def col_of(col_name: str) -> Tuple[Col, str]:
        return by_name[col_name], _IDX

    body = _expr_term(expr, col_of)
    proj = qt.QProjectInto(_IDX, t.Var("out"), body)
    params = [(col.name, _array_ty(col)) for col in cols] + [
        ("out", ARRAY_WORD)
    ]
    term = t.Let("out", proj, t.Var("out"))
    model = Model(name, params, term, ARRAY_WORD)
    spec = FnSpec(
        name,
        [ptr_arg(col.name, _array_ty(col)) for col in cols]
        + [ptr_arg("out", ARRAY_WORD), len_arg("n", "out")],
        [array_out("out")],
        facts=_out_facts(cols, "out"),
    )
    return ReifiedQuery(
        model, spec, "array", "project", ((source.table, cols),), out_param="out"
    )


def _reify_group_count(plan: Aggregate, name: str) -> ReifiedQuery:
    source, preds = _peel_filters(plan.source)
    if not isinstance(source, Scan):
        raise PlanError("grouped count source must reduce to a scan")
    names = {plan.group_by}
    for pred in preds:
        names |= expr_cols(pred)
    cols = _referenced(source, names)
    by_name = {col.name: col for col in cols}

    def col_of(col_name: str) -> Tuple[Col, str]:
        return by_name[col_name], _IDX

    key = _col_term(by_name[plan.group_by], _IDX)
    group_pred = t.Prim(
        "word.eq", (key, t.Prim("cast.of_nat", (t.Var(_GDX),)))
    )
    pred = _and_all([group_pred] + [_pred_term(p, col_of) for p in preds])
    body = t.If(
        pred, t.Prim("word.add", (t.Var(_ACC), t.Lit(1, WORD))), t.Var(_ACC)
    )
    inner = qt.QAggregate(
        _IDX, _ACC, t.ArrayLen(t.Var(cols[0].name)), t.Lit(0, WORD), body
    )
    proj = qt.QProjectInto(_GDX, t.Var("hist"), inner)
    params = [(col.name, _array_ty(col)) for col in cols] + [
        ("hist", ARRAY_WORD)
    ]
    term = t.Let("hist", proj, t.Var("hist"))
    model = Model(name, params, term, ARRAY_WORD)
    spec = FnSpec(
        name,
        [ptr_arg(col.name, _array_ty(col)) for col in cols]
        + [
            ptr_arg("hist", ARRAY_WORD),
            len_arg("n", cols[0].name),
            len_arg("groups", "hist"),
        ],
        [array_out("hist")],
        facts=_table_facts(cols),
    )
    return ReifiedQuery(
        model,
        spec,
        "array",
        "group_count",
        ((source.table, cols),),
        out_param="hist",
    )
